"""ONC-RPC-style transport: record marking, call/reply framing.

Messages follow the shape of RFC 5531 (xid, CALL/REPLY, program,
version, procedure) with XDR bodies.  Two transports are provided:

* :class:`SocketTransport` -- TCP with RFC 5531 record marking (a
  4-byte header whose top bit flags the last fragment).
* :class:`LoopbackTransport` -- an in-process queue pair with the same
  interface, for deterministic tests and single-process examples.
"""

from __future__ import annotations

import itertools
import queue
import random
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.service.xdr import XdrDecoder, XdrEncoder

MSG_CALL = 0
MSG_REPLY = 1

REPLY_ACCEPTED = 0
ACCEPT_SUCCESS = 0
ACCEPT_PROC_UNAVAIL = 3
ACCEPT_GARBAGE_ARGS = 4
ACCEPT_SYSTEM_ERR = 5

#: The Ballista test program identity.
BALLISTA_PROGRAM = 0x2F5F_0001
BALLISTA_VERSION = 2

LAST_FRAGMENT = 0x8000_0000

#: Largest record (and fragment) the transport will accept.  A length
#: prefix beyond this is treated as a framing error, not a recv target.
MAX_RECORD = 1 << 24


class RpcError(RuntimeError):
    """Transport- or protocol-level RPC failure."""


class RpcTimeout(RpcError):
    """No record arrived within the caller's deadline."""


class ProtocolError(RpcError):
    """The byte stream violated the record-marking protocol: an
    implausible length prefix, a connection closed mid-record, or a
    reply whose accepted body does not parse.  Unlike a dropped or
    corrupted *record* (which retransmission heals), a damaged *stream*
    cannot be resynchronised -- the connection must be closed."""


class Transport:
    """Reliable, message-oriented duplex channel."""

    def send_record(self, payload: bytes) -> None:
        raise NotImplementedError

    def recv_record(self, timeout: float | None = None) -> bytes:
        """Receive one record; raise :class:`RpcTimeout` if ``timeout``
        seconds elapse first (``None`` = transport default)."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        pass


class SocketTransport(Transport):
    """TCP with ONC RPC record marking."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def send_record(self, payload: bytes) -> None:
        header = struct.pack(">I", LAST_FRAGMENT | len(payload))
        try:
            self._sock.sendall(header + payload)
        except OSError as exc:
            raise RpcError(f"send failed: {exc}") from exc

    def _recv_exact(self, count: int, mid_record: bool = False) -> bytes:
        if count < 0 or count > MAX_RECORD:
            raise ProtocolError(
                f"refusing to receive {count} bytes "
                f"(sane maximum is {MAX_RECORD})"
            )
        chunks = bytearray()
        while len(chunks) < count:
            try:
                piece = self._sock.recv(count - len(chunks))
            except socket.timeout as exc:
                raise RpcTimeout("recv timed out") from exc
            except OSError as exc:
                raise RpcError(f"recv failed: {exc}") from exc
            if not piece:
                if chunks or mid_record:
                    # A truncated record: the peer (or the wire) cut the
                    # stream partway through -- typed protocol damage,
                    # not a clean close.
                    raise ProtocolError(
                        f"connection closed mid-record "
                        f"({len(chunks)}/{count} bytes)"
                    )
                raise RpcError("connection closed")
            chunks += piece
        return bytes(chunks)

    def recv_record(self, timeout: float | None = None) -> bytes:
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            payload = bytearray()
            while True:
                (header,) = struct.unpack(
                    ">I", self._recv_exact(4, mid_record=bool(payload))
                )
                length = header & ~LAST_FRAGMENT
                if length > MAX_RECORD:
                    raise ProtocolError(
                        f"implausible fragment length {length}"
                    )
                if len(payload) + length > MAX_RECORD:
                    raise ProtocolError(
                        f"record exceeds sane maximum {MAX_RECORD}"
                    )
                payload += self._recv_exact(length, mid_record=True)
                if header & LAST_FRAGMENT:
                    return bytes(payload)
        finally:
            if timeout is not None:
                self._sock.settimeout(previous)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


class LoopbackTransport(Transport):
    """One end of an in-process duplex queue pair."""

    def __init__(
        self,
        inbox: "queue.Queue[bytes]",
        outbox: "queue.Queue[bytes]",
        default_timeout: float = 30.0,
    ) -> None:
        self._inbox = inbox
        self._outbox = outbox
        self._default_timeout = default_timeout

    @classmethod
    def pair(
        cls, default_timeout: float = 30.0
    ) -> tuple["LoopbackTransport", "LoopbackTransport"]:
        a_to_b: "queue.Queue[bytes]" = queue.Queue()
        b_to_a: "queue.Queue[bytes]" = queue.Queue()
        return (
            cls(b_to_a, a_to_b, default_timeout),
            cls(a_to_b, b_to_a, default_timeout),
        )

    def send_record(self, payload: bytes) -> None:
        self._outbox.put(payload)

    def recv_record(self, timeout: float | None = None) -> bytes:
        try:
            return self._inbox.get(
                timeout=self._default_timeout if timeout is None else timeout
            )
        except queue.Empty as exc:
            raise RpcTimeout("loopback recv timed out") from exc


# ----------------------------------------------------------------------
# Call / reply framing
# ----------------------------------------------------------------------


def encode_call(xid: int, procedure: int, body: bytes) -> bytes:
    enc = XdrEncoder()
    enc.u32(xid).u32(MSG_CALL)
    enc.u32(2)  # RPC version
    enc.u32(BALLISTA_PROGRAM).u32(BALLISTA_VERSION).u32(procedure)
    enc.u32(0).u32(0)  # AUTH_NONE credential
    enc.u32(0).u32(0)  # AUTH_NONE verifier
    return enc.bytes() + body


def decode_call(record: bytes) -> tuple[int, int, XdrDecoder]:
    dec = XdrDecoder(record)
    xid = dec.u32()
    if dec.u32() != MSG_CALL:
        raise RpcError("expected CALL message")
    if dec.u32() != 2:
        raise RpcError("unsupported RPC version")
    program = dec.u32()
    version = dec.u32()
    procedure = dec.u32()
    if program != BALLISTA_PROGRAM or version != BALLISTA_VERSION:
        raise RpcError(f"unknown program {program:#x} v{version}")
    dec.u32(), dec.opaque()  # credential
    dec.u32(), dec.opaque()  # verifier
    return xid, procedure, dec


def encode_reply(xid: int, accept_state: int, body: bytes = b"") -> bytes:
    enc = XdrEncoder()
    enc.u32(xid).u32(MSG_REPLY).u32(REPLY_ACCEPTED)
    enc.u32(0).u32(0)  # AUTH_NONE verifier
    enc.u32(accept_state)
    return enc.bytes() + body


def decode_reply(record: bytes, expected_xid: int) -> XdrDecoder:
    dec = XdrDecoder(record)
    xid = dec.u32()
    if xid != expected_xid:
        raise RpcError(f"xid mismatch: sent {expected_xid}, got {xid}")
    if dec.u32() != MSG_REPLY:
        raise RpcError("expected REPLY message")
    if dec.u32() != REPLY_ACCEPTED:
        raise RpcError("RPC call was denied")
    dec.u32(), dec.opaque()  # verifier
    state = dec.u32()
    if state != ACCEPT_SUCCESS:
        raise RpcError(f"RPC call failed with accept state {state}")
    return dec


@dataclass(frozen=True)
class RetryPolicy:
    """At-least-once call semantics: per-attempt deadline, exponential
    backoff between retransmissions, overall attempt cap.

    Retried calls reuse their xid (classic ONC RPC retransmission), so
    a late reply to any earlier transmission still satisfies the call;
    replies with a foreign xid are stale duplicates and are discarded.
    Server procedures must therefore be idempotent (the Ballista
    protocol is: plans are pure reads, reports carry sequence numbers).

    :param attempts: total transmissions per call (1 = no retries).
    :param call_timeout: seconds to wait for a matching reply per attempt.
    :param backoff_base: sleep before the first retry; doubles each
        retry, capped at ``backoff_max``.
    :param jitter: multiplicative spread applied to each backoff delay,
        drawn uniformly from ``[1 - jitter, 1 + jitter]``.  Jitter keeps
        a fleet of clients that lost the same server from retrying in
        lock-step (the thundering herd); ``0.0`` restores the exact
        deterministic schedule.
    :param jitter_seed: seed for the jitter stream.  Always seeded so a
        retry schedule can be replayed exactly; clients that should not
        herd pass *distinct* seeds (``BallistaClient`` derives one from
        its variant key), which de-synchronises the fleet without
        sacrificing reproducibility.
    :param sleep: injectable sleep function (tests/benchmarks).
    """

    attempts: int = 5
    call_timeout: float = 1.0
    backoff_base: float = 0.02
    backoff_max: float = 1.0
    jitter: float = 0.25
    jitter_seed: int = 0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def backoff(
        self, retry_index: int, rng: "random.Random | None" = None
    ) -> float:
        """Delay before retry number ``retry_index + 1``.  Without an
        ``rng`` the schedule is the exact exponential; with one, each
        delay is scaled by a uniform factor in ``[1-jitter, 1+jitter]``
        (the cap applies before jitter, so delays may exceed
        ``backoff_max`` by at most the jitter fraction)."""
        delay = min(self.backoff_base * (2**retry_index), self.backoff_max)
        if rng is not None and self.jitter:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


@dataclass
class ClientStats:
    """Observability counters for one :class:`RpcClient`."""

    calls: int = 0
    retries: int = 0
    stale_replies: int = 0
    corrupt_replies: int = 0


class RpcClient:
    """Synchronous call interface over a transport.

    Without a :class:`RetryPolicy` the client is exactly-once-or-error:
    one transmission, and any transport hiccup surfaces as
    :class:`RpcError`.  With a policy it is at-least-once: dropped or
    corrupted records are retransmitted with exponential backoff until
    the attempt budget runs out.
    """

    def __init__(
        self,
        transport: Transport,
        retry: RetryPolicy | None = None,
        recorder=None,
    ) -> None:
        self._transport = transport
        self._xids = itertools.count(1)
        self.retry = retry
        self.stats = ClientStats()
        #: Optional :class:`repro.obs.recorder.Recorder` receiving an
        #: ``rpc_retry`` event per retransmission.
        self.recorder = recorder
        self._jitter_rng = (
            random.Random(retry.jitter_seed) if retry is not None else None
        )

    def _protocol_failure(self, detail: str, cause: Exception) -> None:
        """A damaged stream or unparseable accepted reply: close the
        transport (it cannot be resynchronised) and surface a typed
        :class:`ProtocolError` instead of the raw struct/XDR error."""
        if self.recorder is not None:
            from repro.obs.events import ProtocolViolation

            self.recorder.emit(ProtocolViolation("client", detail))
        self.close()
        raise ProtocolError(detail) from cause

    def call(self, procedure: int, body: bytes = b"") -> XdrDecoder:
        from repro.service.xdr import XdrError

        xid = next(self._xids)
        self.stats.calls += 1
        record = encode_call(xid, procedure, body)
        if self.retry is None:
            self._transport.send_record(record)
            try:
                reply = self._transport.recv_record()
            except ProtocolError as exc:
                self._protocol_failure(str(exc), exc)
            try:
                return decode_reply(reply, xid)
            except XdrError as exc:
                self._protocol_failure(f"malformed reply record: {exc}", exc)
        return self._call_with_retries(xid, record)

    def _call_with_retries(self, xid: int, record: bytes) -> XdrDecoder:
        from repro.service.xdr import XdrError

        policy = self.retry
        last_error: RpcError | None = None
        for attempt in range(policy.attempts):
            if attempt:
                self.stats.retries += 1
                if self.recorder is not None:
                    from repro.obs.events import RpcRetry

                    self.recorder.emit(RpcRetry(attempt, xid))
                policy.sleep(
                    policy.backoff(attempt - 1, rng=self._jitter_rng)
                )
            try:
                self._transport.send_record(record)
            except RpcError as exc:
                last_error = exc
                continue
            deadline = time.monotonic() + policy.call_timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    last_error = RpcTimeout(
                        f"no reply to xid {xid} within "
                        f"{policy.call_timeout}s (attempt {attempt + 1})"
                    )
                    break
                try:
                    reply = self._transport.recv_record(timeout=remaining)
                except RpcTimeout as exc:
                    last_error = exc
                    break
                except ProtocolError as exc:
                    # Stream-level damage is not retryable: the framing
                    # is out of sync, so retransmitting on the same
                    # connection can never yield a parseable reply.
                    self._protocol_failure(str(exc), exc)
                except RpcError as exc:
                    last_error = exc
                    break
                try:
                    reply_xid = XdrDecoder(reply).u32()
                except XdrError:
                    self.stats.corrupt_replies += 1
                    continue
                if reply_xid != xid:
                    # A duplicate or late reply to some earlier call.
                    self.stats.stale_replies += 1
                    continue
                try:
                    return decode_reply(reply, xid)
                except RpcError:
                    raise  # accepted-but-failed: retrying will not help
                except XdrError:
                    self.stats.corrupt_replies += 1
                    continue
        raise RpcError(
            f"call gave up after {policy.attempts} attempts: {last_error}"
        )

    def close(self) -> None:
        self._transport.close()


Handler = Callable[[XdrDecoder], bytes]


def serve_connection(
    transport: Transport,
    handlers: dict[int, Handler],
    recorder=None,
) -> None:
    """Dispatch calls on one connection until it closes.

    Unknown procedures get ``PROC_UNAVAIL``; handler decode errors get
    ``GARBAGE_ARGS``; other handler errors get ``SYSTEM_ERR`` -- a
    *record*-level problem never takes the connection down (the client
    retransmits and idempotent procedures absorb the duplicate).
    *Stream*-level damage -- a truncated record, an implausible length
    prefix -- is a typed :class:`ProtocolError`: the connection is
    closed (it cannot be resynchronised) and, with a ``recorder``, a
    ``protocol_error`` event is emitted instead of letting a raw
    struct/OS error escape into the serving thread.
    """
    from repro.service.xdr import XdrError

    def note_violation(detail: str) -> None:
        if recorder is not None:
            from repro.obs.events import ProtocolViolation

            recorder.emit(ProtocolViolation("server", detail))

    while True:
        try:
            record = transport.recv_record()
        except ProtocolError as exc:
            note_violation(str(exc))
            transport.close()
            return
        except RpcError:
            return
        try:
            xid, procedure, dec = decode_call(record)
        except (RpcError, XdrError):
            continue  # unparseable call: nothing to reply to
        handler = handlers.get(procedure)
        try:
            if handler is None:
                transport.send_record(encode_reply(xid, ACCEPT_PROC_UNAVAIL))
                continue
            try:
                body = handler(dec)
            except XdrError:
                transport.send_record(encode_reply(xid, ACCEPT_GARBAGE_ARGS))
            except Exception:  # noqa: BLE001 - isolate the server loop
                transport.send_record(encode_reply(xid, ACCEPT_SYSTEM_ERR))
            else:
                transport.send_record(encode_reply(xid, ACCEPT_SUCCESS, body))
        except RpcError as exc:
            # The reply could not be delivered: close this connection
            # instead of crashing the serving thread with a raw
            # transport error.  A vanished peer is routine; only actual
            # protocol damage counts as a violation.
            if isinstance(exc, ProtocolError):
                note_violation(f"reply undeliverable: {exc}")
            transport.close()
            return
