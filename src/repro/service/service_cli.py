"""CLI for the multi-tenant campaign service.

Usage::

    python -m repro serve --data DIR [--host H] [--port P]
                          [--max-workers N] [--lease-timeout S]
                          [--events PATH]
    python -m repro submit --variants winnt,win98 [--cap N] [--muts ...]
                          [--tenant T] [--job-key K] [--save PATH]
                          [--host H] [--port P] [--connect-timeout S]

``serve`` runs a :class:`~repro.service.server.CampaignService` until
SIGTERM/SIGINT, then drains gracefully: it stops leasing, lets worker
shard checkpoints stand, compacts the job queue, and exits 0 -- a
restarted ``serve`` on the same ``--data`` directory finishes whatever
was in flight.

``submit`` sends one campaign spec and streams the results to
completion.  With ``BALLISTA_CHAOS_RATE`` set, the connection runs
through a :class:`~repro.service.chaos.ChaosTransport` (drop+dup at the
given rate), the CI chaos drill's configuration.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro import ALL_VARIANTS


def serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the multi-tenant campaign service.",
    )
    parser.add_argument(
        "--data",
        required=True,
        metavar="DIR",
        help="durable state directory (job queue, shards, results)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = ephemeral, printed on startup)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent worker processes across all tenants (default: 2)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "shard lease horizon: a worker silent this long loses its "
            "shard to a fresh worker (default: 10)"
        ),
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        metavar="N",
        help="lease grants per shard before its job fails (default: 5)",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        help=(
            "stream service telemetry (JSON lines) to PATH; render it "
            "with `python -m repro stats PATH`"
        ),
    )
    args = parser.parse_args(argv)
    if args.max_workers < 1:
        parser.error(f"--max-workers must be >= 1, got {args.max_workers}")
    if args.lease_timeout <= 0:
        parser.error(
            f"--lease-timeout must be > 0, got {args.lease_timeout}"
        )
    if args.max_attempts < 1:
        parser.error(f"--max-attempts must be >= 1, got {args.max_attempts}")

    recorder = None
    if args.events:
        from repro.obs.recorder import JsonlRecorder

        try:
            recorder = JsonlRecorder(args.events)
        except OSError as exc:
            parser.error(f"--events {args.events}: {exc}")

    from repro.service.server import CampaignService

    service = CampaignService(
        args.data,
        max_workers=args.max_workers,
        lease_s=args.lease_timeout,
        max_attempts=args.max_attempts,
        recorder=recorder,
    )
    host, port = service.listen(args.host, args.port)
    sys.stderr.write(f"campaign service listening on {host}:{port}\n")
    sys.stderr.flush()

    def on_signal(signum, frame):  # noqa: ARG001 - signal signature
        service.drain()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    try:
        service.serve_forever()
    finally:
        service.close()
        if recorder is not None:
            recorder.close()
    sys.stderr.write("campaign service drained\n")
    return 0


def submit_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit one campaign to a running service and stream the "
            "results to completion."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--variants",
        required=True,
        help="comma-separated variant keys to test",
    )
    parser.add_argument(
        "--cap",
        type=int,
        default=None,
        help="test cases per MuT (default: BALLISTA_CAP or 300)",
    )
    parser.add_argument(
        "--muts",
        default=None,
        help="comma-separated bare MuT names (default: the full plan)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "slices per variant (chained intra-variant slices with "
            "per-slice leases and checkpoints; results stay "
            "byte-identical; default 1)"
        ),
    )
    parser.add_argument("--tenant", default="default")
    parser.add_argument(
        "--job-key",
        default=None,
        help=(
            "idempotency key; resubmitting the same (tenant, key) "
            "returns the existing job (default: derived from the spec)"
        ),
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "TCP connect timeout "
            "(default: BALLISTA_CONNECT_TIMEOUT or 30)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="give up if the job has not completed in this long",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        help="save the streamed result set to a JSON file",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress status output"
    )
    args = parser.parse_args(argv)

    by_key = {p.key for p in ALL_VARIANTS}
    variants = [k.strip() for k in args.variants.split(",") if k.strip()]
    missing = [k for k in variants if k not in by_key]
    if missing:
        parser.error(
            f"unknown variants: {missing}; choose from {sorted(by_key)}"
        )
    if not variants:
        parser.error("--variants must name at least one variant")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    muts = None
    if args.muts is not None:
        muts = [m.strip() for m in args.muts.split(",") if m.strip()]
    if args.cap is None:
        from repro.core.campaign import default_cap

        try:
            args.cap = default_cap()
        except ValueError as exc:
            parser.error(str(exc))
    if args.connect_timeout is None:
        from repro.service.client import default_connect_timeout

        try:
            args.connect_timeout = default_connect_timeout()
        except ValueError as exc:
            parser.error(str(exc))
    elif args.connect_timeout <= 0:
        parser.error(
            f"--connect-timeout must be > 0, got {args.connect_timeout}"
        )

    # Chaos drills: BALLISTA_CHAOS_RATE wraps the connection in the CI
    # drop+dup fault schedule (validated up front, like BALLISTA_CAP).
    from repro.service.chaos import ChaosConfig, ChaosTransport

    try:
        chaos = ChaosConfig.from_env()
    except ValueError as exc:
        parser.error(str(exc))
    wrap = None
    if chaos.drop_rate or chaos.dup_rate:
        wrap = lambda t: ChaosTransport(t, chaos)  # noqa: E731

    from repro.service.client import ServiceClient
    from repro.service.rpc import RpcError

    try:
        client = ServiceClient.connect(
            args.host, args.port, wrap=wrap, timeout=args.connect_timeout
        )
    except OSError as exc:
        parser.error(f"cannot connect to {args.host}:{args.port}: {exc}")
    try:
        job_id, created = client.submit(
            variants,
            cap=args.cap,
            muts=muts,
            tenant=args.tenant,
            job_key=args.job_key,
            shards=args.shards,
        )
        if not args.quiet:
            verb = "submitted" if created else "resumed"
            sys.stderr.write(f"{verb} {job_id}\n")
        results = client.stream(job_id, timeout=args.timeout)
    except RpcError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 1
    finally:
        client.close()
    if not args.quiet:
        sys.stderr.write(
            f"{job_id}: {results.total_cases()} cases across "
            f"{len(variants)} variants\n"
        )
    if args.save:
        from repro.core.results_io import save_results

        save_results(results, args.save)
    return 0
