"""The Ballista testing service (paper sections 2 and 3).

Ballista was "publicly available as an Internet-based testing service
involving a central testing server and a portable testing client that
was ported to Windows NT and Windows CE for this research".  This
package reproduces that architecture:

* :mod:`repro.service.xdr` -- ONC-RPC-style XDR encoding (the paper had
  to use a third-party ONC RPC client on Windows, which only ships DCE
  RPC natively).
* :mod:`repro.service.rpc` -- record-marked RPC messages over a socket
  or an in-process loopback transport.
* :mod:`repro.service.server` -- the central test server: hands out
  deterministic test plans, collects per-case results, builds the
  campaign :class:`~repro.core.results.ResultSet`.  Also home of the
  multi-tenant :class:`~repro.service.server.CampaignService`: a
  selector-multiplexed control plane with a durable job queue
  (:mod:`repro.service.queue`) and shard leases
  (:mod:`repro.service.leases`) -- clients submit campaign specs, the
  service runs them in leased worker processes and streams results back.
* :mod:`repro.service.client` -- the portable testing client: runs one
  OS variant's tests against its simulated machine and reports back.
  Also the :class:`~repro.service.client.ServiceClient` for the
  campaign service's submit/status/fetch API.
* :mod:`repro.service.serial` + :mod:`repro.service.ce_client` -- the
  Windows CE split client: test generation on the "NT host", execution
  on the "CE target" over a serial link with file-polling handshakes.
"""

from repro.service.ce_client import CEHostClient, CETargetAgent
from repro.service.chaos import (
    ChaosConfig,
    ChaosDisconnect,
    ChaosStats,
    ChaosTransport,
    chaos_rate_from_env,
    chaos_seed_from_env,
)
from repro.service.client import (
    BallistaClient,
    ServiceClient,
    ServiceError,
    default_connect_timeout,
)
from repro.service.leases import Lease, LeaseError, LeaseManager
from repro.service.queue import JobQueue, JobRecord, JobSpec
from repro.service.rpc import (
    LoopbackTransport,
    ProtocolError,
    RetryPolicy,
    RpcClient,
    RpcError,
    RpcTimeout,
)
from repro.service.serial import SerialLink
from repro.service.server import BallistaServer, CampaignService

__all__ = [
    "BallistaClient",
    "BallistaServer",
    "CEHostClient",
    "CETargetAgent",
    "CampaignService",
    "ChaosConfig",
    "ChaosDisconnect",
    "ChaosStats",
    "ChaosTransport",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "Lease",
    "LeaseError",
    "LeaseManager",
    "LoopbackTransport",
    "ProtocolError",
    "RetryPolicy",
    "RpcClient",
    "RpcError",
    "RpcTimeout",
    "SerialLink",
    "ServiceClient",
    "ServiceError",
    "chaos_rate_from_env",
    "chaos_seed_from_env",
    "default_connect_timeout",
]
