"""Shard leases for the multi-tenant campaign service.

Each in-flight ``(job, variant, shard)`` slice is *leased* to exactly
one worker process at a time (``shard`` is the intra-variant slice
index; 0 for jobs submitted without sharding).  The lease carries a deadline; workers renew
it with heartbeats (the supervisor machinery already makes workers
heartbeat at every MuT boundary).  When heartbeats stop -- the worker
was SIGKILLed, wedged, or its host vanished -- the lease expires and
the scheduler reassigns the shard to a fresh worker, which resumes from
the shard checkpoint on disk.  Because checkpoints are only written at
MuT boundaries and results serialize sorted by key, a reassigned shard
still produces byte-identical output.

Deterministic and clock-injectable: tests drive a fake clock through
expiry edges instead of sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

#: Extra slack on a lease's *initial* deadline: spawning a worker costs
#: an interpreter start plus the :mod:`repro` import before the first
#: heartbeat can arrive, which can dwarf a short lease interval.
DEFAULT_SPAWN_GRACE_S = 5.0


class LeaseError(RuntimeError):
    """A lease operation violated the single-holder invariant."""


def _token(variant: str, shard: int) -> str:
    """Display token for telemetry: the bare variant for whole-variant
    shards, ``variant#k`` for intra-variant slices."""
    return variant if shard == 0 else f"{variant}#{shard}"


@dataclass
class Lease:
    """One shard's claim: who may run ``(job_id, variant, shard)`` right
    now.  ``shard_index`` is the intra-variant slice index -- 0 for the
    whole variant (jobs submitted without sharding)."""

    lease_id: int
    job_id: str
    variant: str
    granted_at: float
    deadline: float
    attempt: int = 1
    shard_index: int = 0

    @property
    def shard(self) -> tuple[str, str, int]:
        return (self.job_id, self.variant, self.shard_index)


@dataclass
class LeaseStats:
    granted: int = 0
    renewed: int = 0
    expired: int = 0
    released: int = 0
    reassignments: int = 0
    double_grants_refused: int = 0


class LeaseManager:
    """Tracks active shard leases and their deadlines.

    Not thread-safe by itself: the campaign service serializes all
    lease traffic through its scheduler thread.

    :param lease_s: heartbeat-loss horizon -- a lease not renewed for
        this long is considered lost.
    :param spawn_grace: extra seconds added to the *initial* deadline
        only, covering worker spawn latency before the first heartbeat.
    :param clock: monotonic time source (injectable for tests).
    :param recorder: optional :class:`repro.obs.recorder.Recorder`
        receiving ``lease_granted`` / ``lease_expired`` /
        ``lease_reassigned`` events.
    """

    def __init__(
        self,
        lease_s: float = 10.0,
        spawn_grace: float = DEFAULT_SPAWN_GRACE_S,
        clock: Callable[[], float] = time.monotonic,
        recorder=None,
    ) -> None:
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0 seconds, got {lease_s!r}")
        if spawn_grace < 0:
            raise ValueError(
                f"spawn_grace must be >= 0 seconds, got {spawn_grace!r}"
            )
        self.lease_s = lease_s
        self.spawn_grace = spawn_grace
        self.clock = clock
        self.recorder = recorder
        self.stats = LeaseStats()
        self._active: dict[tuple[str, str, int], Lease] = {}
        #: Grant count per shard, surviving release/expiry: attempt 2+
        #: on a grant means the shard is being *reassigned*.
        self._attempts: dict[tuple[str, str, int], int] = {}
        self._next_id = 1

    def _emit(self, event) -> None:
        if self.recorder is not None:
            self.recorder.emit(event)

    # ------------------------------------------------------------------

    def grant(self, job_id: str, variant: str, shard: int = 0) -> Lease:
        """Lease a shard to a new worker.  ``shard`` is the
        intra-variant slice index (0 = the whole variant).

        Refuses (raises :class:`LeaseError`) while another lease on the
        same shard is still active -- the double-grant guard: a shard
        whose old worker may still be running must be expired or
        released first."""
        key = (job_id, variant, shard)
        existing = self._active.get(key)
        if existing is not None:
            self.stats.double_grants_refused += 1
            raise LeaseError(
                f"shard {job_id}/{_token(variant, shard)} already leased "
                f"(lease {existing.lease_id}, attempt {existing.attempt})"
            )
        now = self.clock()
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        lease = Lease(
            lease_id=self._next_id,
            job_id=job_id,
            variant=variant,
            granted_at=now,
            deadline=now + self.lease_s + self.spawn_grace,
            attempt=attempt,
            shard_index=shard,
        )
        self._next_id += 1
        self._active[key] = lease
        self.stats.granted += 1
        if self.recorder is not None:
            from repro.obs.events import LeaseGranted, LeaseReassigned

            self._emit(
                LeaseGranted(
                    job_id, _token(variant, shard), lease.lease_id, attempt
                )
            )
            if attempt > 1:
                self.stats.reassignments += 1
                self._emit(
                    LeaseReassigned(job_id, _token(variant, shard), attempt)
                )
        elif attempt > 1:
            self.stats.reassignments += 1
        return lease

    def renew(self, job_id: str, variant: str, shard: int = 0) -> bool:
        """Heartbeat: push the shard's deadline out to now + lease_s.
        Returns False (no-op) when no lease is active -- a heartbeat
        from a worker whose lease already expired must not resurrect
        it."""
        lease = self._active.get((job_id, variant, shard))
        if lease is None:
            return False
        lease.deadline = self.clock() + self.lease_s
        self.stats.renewed += 1
        return True

    def release(
        self, job_id: str, variant: str, shard: int = 0
    ) -> Lease | None:
        """Drop a lease cleanly (shard finished, or worker reaped)."""
        lease = self._active.pop((job_id, variant, shard), None)
        if lease is not None:
            self.stats.released += 1
        return lease

    def expire_stale(self) -> list[Lease]:
        """Expire every lease whose deadline has passed, emitting
        ``lease_expired`` for each; returns the casualties so the
        scheduler can kill lingering workers and reassign."""
        now = self.clock()
        stale = [
            lease for lease in self._active.values() if lease.deadline < now
        ]
        for lease in stale:
            del self._active[lease.shard]
            self.stats.expired += 1
            if self.recorder is not None:
                from repro.obs.events import LeaseExpired

                self._emit(
                    LeaseExpired(
                        lease.job_id,
                        lease.variant,
                        lease.lease_id,
                        round(now - lease.deadline + self.lease_s, 3),
                    )
                )
        return stale

    # ------------------------------------------------------------------

    def active(self) -> list[Lease]:
        return sorted(self._active.values(), key=lambda l: l.lease_id)

    def holder(self, job_id: str, variant: str, shard: int = 0) -> Lease | None:
        return self._active.get((job_id, variant, shard))

    def attempts(self, job_id: str, variant: str, shard: int = 0) -> int:
        return self._attempts.get((job_id, variant, shard), 0)

    def __len__(self) -> int:
        return len(self._active)
