"""Minimal XDR (RFC 4506) encoding, as used by ONC RPC.

Only the subset the Ballista protocol needs: unsigned/signed 32-bit
integers, opaque byte strings and UTF-8 strings (length-prefixed, padded
to 4-byte boundaries), and counted arrays.
"""

from __future__ import annotations


class XdrError(ValueError):
    """Malformed XDR data."""


class XdrEncoder:
    """Appends XDR-encoded values to a growing buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def u32(self, value: int) -> "XdrEncoder":
        self._buffer += (value & 0xFFFF_FFFF).to_bytes(4, "big")
        return self

    def i32(self, value: int) -> "XdrEncoder":
        return self.u32(value & 0xFFFF_FFFF)

    def boolean(self, value: bool) -> "XdrEncoder":
        return self.u32(1 if value else 0)

    def opaque(self, data: bytes) -> "XdrEncoder":
        self.u32(len(data))
        self._buffer += data
        padding = (4 - len(data) % 4) % 4
        self._buffer += b"\x00" * padding
        return self

    def string(self, text: str) -> "XdrEncoder":
        return self.opaque(text.encode("utf-8"))

    def string_array(self, items: list[str]) -> "XdrEncoder":
        self.u32(len(items))
        for item in items:
            self.string(item)
        return self

    def bytes(self) -> bytes:
        return bytes(self._buffer)


class XdrDecoder:
    """Reads XDR-encoded values from a buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, count: int) -> bytes:
        if self._offset + count > len(self._data):
            raise XdrError(
                f"truncated XDR data: wanted {count} bytes at {self._offset}"
            )
        piece = self._data[self._offset : self._offset + count]
        self._offset += count
        return piece

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def i32(self) -> int:
        value = self.u32()
        return value - 0x1_0000_0000 if value >= 0x8000_0000 else value

    def boolean(self) -> bool:
        return self.u32() != 0

    def opaque(self) -> bytes:
        length = self.u32()
        if length > len(self._data):
            raise XdrError(f"implausible opaque length {length}")
        data = self._take(length)
        self._take((4 - length % 4) % 4)
        return data

    def string(self) -> str:
        return self.opaque().decode("utf-8")

    def string_array(self) -> list[str]:
        count = self.u32()
        if count > 1 << 20:
            raise XdrError(f"implausible array length {count}")
        return [self.string() for _ in range(count)]

    def done(self) -> None:
        if self._offset != len(self._data):
            raise XdrError(
                f"{len(self._data) - self._offset} trailing bytes in XDR data"
            )
