"""Deterministic fault injection for service transports.

The paper's Ballista service had to stay dependable while the systems
under test crashed around it; this module lets us *test* that
dependability.  :class:`ChaosTransport` wraps any
:class:`~repro.service.rpc.Transport` and injects record drops,
duplication, truncation, byte corruption, delivery delays, and mid-call
disconnects, all driven by a seeded RNG so every failure schedule is
reproducible.

Faults are decided per record and per direction.  A dropped outgoing
record is silently discarded; a dropped incoming record is consumed
from the inner transport and thrown away (the reader keeps waiting, as
if the reply were lost in transit).  A disconnect kills the transport:
every later operation raises :class:`ChaosDisconnect`, modelling a
client or link that died mid-campaign.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, fields

from repro.service.rpc import RpcError, RpcTimeout, Transport


class ChaosDisconnect(RpcError):
    """The chaos schedule severed this connection."""


def chaos_rate_from_env() -> float:
    """Parse ``BALLISTA_CHAOS_RATE`` (a probability, default 0).

    Raises :class:`ValueError` naming the variable on junk, negatives,
    or rates above 1, so callers (the CLI, test harnesses) report a
    clean error instead of a deep traceback inside
    :class:`ChaosTransport`."""
    raw = os.environ.get("BALLISTA_CHAOS_RATE", "0")
    try:
        rate = float(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_CHAOS_RATE must be a fault probability in [0, 1], "
            f"got {raw!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(
            f"BALLISTA_CHAOS_RATE must be in [0, 1], got {rate}"
        )
    return rate


def chaos_seed_from_env() -> int:
    """Parse ``BALLISTA_CHAOS_SEED`` (an integer, default 0)."""
    raw = os.environ.get("BALLISTA_CHAOS_SEED", "0")
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_CHAOS_SEED must be an integer seed, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class ChaosConfig:
    """Fault probabilities (each decided independently per record).

    :param seed: RNG seed; the same seed replays the same fault
        schedule for the same sequence of operations.
    :param drop_rate: probability a record vanishes in transit.
    :param dup_rate: probability a record is delivered twice.
    :param corrupt_rate: probability some bytes are flipped.
    :param truncate_rate: probability the record loses its tail.
    :param delay_rate: probability delivery sleeps ``delay_s`` first.
    :param disconnect_after: sever the link permanently after this many
        records have crossed it (``None`` = never).
    :param delay_s: real-time delay injected by a delay fault.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    truncate_rate: float = 0.0
    delay_rate: float = 0.0
    disconnect_after: int | None = None
    delay_s: float = 0.002

    def __post_init__(self) -> None:
        for spec in fields(self):
            if not spec.name.endswith("_rate"):
                continue
            rate = getattr(self, spec.name)
            if not isinstance(rate, (int, float)) or not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{spec.name} must be a probability in [0, 1], "
                    f"got {rate!r}"
                )
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s!r}")
        if self.disconnect_after is not None and self.disconnect_after < 0:
            raise ValueError(
                f"disconnect_after must be >= 0 records, "
                f"got {self.disconnect_after!r}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "ChaosConfig":
        """The CI drill configuration: ``BALLISTA_CHAOS_RATE`` as the
        drop *and* duplicate probability, ``BALLISTA_CHAOS_SEED`` as the
        schedule seed (both validated), other fields from
        ``overrides``."""
        rate = chaos_rate_from_env()
        seed = chaos_seed_from_env()
        overrides.setdefault("drop_rate", rate)
        overrides.setdefault("dup_rate", rate)
        overrides.setdefault("seed", seed)
        return cls(**overrides)


@dataclass
class ChaosStats:
    """What the chaos schedule actually did."""

    sent: int = 0
    received: int = 0
    drops: int = 0
    dups: int = 0
    corruptions: int = 0
    truncations: int = 0
    delays: int = 0
    disconnects: int = 0

    @property
    def faults(self) -> int:
        return (
            self.drops
            + self.dups
            + self.corruptions
            + self.truncations
            + self.delays
            + self.disconnects
        )


class ChaosTransport(Transport):
    """A :class:`Transport` decorator that misbehaves on schedule."""

    def __init__(
        self,
        inner: Transport,
        config: ChaosConfig | None = None,
        sleep=time.sleep,
        recorder=None,
    ) -> None:
        self.inner = inner
        self.config = config or ChaosConfig()
        self.stats = ChaosStats()
        #: Optional :class:`repro.obs.recorder.Recorder` receiving a
        #: ``chaos_fault`` event per injected fault.
        self.recorder = recorder
        self._rng = random.Random(self.config.seed)
        self._sleep = sleep
        self._pending: list[bytes] = []  # duplicated inbound records
        self._records_seen = 0
        self._dead = False

    # ------------------------------------------------------------------

    def _note(self, fault: str, direction: str) -> None:
        if self.recorder is not None:
            from repro.obs.events import ChaosFault

            self.recorder.emit(ChaosFault(fault, direction))

    def _check_disconnect(self, direction: str) -> None:
        if self._dead:
            raise ChaosDisconnect("chaos: connection is down")
        after = self.config.disconnect_after
        if after is not None and self._records_seen >= after:
            self._dead = True
            self.stats.disconnects += 1
            self._note("disconnect", direction)
            raise ChaosDisconnect(
                f"chaos: connection severed after {after} records"
            )

    def _chance(self, rate: float) -> bool:
        return rate > 0 and self._rng.random() < rate

    def _mutate(self, payload: bytes, direction: str) -> bytes:
        """Apply corruption/truncation faults to a payload copy."""
        if self._chance(self.config.truncate_rate) and len(payload) > 1:
            self.stats.truncations += 1
            self._note("truncate", direction)
            payload = payload[: self._rng.randrange(1, len(payload))]
        if self._chance(self.config.corrupt_rate) and payload:
            self.stats.corruptions += 1
            self._note("corrupt", direction)
            mutated = bytearray(payload)
            for _ in range(self._rng.randint(1, 3)):
                index = self._rng.randrange(len(mutated))
                mutated[index] ^= self._rng.randint(1, 255)
            payload = bytes(mutated)
        return payload

    def _maybe_delay(self, direction: str) -> None:
        if self._chance(self.config.delay_rate):
            self.stats.delays += 1
            self._note("delay", direction)
            self._sleep(self.config.delay_s)

    # ------------------------------------------------------------------

    def send_record(self, payload: bytes) -> None:
        self._check_disconnect("send")
        self._records_seen += 1
        if self._chance(self.config.drop_rate):
            self.stats.drops += 1
            self._note("drop", "send")
            return
        self._maybe_delay("send")
        payload = self._mutate(payload, "send")
        copies = 2 if self._chance(self.config.dup_rate) else 1
        if copies == 2:
            self.stats.dups += 1
            self._note("dup", "send")
        for _ in range(copies):
            self.inner.send_record(payload)
        self.stats.sent += 1

    def recv_record(self, timeout: float | None = None) -> bytes:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._check_disconnect("recv")
            if self._pending:
                record = self._pending.pop(0)
            else:
                remaining: float | None = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RpcTimeout("chaos recv timed out")
                record = self.inner.recv_record(timeout=remaining)
            self._records_seen += 1
            if self._chance(self.config.drop_rate):
                self.stats.drops += 1
                self._note("drop", "recv")
                continue  # lost in transit: keep waiting
            if self._chance(self.config.dup_rate):
                self.stats.dups += 1
                self._note("dup", "recv")
                self._pending.append(record)
            self._maybe_delay("recv")
            self.stats.received += 1
            return self._mutate(record, "recv")

    def close(self) -> None:
        self.inner.close()
