"""A simulated serial link between the NT host and the CE target.

"For each system call or function tested, the test execution and
control portion is compiled on the PC and downloaded to the Windows CE
machine via a serial port connection." (paper, section 3.2)

The link is a pair of byte FIFOs with a configurable per-message
latency, counted against a virtual transfer clock -- which is how the
reproduction surfaces the paper's observation that CE testing ran
"several orders of magnitude slower ... five to ten seconds per test
case".
"""

from __future__ import annotations

import json
from collections import deque


class SerialLinkDown(RuntimeError):
    """The cable was unplugged (used by fault-injection tests)."""


class SerialLink:
    """Bidirectional framed byte link with simulated latency.

    Frames are length-prefixed JSON blobs (the host<->target agent
    protocol is line-of-sight simple, as a serial protocol would be).
    """

    def __init__(self, latency_ms_per_kb: int = 900) -> None:
        self.latency_ms_per_kb = latency_ms_per_kb
        self._to_target: deque[bytes] = deque()
        self._to_host: deque[bytes] = deque()
        #: Accumulated virtual transfer time.
        self.transfer_ms = 0
        self.connected = True

    def _transfer(self, payload: bytes) -> None:
        if not self.connected:
            raise SerialLinkDown("serial link is disconnected")
        self.transfer_ms += max(
            1, (len(payload) * self.latency_ms_per_kb) // 1024
        )

    # -- host side -------------------------------------------------------

    def host_send(self, message: dict) -> None:
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        self._transfer(payload)
        self._to_target.append(payload)

    def host_recv(self) -> dict | None:
        if not self.connected:
            raise SerialLinkDown("serial link is disconnected")
        if not self._to_host:
            return None
        return json.loads(self._to_host.popleft().decode("utf-8"))

    # -- target side ------------------------------------------------------

    def target_send(self, message: dict) -> None:
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        self._transfer(payload)
        self._to_host.append(payload)

    def target_recv(self) -> dict | None:
        if not self.connected:
            raise SerialLinkDown("serial link is disconnected")
        if not self._to_target:
            return None
        return json.loads(self._to_target.popleft().decode("utf-8"))

    def disconnect(self) -> None:
        self.connected = False
