"""Durable job queue for the multi-tenant campaign service.

Clients submit campaign specs; the service leases per-variant shards to
workers and marks them done as checkpoints land.  Everything that must
survive a crash or a SIGTERM drain lives here, in one directory:

* ``queue.json`` -- a compacted snapshot of every job record, written
  atomically (temp + rename, the :mod:`repro.core.results_io`
  discipline).
* ``queue.journal`` -- an append-only JSONL journal of operations since
  the last snapshot (``submit`` / ``shard_done`` / ``job_done`` /
  ``job_failed``).  Loading replays the journal over the snapshot; a
  torn final line (the process died mid-append) is tolerated and
  dropped, exactly like :func:`repro.obs.recorder.read_events`.
* ``jobs/<job_id>/`` -- per-job artifacts: one ``<variant>.shard``
  checkpoint per leased shard (the restart-from-checkpoint documents
  the workers maintain) and, once every shard completes, the merged
  ``results.json`` saved via :func:`repro.core.results_io.save_results`
  -- byte-identical to the same campaign run serially.

Lease state is deliberately *not* durable: leases die with the service
process, so a restarted service sees every non-done shard as pending
and re-leases it, resuming from the shard checkpoint on disk.

Submission is idempotent on ``(tenant, job_key)``: a client that
retransmits SUBMIT over a lossy link (or reconnects and resubmits) gets
the existing job back instead of a duplicate campaign.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import warnings
from dataclasses import dataclass, field

from repro.core.results_io import _atomic_write, shard_path

QUEUE_FORMAT = "ballista-job-queue"
#: Version 2 added :attr:`JobSpec.shards` (intra-variant slicing).
#: Version-1 snapshots load unchanged: a missing ``shards`` means 1.
QUEUE_VERSION = 2
SUPPORTED_QUEUE_VERSIONS = (1, 2)

#: Journal appends between automatic compactions.
DEFAULT_COMPACT_EVERY = 256

JOB_PENDING = "pending"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


class JobQueueError(ValueError):
    """The queue directory holds something that is not a job queue."""


@dataclass(frozen=True)
class JobSpec:
    """One tenant's campaign request: the unit of work clients submit.

    ``variants`` become the job's shards (one worker lease each);
    ``muts`` optionally restricts the plan to a set of bare MuT names,
    as on :class:`~repro.core.campaign.Campaign`.  ``shards`` slices
    each variant's plan into that many intra-variant shard tokens
    (``variant#k``); the default 1 keeps the pre-sharding one-token-
    per-variant scheme, so old journals and snapshots load unchanged.
    """

    tenant: str
    job_key: str
    variants: tuple[str, ...]
    cap: int
    muts: tuple[str, ...] | None = None
    checkpoint_every: int = 5
    shards: int = 1

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "job_key": self.job_key,
            "variants": list(self.variants),
            "cap": self.cap,
            "muts": None if self.muts is None else list(self.muts),
            "checkpoint_every": self.checkpoint_every,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        try:
            muts = data.get("muts")
            return cls(
                tenant=str(data["tenant"]),
                job_key=str(data["job_key"]),
                variants=tuple(str(v) for v in data["variants"]),
                cap=int(data["cap"]),
                muts=None if muts is None else tuple(str(m) for m in muts),
                checkpoint_every=int(data.get("checkpoint_every", 5)),
                shards=int(data.get("shards", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JobQueueError(f"malformed job spec: {exc}") from exc

    def shard_tokens(self, variant: str) -> list[str]:
        """The work tokens one variant contributes: the bare variant
        key when the job is unsharded (the historical scheme, so old
        ``shards_done`` sets keep matching), else ``variant#k`` per
        slice."""
        if self.shards <= 1:
            return [variant]
        return [f"{variant}#{index}" for index in range(self.shards)]

    def all_tokens(self) -> list[str]:
        return [
            token
            for variant in self.variants
            for token in self.shard_tokens(variant)
        ]


def split_token(token: str) -> tuple[str, int]:
    """``(variant, slice index)`` from a shard token.  Bare variants
    (unsharded jobs) are slice 0."""
    variant, _, index = token.partition("#")
    try:
        return variant, int(index) if index else 0
    except ValueError:
        return variant, 0


@dataclass
class JobRecord:
    """One queued job's durable state."""

    job_id: str
    spec: JobSpec
    state: str = JOB_PENDING
    shards_done: set[str] = field(default_factory=set)
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.as_dict(),
            "state": self.state,
            "shards_done": sorted(self.shards_done),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        try:
            return cls(
                job_id=str(data["job_id"]),
                spec=JobSpec.from_dict(data["spec"]),
                state=str(data.get("state", JOB_PENDING)),
                shards_done=set(data.get("shards_done", [])),
                error=data.get("error"),
            )
        except (KeyError, TypeError) as exc:
            raise JobQueueError(f"malformed job record: {exc}") from exc


class JobQueue:
    """The persistent queue: snapshot + journal + per-job artifacts.

    Thread-safe: the service's network thread submits while its
    scheduler thread marks shards done.
    """

    def __init__(
        self,
        root: str | pathlib.Path,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "jobs").mkdir(exist_ok=True)
        self.compact_every = max(1, compact_every)
        self._lock = threading.Lock()
        self._jobs: dict[str, JobRecord] = {}
        self._by_submit_key: dict[tuple[str, str], str] = {}
        self._next_seq = 1
        self._journal_ops = 0
        self._load()
        self._journal = open(  # noqa: SIM115 - long-lived append handle
            self._journal_path(), "a", encoding="utf-8"
        )

    # -- paths ---------------------------------------------------------

    def _snapshot_path(self) -> pathlib.Path:
        return self.root / "queue.json"

    def _journal_path(self) -> pathlib.Path:
        return self.root / "queue.journal"

    def job_dir(self, job_id: str) -> pathlib.Path:
        path = self.root / "jobs" / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def shard_file(self, job_id: str, token: str) -> pathlib.Path:
        """Where this shard token's worker checkpoints (and resumes
        from).  ``token`` is a bare variant key or ``variant#k``."""
        return shard_path(self.job_dir(job_id) / "campaign.ckpt", token)

    def results_file(self, job_id: str) -> pathlib.Path:
        return self.job_dir(job_id) / "results.json"

    # -- persistence ---------------------------------------------------

    def _load(self) -> None:
        snapshot = self._snapshot_path()
        if snapshot.exists():
            document = json.loads(snapshot.read_text(encoding="utf-8"))
            if document.get("format") != QUEUE_FORMAT:
                raise JobQueueError(f"{snapshot} is not a job-queue snapshot")
            if document.get("version") not in SUPPORTED_QUEUE_VERSIONS:
                raise JobQueueError(
                    f"unsupported queue version {document.get('version')!r}"
                )
            self._next_seq = int(document.get("next_seq", 1))
            for data in document.get("jobs", []):
                record = JobRecord.from_dict(data)
                self._jobs[record.job_id] = record
        journal = self._journal_path()
        if journal.exists():
            for line_no, line in enumerate(
                journal.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if not line.strip():
                    continue
                try:
                    op = json.loads(line)
                except json.JSONDecodeError:
                    # A torn tail: the process died mid-append.  The op
                    # it was recording never took effect; everything
                    # before it did.
                    warnings.warn(
                        f"job-queue journal {journal} has a torn line "
                        f"{line_no}; replay stops there"
                    )
                    break
                self._apply(op)
                self._journal_ops += 1
        # Leases are process-local: anything that was mid-flight when
        # the previous service died is simply pending again.
        for record in self._jobs.values():
            if record.state == JOB_RUNNING:
                record.state = JOB_PENDING
        # Rebuild the idempotent-submission index over everything loaded
        # (snapshot rows never travel through ``_apply``).
        self._by_submit_key = {
            (record.spec.tenant, record.spec.job_key): record.job_id
            for record in self._jobs.values()
        }

    def _apply(self, op: dict) -> None:
        """Replay one journal operation onto the in-memory state."""
        kind = op.get("op")
        if kind == "submit":
            record = JobRecord.from_dict(op["job"])
            self._jobs[record.job_id] = record
            self._next_seq = max(
                self._next_seq, _seq_of(record.job_id) + 1
            )
        elif kind == "shard_done":
            record = self._jobs.get(op.get("job_id", ""))
            if record is not None:
                record.shards_done.add(str(op.get("variant")))
        elif kind == "job_done":
            record = self._jobs.get(op.get("job_id", ""))
            if record is not None:
                record.state = JOB_DONE
        elif kind == "job_failed":
            record = self._jobs.get(op.get("job_id", ""))
            if record is not None:
                record.state = JOB_FAILED
                record.error = str(op.get("error", ""))
        else:
            warnings.warn(f"job-queue journal has unknown op {kind!r}")

    def _append(self, op: dict) -> None:
        self._journal.write(json.dumps(op, sort_keys=True) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())
        self._journal_ops += 1
        if self._journal_ops >= self.compact_every:
            self._compact_locked()

    def _compact_locked(self) -> None:
        document = {
            "format": QUEUE_FORMAT,
            "version": QUEUE_VERSION,
            "next_seq": self._next_seq,
            "jobs": [
                self._jobs[job_id].as_dict()
                for job_id in sorted(self._jobs, key=_seq_of)
            ],
        }
        _atomic_write(
            self._snapshot_path(),
            json.dumps(document, separators=(",", ":"), sort_keys=True),
        )
        # The snapshot now covers every journaled op: truncate in place
        # (the handle stays valid for future appends).
        self._journal.seek(0)
        self._journal.truncate()
        self._journal.flush()
        self._journal_ops = 0

    def compact(self) -> None:
        """Fold the journal into an atomic snapshot (drain/shutdown)."""
        with self._lock:
            self._compact_locked()

    def close(self) -> None:
        with self._lock:
            self._compact_locked()
            self._journal.close()

    # -- operations ----------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Enqueue a job; idempotent on ``(tenant, job_key)``.

        Returns ``(record, created)`` -- ``created`` is False when the
        submission deduplicated against an existing job."""
        with self._lock:
            existing = self._by_submit_key.get((spec.tenant, spec.job_key))
            if existing is not None:
                return self._jobs[existing], False
            job_id = f"job-{self._next_seq:04d}"
            self._next_seq += 1
            record = JobRecord(job_id=job_id, spec=spec)
            self._jobs[job_id] = record
            self._by_submit_key[(spec.tenant, spec.job_key)] = job_id
            self._append({"op": "submit", "job": record.as_dict()})
            return record, True

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[JobRecord]:
        """Every job record, in submission order."""
        with self._lock:
            return [
                self._jobs[job_id]
                for job_id in sorted(self._jobs, key=_seq_of)
            ]

    def pending_shards(self) -> list[tuple[str, str]]:
        """``(job_id, token)`` shards not yet done *and currently
        runnable*, for jobs still in flight, in submission order then
        spec variant order then slice order.  The lease manager decides
        which of these are currently claimable.

        Tokens are bare variant keys for unsharded jobs, ``variant#k``
        for sharded ones.  A sharded slice is runnable only once its
        predecessor slice is done: slices of one variant share a
        simulated machine, and slice k+1 must boot from slice k's exact
        end wear (read from slice k's checkpoint on disk), so the
        service runs each variant's slices as a chain while different
        variants' chains fill the worker pool."""
        out: list[tuple[str, str]] = []
        with self._lock:
            for job_id in sorted(self._jobs, key=_seq_of):
                record = self._jobs[job_id]
                if record.state in (JOB_DONE, JOB_FAILED):
                    continue
                for variant in record.spec.variants:
                    tokens = record.spec.shard_tokens(variant)
                    for index, token in enumerate(tokens):
                        if token in record.shards_done:
                            continue
                        if (
                            index == 0
                            or tokens[index - 1] in record.shards_done
                        ):
                            out.append((job_id, token))
                        break  # later slices wait on this one
        return out

    def mark_running(self, job_id: str) -> None:
        """In-memory only: lease state is not durable."""
        with self._lock:
            record = self._jobs[job_id]
            if record.state == JOB_PENDING:
                record.state = JOB_RUNNING

    def mark_shard_done(self, job_id: str, token: str) -> bool:
        """Record one shard token's completion; returns True when it
        was the job's last outstanding token.  (The journal op keeps
        its historical ``variant`` field name -- for unsharded jobs the
        token *is* the variant, so old journals replay unchanged.)"""
        with self._lock:
            record = self._jobs[job_id]
            if token not in record.shards_done:
                record.shards_done.add(token)
                self._append(
                    {"op": "shard_done", "job_id": job_id, "variant": token}
                )
            return set(record.spec.all_tokens()) <= record.shards_done

    def mark_job_done(self, job_id: str) -> None:
        with self._lock:
            record = self._jobs[job_id]
            if record.state != JOB_DONE:
                record.state = JOB_DONE
                self._append({"op": "job_done", "job_id": job_id})

    def mark_job_failed(self, job_id: str, error: str) -> None:
        with self._lock:
            record = self._jobs[job_id]
            if record.state != JOB_FAILED:
                record.state = JOB_FAILED
                record.error = error
                self._append(
                    {"op": "job_failed", "job_id": job_id, "error": error}
                )


def _seq_of(job_id: str) -> int:
    """Submission sequence from a ``job-NNNN`` identifier (0 on junk,
    which only affects display ordering)."""
    _, _, digits = job_id.partition("-")
    try:
        return int(digits)
    except ValueError:
        return 0
