"""Ballista service protocol: procedure numbers and body codecs.

The protocol is deliberately chatty in the way the 1999 service was: the
client announces its OS variant, the server hands out a per-MuT test
plan (the deterministic case list), and the client streams back one
result batch per MuT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.xdr import XdrDecoder, XdrEncoder

PROC_HELLO = 1
PROC_GET_PLAN = 2
PROC_REPORT = 3
PROC_COMPLETE = 4
PROC_SUMMARY = 5
PROC_HEARTBEAT = 6


@dataclass(frozen=True)
class PlanEntry:
    """One MuT the server wants tested."""

    api: str
    name: str
    group: str
    param_types: tuple[str, ...]


def encode_hello(variant_key: str) -> bytes:
    return XdrEncoder().string(variant_key).bytes()


def decode_hello(dec: XdrDecoder) -> str:
    return dec.string()


def encode_hello_reply(entries: list[PlanEntry], cap: int) -> bytes:
    enc = XdrEncoder()
    enc.u32(cap)
    enc.u32(len(entries))
    for entry in entries:
        enc.string(entry.api).string(entry.name).string(entry.group)
        enc.string_array(list(entry.param_types))
    return enc.bytes()


def decode_hello_reply(dec: XdrDecoder) -> tuple[list[PlanEntry], int]:
    cap = dec.u32()
    count = dec.u32()
    entries = []
    for _ in range(count):
        api = dec.string()
        name = dec.string()
        group = dec.string()
        params = tuple(dec.string_array())
        entries.append(PlanEntry(api, name, group, params))
    return entries, cap


def encode_get_plan(api: str, name: str) -> bytes:
    return XdrEncoder().string(api).string(name).bytes()


def decode_get_plan(dec: XdrDecoder) -> tuple[str, str]:
    return dec.string(), dec.string()


def encode_plan_reply(cases: list[tuple[str, ...]]) -> bytes:
    enc = XdrEncoder()
    enc.u32(len(cases))
    for value_names in cases:
        enc.string_array(list(value_names))
    return enc.bytes()


def decode_plan_reply(dec: XdrDecoder) -> list[tuple[str, ...]]:
    count = dec.u32()
    return [tuple(dec.string_array()) for _ in range(count)]


def encode_report(
    variant: str,
    api: str,
    name: str,
    codes: bytes,
    exceptional: bytes,
    interference: bool,
    capped: bool,
    planned: int,
    error_codes: list[int] | None = None,
    seq: int = 0,
) -> bytes:
    """``seq`` is the per-variant batch sequence number: a retransmitted
    REPORT reuses its number, which is how the server recognises (and
    acknowledges without double-counting) duplicates."""
    enc = XdrEncoder()
    enc.string(variant).string(api).string(name)
    enc.opaque(codes).opaque(exceptional)
    enc.boolean(interference).boolean(capped)
    enc.u32(planned)
    blob = b"".join(
        (code & 0xFFFF_FFFF).to_bytes(4, "big") for code in (error_codes or [])
    )
    enc.opaque(blob)
    enc.u32(seq)
    return enc.bytes()


def decode_report(dec: XdrDecoder) -> dict:
    report = {
        "variant": dec.string(),
        "api": dec.string(),
        "name": dec.string(),
        "codes": dec.opaque(),
        "exceptional": dec.opaque(),
        "interference": dec.boolean(),
        "capped": dec.boolean(),
        "planned": dec.u32(),
    }
    blob = dec.opaque()
    report["error_codes"] = [
        int.from_bytes(blob[i : i + 4], "big") for i in range(0, len(blob), 4)
    ]
    report["seq"] = dec.u32()
    return report
