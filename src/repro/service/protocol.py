"""Ballista service protocol: procedure numbers and body codecs.

The protocol is deliberately chatty in the way the 1999 service was: the
client announces its OS variant, the server hands out a per-MuT test
plan (the deterministic case list), and the client streams back one
result batch per MuT.

The v2 campaign-service procedures (``PROC_SUBMIT`` ..
``PROC_QUEUE_STATS``) carry JSON documents inside a single XDR string.
Their payloads are small, irregular control-plane records -- job specs,
status snapshots, row pages -- where a JSON envelope beats hand-rolled
XDR structs; the framing, retransmission, and chaos machinery underneath
is unchanged.  All v2 procedures are idempotent: SUBMIT deduplicates on
``(tenant, job_key)``, STATUS and QUEUE_STATS are pure reads, and FETCH
is cursor-addressed, so the retrying RPC client can replay any of them
over a lossy link.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.service.xdr import XdrDecoder, XdrEncoder, XdrError

PROC_HELLO = 1
PROC_GET_PLAN = 2
PROC_REPORT = 3
PROC_COMPLETE = 4
PROC_SUMMARY = 5
PROC_HEARTBEAT = 6

# Campaign-service (multi-tenant queue) procedures.
PROC_SUBMIT = 10
PROC_JOB_STATUS = 11
PROC_FETCH = 12
PROC_QUEUE_STATS = 13

#: Server-side clamp on rows per FETCH page: keeps any one reply (and
#: the per-connection write buffer behind it) bounded.
MAX_FETCH_ROWS = 64


@dataclass(frozen=True)
class PlanEntry:
    """One MuT the server wants tested."""

    api: str
    name: str
    group: str
    param_types: tuple[str, ...]


def encode_hello(variant_key: str) -> bytes:
    return XdrEncoder().string(variant_key).bytes()


def decode_hello(dec: XdrDecoder) -> str:
    return dec.string()


def encode_hello_reply(entries: list[PlanEntry], cap: int) -> bytes:
    enc = XdrEncoder()
    enc.u32(cap)
    enc.u32(len(entries))
    for entry in entries:
        enc.string(entry.api).string(entry.name).string(entry.group)
        enc.string_array(list(entry.param_types))
    return enc.bytes()


def decode_hello_reply(dec: XdrDecoder) -> tuple[list[PlanEntry], int]:
    cap = dec.u32()
    count = dec.u32()
    entries = []
    for _ in range(count):
        api = dec.string()
        name = dec.string()
        group = dec.string()
        params = tuple(dec.string_array())
        entries.append(PlanEntry(api, name, group, params))
    return entries, cap


def encode_get_plan(api: str, name: str) -> bytes:
    return XdrEncoder().string(api).string(name).bytes()


def decode_get_plan(dec: XdrDecoder) -> tuple[str, str]:
    return dec.string(), dec.string()


def encode_plan_reply(cases: list[tuple[str, ...]]) -> bytes:
    enc = XdrEncoder()
    enc.u32(len(cases))
    for value_names in cases:
        enc.string_array(list(value_names))
    return enc.bytes()


def decode_plan_reply(dec: XdrDecoder) -> list[tuple[str, ...]]:
    count = dec.u32()
    return [tuple(dec.string_array()) for _ in range(count)]


def encode_report(
    variant: str,
    api: str,
    name: str,
    codes: bytes,
    exceptional: bytes,
    interference: bool,
    capped: bool,
    planned: int,
    error_codes: list[int] | None = None,
    seq: int = 0,
) -> bytes:
    """``seq`` is the per-variant batch sequence number: a retransmitted
    REPORT reuses its number, which is how the server recognises (and
    acknowledges without double-counting) duplicates."""
    enc = XdrEncoder()
    enc.string(variant).string(api).string(name)
    enc.opaque(codes).opaque(exceptional)
    enc.boolean(interference).boolean(capped)
    enc.u32(planned)
    blob = b"".join(
        (code & 0xFFFF_FFFF).to_bytes(4, "big") for code in (error_codes or [])
    )
    enc.opaque(blob)
    enc.u32(seq)
    return enc.bytes()


def decode_report(dec: XdrDecoder) -> dict:
    report = {
        "variant": dec.string(),
        "api": dec.string(),
        "name": dec.string(),
        "codes": dec.opaque(),
        "exceptional": dec.opaque(),
        "interference": dec.boolean(),
        "capped": dec.boolean(),
        "planned": dec.u32(),
    }
    blob = dec.opaque()
    report["error_codes"] = [
        int.from_bytes(blob[i : i + 4], "big") for i in range(0, len(blob), 4)
    ]
    report["seq"] = dec.u32()
    return report


# ----------------------------------------------------------------------
# Campaign-service v2: JSON-in-XDR control plane
# ----------------------------------------------------------------------


def encode_json(document: dict) -> bytes:
    """Encode a v2 request/reply body: one JSON document, one XDR
    string.  Keys are sorted so identical documents are byte-identical
    on the wire (retransmissions are literal replays)."""
    return (
        XdrEncoder()
        .string(json.dumps(document, sort_keys=True, separators=(",", ":")))
        .bytes()
    )


def decode_json(dec: XdrDecoder) -> dict:
    """Decode a v2 body; malformed JSON (a corrupted record that still
    parsed as an XDR string) raises :class:`XdrError` so it is handled
    exactly like any other undecodable body."""
    text = dec.string()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise XdrError(f"v2 body is not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise XdrError(
            f"v2 body must be a JSON object, got {type(document).__name__}"
        )
    return document
