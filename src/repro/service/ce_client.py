"""The Windows CE split testing client (paper section 3.2).

The Ballista client could not run on the CE device, so it was split:

* **test generation and reporting** on a Windows NT PC
  (:class:`CEHostClient`), and
* **test execution and control** on the CE target
  (:class:`CETargetAgent`), reached over a serial link.

The CE remote API gives the host file I/O and process creation but *no
process synchronisation*, so the host starts the test process with the
parameter list on its command line and then polls the target filesystem
until the result file appears -- "unfortunately this means tests are
several orders of magnitude slower ... taking five to ten seconds per
test case", which the simulation's virtual clock reproduces.

A crashed target stops answering the poll; the host declares a
Catastrophic failure, asks for a (virtual) hard reboot, and moves on to
the next MuT.
"""

from __future__ import annotations

from repro.core.crash_scale import CaseCode
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuT, MuTRegistry, default_registry
from repro.core.results import ResultSet
from repro.core.types import TypeRegistry, default_types
from repro.service.serial import SerialLink
from repro.sim.errors import MachineCrashed
from repro.sim.machine import Machine
from repro.sim.personality import Personality

_INTERFERENCE_MARKER = "accumulated corruption"

#: Virtual cost of downloading a per-MuT test executable to the target.
DOWNLOAD_MS = 4_000
#: Virtual cost of starting the test process through the remote API.
CREATE_MS = 4_200
#: Virtual cost of one result-file poll round trip.
POLL_MS = 450
#: Polls before the host declares the target dead.
MAX_POLLS = 12


class CETargetAgent:
    """The execution/control component running on the CE device.

    It answers the host's remote-API requests: create a process that
    runs one test case and records the outcome into the target
    filesystem, read back files, and reboot after a crash.
    """

    def __init__(
        self,
        machine: Machine,
        link: SerialLink,
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
        cap: int = 300,
    ) -> None:
        self.machine = machine
        self.link = link
        self.registry = registry or default_registry()
        self.generator = CaseGenerator(types or default_types(), cap=cap)

    def pump(self) -> None:
        """Process every pending host request (the agent's main loop
        body; the host drives it between polls)."""
        while True:
            request = self.link.target_recv()
            if request is None:
                return
            self._handle(request)

    def _handle(self, request: dict) -> None:
        command = request.get("cmd")
        if command == "reboot":
            self.machine.reboot()
            self.link.target_send({"ok": True, "rebooted": True})
            return
        if self.machine.crashed:
            # A crashed device answers nothing: the host's polls simply
            # time out.  (We drop the request on the floor.)
            return
        if command == "ping":
            self.link.target_send({"ok": True})
        elif command == "create_process":
            self._run_test(request)
            self.link.target_send({"ok": True, "started": True})
        elif command == "read_file":
            node = self.machine.fs.lookup(request["path"])
            if node is None or node.is_directory:
                self.link.target_send({"ok": False, "missing": True})
            else:
                self.link.target_send(
                    {"ok": True, "data": bytes(node.data).decode("latin-1")}
                )
        elif command == "delete_file":
            try:
                self.machine.fs.unlink(request["path"])
                self.link.target_send({"ok": True})
            except Exception:
                self.link.target_send({"ok": False})
        else:
            self.link.target_send({"ok": False, "error": "bad command"})

    def _run_test(self, request: dict) -> None:
        """Spawn the test process: argv carries (api, name, value names),
        the outcome is recorded into the result file."""
        api, name = request["argv"][0], request["argv"][1]
        value_names = tuple(request["argv"][2:])
        mut = self.registry.get(api, name)
        case = TestCase(mut.name, int(request.get("index", 0)), value_names)
        executor = Executor(self.machine, self.generator)
        try:
            outcome = executor.run_case(mut, case)
        except MachineCrashed:
            return  # device is down; nothing gets written
        if self.machine.crashed:
            return  # the crash ate the filesystem write too
        record = f"{int(outcome.code)} {outcome.detail}".strip()
        self.machine.fs.create_file(request["result_file"], record.encode("latin-1"))


class CEHostClient:
    """The generation/reporting component running on the NT host."""

    def __init__(
        self,
        personality: Personality,
        link: SerialLink,
        agent: CETargetAgent,
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
        cap: int = 300,
    ) -> None:
        if personality.api != "win32":
            raise ValueError("the CE split client tests Win32 targets")
        self.personality = personality
        self.link = link
        self.agent = agent
        self.registry = registry or default_registry()
        self.types = types or default_types()
        self.generator = CaseGenerator(self.types, cap=cap)
        #: Virtual host-side wall-clock spent (ms).
        self.elapsed_ms = 0

    # ------------------------------------------------------------------

    def _request(self, message: dict) -> dict | None:
        self.link.host_send(message)
        self.agent.pump()
        return self.link.host_recv()

    def _poll_result(self, path: str) -> str | None:
        """Poll for the result file, as the paper's host did."""
        for _ in range(MAX_POLLS):
            self.elapsed_ms += POLL_MS
            reply = self._request({"cmd": "read_file", "path": path})
            if reply is not None and reply.get("ok"):
                return reply["data"]
        return None

    def run_mut(self, mut: MuT, result: "object") -> None:
        """Test one MuT, recording into a MuTResult-compatible object."""
        self.elapsed_ms += DOWNLOAD_MS  # download the test executable
        for case in self.generator.cases(mut):
            result_file = f"/tmp/ce_result_{mut.name}_{case.index}.txt"
            self.elapsed_ms += CREATE_MS  # remote process creation
            self._request(
                {
                    "cmd": "create_process",
                    "argv": [mut.api, mut.name, *case.value_names],
                    "index": case.index,
                    "result_file": result_file,
                }
            )
            data = self._poll_result(result_file)
            if data is None:
                # The device stopped answering: Catastrophic.
                result.record(
                    case.index,
                    CaseCode.CATASTROPHIC,
                    True,
                    "target unresponsive after crash",
                    case.value_names,
                )
                if _INTERFERENCE_MARKER in (
                    self.agent.machine.crash_reason or ""
                ):
                    result.interference_crash = True
                self._request({"cmd": "reboot"})
                return
            code_text, _, detail = data.partition(" ")
            result.record(
                case.index,
                CaseCode(int(code_text)),
                False,  # the host cannot see ground truth remotely
                detail,
                case.value_names,
            )
            self._request({"cmd": "delete_file", "path": result_file})

    def run(self, muts: list[MuT] | None = None) -> ResultSet:
        """Run the full CE plan; returns a ResultSet."""
        results = ResultSet()
        plan = muts or self.registry.for_variant(self.personality)
        for mut in plan:
            result = results.new_result(
                self.personality.key, mut.name, mut.api, mut.group
            )
            result.planned_cases = self.generator.case_count(mut)
            result.capped = self.generator.is_capped(mut)
            self.run_mut(mut, result)
        return results
