"""The portable Ballista testing client.

One client instance tests one OS variant: it boots the simulated
machine, announces itself to the server, pulls the deterministic test
plan for each MuT, executes every case in a fresh process, and streams
one result batch per MuT back.  A Catastrophic failure interrupts the
MuT (the machine reboots) exactly as in the local campaign.

Dependability: calls go through a retrying
:class:`~repro.service.rpc.RpcClient` (exponential backoff, per-call
deadlines) so a lossy link does not kill the campaign; every REPORT
carries a per-variant sequence number so a retransmitted batch is never
double-counted by the server; and the client can periodically write a
small checkpoint file from which a restarted client resumes, skipping
MuTs whose batches the server already acknowledged.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import socket
import time
import zlib
from typing import Callable

from repro.core.crash_scale import CaseCode
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuTRegistry, default_registry
from repro.core.results import ResultSet
from repro.core.results_io import results_from_dict
from repro.core.types import TypeRegistry, default_types
from repro.service import protocol as P
from repro.service.rpc import (
    RetryPolicy,
    RpcClient,
    RpcError,
    RpcTimeout,
    SocketTransport,
    Transport,
)
from repro.sim.machine import Machine
from repro.sim.personality import Personality

_INTERFERENCE_MARKER = "accumulated corruption"

CLIENT_CHECKPOINT_FORMAT = "ballista-client-checkpoint"


def default_connect_timeout() -> float:
    """TCP connect timeout in seconds: ``BALLISTA_CONNECT_TIMEOUT``,
    default 30 (the service's historical hardcoded value).  Raises
    :class:`ValueError` naming the variable on junk or non-positive
    values, so callers (the CLI) can report it cleanly -- the
    ``BALLISTA_CAP`` precedent."""
    raw = os.environ.get("BALLISTA_CONNECT_TIMEOUT", "30")
    try:
        timeout = float(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_CONNECT_TIMEOUT must be a number of seconds, "
            f"got {raw!r}"
        ) from None
    if timeout <= 0:
        raise ValueError(
            f"BALLISTA_CONNECT_TIMEOUT must be > 0 seconds, got {timeout}"
        )
    return timeout


class BallistaClient:
    """Runs one variant's tests against the central server.

    :param retry: RPC retransmission policy; pass ``None`` for the
        legacy single-shot behaviour (any transport fault is fatal).
    :param checkpoint_path: write a resume file here after every
        ``checkpoint_every`` acknowledged MuT batches; a relaunched
        client pointed at the same path skips the acknowledged MuTs.
    """

    def __init__(
        self,
        personality: Personality,
        transport: Transport,
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
        retry: RetryPolicy | None = RetryPolicy(),
        checkpoint_path: str | pathlib.Path | None = None,
        checkpoint_every: int = 5,
    ) -> None:
        self.personality = personality
        if retry is not None and retry.jitter_seed == 0:
            # De-correlate the fleet deterministically: each variant's
            # client jitters its retries on its own reproducible stream
            # (same variant -> same schedule on every run), so clients
            # that lost the same server do not retry in lock-step.
            retry = dataclasses.replace(
                retry, jitter_seed=zlib.crc32(personality.key.encode())
            )
        self.rpc = RpcClient(transport, retry=retry)
        self.registry = registry or default_registry()
        self.types = types or default_types()
        self.checkpoint_path = (
            pathlib.Path(checkpoint_path) if checkpoint_path else None
        )
        self.checkpoint_every = checkpoint_every
        #: "api:name" keys of MuTs whose REPORT the server acknowledged.
        self._reported: set[str] = set()
        self._seq = 0
        self._wear: dict = {}
        self._load_checkpoint()

    @classmethod
    def connect(
        cls,
        personality: Personality,
        host: str,
        port: int,
        wrap: Callable[[Transport], Transport] | None = None,
        timeout: float | None = None,
        **kwargs,
    ) -> "BallistaClient":
        """Connect over TCP.  ``wrap`` interposes on the transport before
        the client sees it (e.g. ``ChaosTransport`` for fault drills);
        ``timeout`` bounds the TCP connect (default:
        ``BALLISTA_CONNECT_TIMEOUT`` or 30 s)."""
        if timeout is None:
            timeout = default_connect_timeout()
        sock = socket.create_connection((host, port), timeout=timeout)
        transport: Transport = SocketTransport(sock)
        if wrap is not None:
            transport = wrap(transport)
        return cls(personality, transport, **kwargs)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _load_checkpoint(self) -> None:
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return
        document = json.loads(self.checkpoint_path.read_text(encoding="utf-8"))
        if document.get("format") != CLIENT_CHECKPOINT_FORMAT:
            raise ValueError(f"{self.checkpoint_path} is not a client checkpoint")
        if document.get("variant") != self.personality.key:
            raise ValueError(
                f"checkpoint is for variant {document.get('variant')!r}, "
                f"this client tests {self.personality.key!r}"
            )
        self._reported = set(document.get("reported", []))
        self._seq = int(document.get("next_seq", len(self._reported)))
        self._wear = {
            k: int(v) if isinstance(v, (int, bool)) else v
            for k, v in document.get("machine_wear", {}).items()
        }

    def _save_checkpoint(self) -> None:
        if self.checkpoint_path is None:
            return
        document = {
            "format": CLIENT_CHECKPOINT_FORMAT,
            "version": 1,
            "variant": self.personality.key,
            "reported": sorted(self._reported),
            "next_seq": self._seq,
            "machine_wear": self._wear,
        }
        tmp = self.checkpoint_path.with_name(self.checkpoint_path.name + ".tmp")
        tmp.write_text(json.dumps(document), encoding="utf-8")
        os.replace(tmp, self.checkpoint_path)

    # ------------------------------------------------------------------

    def heartbeat(self) -> None:
        """Renew this variant's lease on the server."""
        self.rpc.call(P.PROC_HEARTBEAT, P.encode_hello(self.personality.key))

    def run(self) -> int:
        """Execute the full plan; returns the number of MuTs tested."""
        reply = self.rpc.call(
            P.PROC_HELLO, P.encode_hello(self.personality.key)
        )
        entries, cap = P.decode_hello_reply(reply)
        generator = CaseGenerator(self.types, cap=cap)
        machine = Machine(self.personality)
        if self._wear:
            machine.restore_wear(self._wear)
        executor = Executor(machine, generator)

        since_checkpoint = 0
        for entry in entries:
            key = f"{entry.api}:{entry.name}"
            if key in self._reported:
                continue  # the server already has this batch
            mut = self.registry.get(entry.api, entry.name)
            plan = P.decode_plan_reply(
                self.rpc.call(
                    P.PROC_GET_PLAN, P.encode_get_plan(entry.api, entry.name)
                )
            )
            codes = bytearray()
            exceptional = bytearray()
            error_codes: list[int] = []
            interference = False
            for index, value_names in enumerate(plan):
                case = TestCase(mut.name, index, value_names)
                outcome = executor.run_case(mut, case)
                codes.append(int(outcome.code))
                exceptional.append(1 if outcome.exceptional_input else 0)
                error_codes.append(outcome.error_code)
                if outcome.code is CaseCode.CATASTROPHIC:
                    if _INTERFERENCE_MARKER in outcome.detail:
                        interference = True
                    machine.reboot()
                    break
            self.rpc.call(
                P.PROC_REPORT,
                P.encode_report(
                    self.personality.key,
                    entry.api,
                    entry.name,
                    bytes(codes),
                    bytes(exceptional),
                    interference,
                    capped=generator.is_capped(mut),
                    planned=len(plan),
                    error_codes=error_codes,
                    seq=self._seq,
                ),
            )
            self._seq += 1
            self._reported.add(key)
            self._wear = machine.wear_state()
            since_checkpoint += 1
            if since_checkpoint >= self.checkpoint_every:
                self._save_checkpoint()
                since_checkpoint = 0
        self.rpc.call(P.PROC_COMPLETE, P.encode_hello(self.personality.key))
        self._save_checkpoint()
        return len(entries)

    def close(self) -> None:
        self.rpc.close()


# ======================================================================
# Multi-tenant campaign-service client
# ======================================================================


class ServiceError(RpcError):
    """The campaign service rejected a request (an application-level
    ``{"ok": false}`` reply -- the transport and RPC layers are fine)."""


class ServiceClient:
    """Client for the :class:`~repro.service.server.CampaignService`.

    Tenants submit campaign specs and poll for status and result pages;
    the service runs the cases.  Every v2 procedure is idempotent, so
    the retrying RPC core can replay any request over a lossy link, and
    FETCH cursors make result streaming resumable: keep the ``state``
    dict passed to :meth:`stream` and a reconnected client picks up
    mid-stream without ever seeing a duplicate row.
    """

    def __init__(
        self,
        transport: Transport,
        retry: RetryPolicy | None = RetryPolicy(),
        recorder=None,
    ) -> None:
        self.rpc = RpcClient(transport, retry=retry, recorder=recorder)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        wrap: Callable[[Transport], Transport] | None = None,
        timeout: float | None = None,
        **kwargs,
    ) -> "ServiceClient":
        """Connect over TCP; same ``wrap``/``timeout`` contract as
        :meth:`BallistaClient.connect`."""
        if timeout is None:
            timeout = default_connect_timeout()
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        transport: Transport = SocketTransport(sock)
        if wrap is not None:
            transport = wrap(transport)
        return cls(transport, **kwargs)

    def _call(self, procedure: int, document: dict) -> dict:
        reply = P.decode_json(self.rpc.call(procedure, P.encode_json(document)))
        if not reply.get("ok", False):
            raise ServiceError(str(reply.get("error", "service error")))
        return reply

    # ------------------------------------------------------------------

    @staticmethod
    def job_key_for(document: dict) -> str:
        """Deterministic submission key: the same spec always maps to
        the same key, so a resubmission (retransmit, reconnect, or a
        retried CLI invocation) deduplicates server-side."""
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return f"auto-{zlib.crc32(canonical.encode()):08x}"

    def submit(
        self,
        variants: list[str],
        cap: int,
        muts: list[str] | None = None,
        tenant: str = "default",
        job_key: str | None = None,
        checkpoint_every: int = 5,
        shards: int = 1,
    ) -> tuple[str, bool]:
        """Submit a campaign; returns ``(job_id, created)`` --
        ``created`` is False when the service already had this
        ``(tenant, job_key)`` submission.  ``shards`` > 1 slices each
        variant's plan into that many chained slices (finer lease/
        checkpoint granularity; byte-identical results either way)."""
        document = {
            "tenant": tenant,
            "variants": list(variants),
            "cap": int(cap),
            "muts": None if muts is None else list(muts),
            "checkpoint_every": int(checkpoint_every),
            "shards": int(shards),
        }
        document["job_key"] = (
            job_key if job_key is not None else self.job_key_for(document)
        )
        reply = self._call(P.PROC_SUBMIT, document)
        return reply["job_id"], bool(reply["created"])

    def status(self, job_id: str) -> dict:
        """A coalesced snapshot: job state plus, per shard, done/leased
        flags, the grant attempt count, and the latest progress beacon."""
        return self._call(P.PROC_JOB_STATUS, {"job_id": job_id})

    def fetch(
        self,
        job_id: str,
        variant: str,
        cursor: int = 0,
        max_rows: int = P.MAX_FETCH_ROWS,
    ) -> dict:
        """One page of plan-ordered result rows from ``cursor``."""
        return self._call(
            P.PROC_FETCH,
            {
                "job_id": job_id,
                "variant": variant,
                "cursor": cursor,
                "max_rows": max_rows,
            },
        )

    def queue_stats(self) -> dict:
        return self._call(P.PROC_QUEUE_STATS, {})

    def stream(
        self,
        job_id: str,
        state: dict | None = None,
        poll_s: float = 0.05,
        timeout: float = 300.0,
    ) -> ResultSet:
        """Poll the job to completion, streaming result rows
        incrementally, and return the assembled
        :class:`~repro.core.results.ResultSet` (byte-identical, once
        saved, to the same campaign run serially).

        ``state`` is the resumable stream position (per-shard cursors
        plus rows already received).  Pass the *same dict* to a new
        client after a disconnect and the stream resumes exactly where
        it stopped -- no duplicate rows, nothing lost."""
        state = {} if state is None else state
        cursors = state.setdefault("cursors", {})
        rows = state.setdefault("rows", [])
        finished = state.setdefault("finished", [])
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            for variant in status["shards"]:
                if variant in finished:
                    continue
                while True:
                    page = self.fetch(
                        job_id, variant, cursor=cursors.get(variant, 0)
                    )
                    rows.extend(page["rows"])
                    cursors[variant] = page["cursor"]
                    if page["done"]:
                        finished.append(variant)
                        break
                    if not page["rows"]:
                        break  # drained what exists so far
            if status["state"] == "failed":
                raise ServiceError(
                    f"job {job_id} failed: {status.get('error')}"
                )
            if status["state"] == "done" and set(status["shards"]) <= set(
                finished
            ):
                return results_from_dict(
                    {
                        "format": "ballista-results",
                        "version": 2,
                        "results": rows,
                    }
                )
            if time.monotonic() >= deadline:
                raise RpcTimeout(
                    f"job {job_id} did not complete within {timeout}s"
                )
            time.sleep(poll_s)

    def close(self) -> None:
        self.rpc.close()
