"""The portable Ballista testing client.

One client instance tests one OS variant: it boots the simulated
machine, announces itself to the server, pulls the deterministic test
plan for each MuT, executes every case in a fresh process, and streams
one result batch per MuT back.  A Catastrophic failure interrupts the
MuT (the machine reboots) exactly as in the local campaign.
"""

from __future__ import annotations

import socket

from repro.core.crash_scale import CaseCode
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuTRegistry, default_registry
from repro.core.types import TypeRegistry, default_types
from repro.service import protocol as P
from repro.service.rpc import RpcClient, SocketTransport, Transport
from repro.sim.machine import Machine
from repro.sim.personality import Personality

_INTERFERENCE_MARKER = "accumulated corruption"


class BallistaClient:
    """Runs one variant's tests against the central server."""

    def __init__(
        self,
        personality: Personality,
        transport: Transport,
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
    ) -> None:
        self.personality = personality
        self.rpc = RpcClient(transport)
        self.registry = registry or default_registry()
        self.types = types or default_types()

    @classmethod
    def connect(
        cls, personality: Personality, host: str, port: int
    ) -> "BallistaClient":
        sock = socket.create_connection((host, port), timeout=30)
        return cls(personality, SocketTransport(sock))

    # ------------------------------------------------------------------

    def run(self) -> int:
        """Execute the full plan; returns the number of MuTs tested."""
        reply = self.rpc.call(
            P.PROC_HELLO, P.encode_hello(self.personality.key)
        )
        entries, cap = P.decode_hello_reply(reply)
        generator = CaseGenerator(self.types, cap=cap)
        machine = Machine(self.personality)
        executor = Executor(machine, generator)

        for entry in entries:
            mut = self.registry.get(entry.api, entry.name)
            plan = P.decode_plan_reply(
                self.rpc.call(
                    P.PROC_GET_PLAN, P.encode_get_plan(entry.api, entry.name)
                )
            )
            codes = bytearray()
            exceptional = bytearray()
            error_codes: list[int] = []
            interference = False
            for index, value_names in enumerate(plan):
                case = TestCase(mut.name, index, value_names)
                outcome = executor.run_case(mut, case)
                codes.append(int(outcome.code))
                exceptional.append(1 if outcome.exceptional_input else 0)
                error_codes.append(outcome.error_code)
                if outcome.code is CaseCode.CATASTROPHIC:
                    if _INTERFERENCE_MARKER in outcome.detail:
                        interference = True
                    machine.reboot()
                    break
            self.rpc.call(
                P.PROC_REPORT,
                P.encode_report(
                    self.personality.key,
                    entry.api,
                    entry.name,
                    bytes(codes),
                    bytes(exceptional),
                    interference,
                    capped=generator.is_capped(mut),
                    planned=len(plan),
                    error_codes=error_codes,
                ),
            )
        self.rpc.call(P.PROC_COMPLETE, P.encode_hello(self.personality.key))
        return len(entries)

    def close(self) -> None:
        self.rpc.close()
