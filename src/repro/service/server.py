"""The central Ballista test server.

The server owns the MuT registry and the deterministic case generator,
hands out test plans to clients, and accumulates their reports into a
:class:`~repro.core.results.ResultSet` that the analysis layer consumes
exactly as if a local :class:`~repro.core.campaign.Campaign` had
produced it.
"""

from __future__ import annotations

import socket
import threading

from repro.core.crash_scale import CaseCode
from repro.core.generator import CaseGenerator
from repro.core.mut import MuTRegistry, default_registry
from repro.core.results import ResultSet
from repro.core.types import TypeRegistry, default_types
from repro.service import protocol as P
from repro.service.rpc import SocketTransport, Transport, serve_connection
from repro.service.xdr import XdrDecoder
from repro.sim.personality import Personality


class BallistaServer:
    """Hands out test plans, collects results.

    :param variants: personalities the server knows (clients announce a
        variant key at HELLO time).
    :param cap: per-MuT case cap sent to clients.
    """

    def __init__(
        self,
        variants: list[Personality],
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
        cap: int = 300,
    ) -> None:
        self.registry = registry or default_registry()
        self.types = types or default_types()
        self.generator = CaseGenerator(self.types, cap=cap)
        self.cap = cap
        self._variants = {p.key: p for p in variants}
        self.results = ResultSet()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._completed: set[str] = set()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def handlers(self):
        return {
            P.PROC_HELLO: self._on_hello,
            P.PROC_GET_PLAN: self._on_get_plan,
            P.PROC_REPORT: self._on_report,
            P.PROC_COMPLETE: self._on_complete,
        }

    def _on_hello(self, dec: XdrDecoder) -> bytes:
        variant_key = P.decode_hello(dec)
        personality = self._variants[variant_key]
        entries = [
            P.PlanEntry(m.api, m.name, m.group, m.param_types)
            for m in self.registry.for_variant(personality)
        ]
        return P.encode_hello_reply(entries, self.cap)

    def _on_get_plan(self, dec: XdrDecoder) -> bytes:
        api, name = P.decode_get_plan(dec)
        mut = self.registry.get(api, name)
        cases = [case.value_names for case in self.generator.cases(mut)]
        return P.encode_plan_reply(cases)

    def _on_report(self, dec: XdrDecoder) -> bytes:
        report = P.decode_report(dec)
        mut = self.registry.get(report["api"], report["name"])
        with self._lock:
            result = self.results.new_result(
                report["variant"], mut.name, mut.api, mut.group
            )
            error_codes = report["error_codes"] or [0] * len(report["codes"])
            for index, (code, exceptional, error_code) in enumerate(
                zip(report["codes"], report["exceptional"], error_codes)
            ):
                result.record(
                    index,
                    CaseCode(code),
                    bool(exceptional),
                    error_code=error_code,
                )
            result.interference_crash = report["interference"]
            result.capped = report["capped"]
            result.planned_cases = report["planned"]
        return b""

    def _on_complete(self, dec: XdrDecoder) -> bytes:
        variant_key = P.decode_hello(dec)
        with self._lock:
            self._completed.add(variant_key)
        return b""

    def completed_variants(self) -> set[str]:
        with self._lock:
            return set(self._completed)

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------

    def attach(self, transport: Transport) -> threading.Thread:
        """Serve one client connection on a background thread."""
        thread = threading.Thread(
            target=serve_connection,
            args=(transport, self.handlers()),
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
        return thread

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Accept TCP clients; returns the bound (host, port)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self._listener = listener

        def accept_loop() -> None:
            while True:
                try:
                    conn, _addr = listener.accept()
                except OSError:
                    return
                self.attach(SocketTransport(conn))

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return listener.getsockname()

    def shutdown(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def join(self, variant_keys: set[str], timeout: float = 60.0) -> None:
        """Block until the given variants have reported completion."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if variant_keys <= self.completed_variants():
                return
            time.sleep(0.01)
        missing = variant_keys - self.completed_variants()
        raise TimeoutError(f"clients never completed: {sorted(missing)}")
