"""The central Ballista test server.

The server owns the MuT registry and the deterministic case generator,
hands out test plans to clients, and accumulates their reports into a
:class:`~repro.core.results.ResultSet` that the analysis layer consumes
exactly as if a local :class:`~repro.core.campaign.Campaign` had
produced it.

Dependability: every procedure is idempotent so that clients may
retransmit freely over lossy links -- HELLO and GET_PLAN are pure reads
of deterministic state, COMPLETE is a set insert, and REPORT carries a
per-variant sequence number so a duplicate batch is acknowledged but
never double-counted.  The server also tracks a lease per connected
variant (renewed by every RPC, including explicit HEARTBEATs); when a
lease expires, :meth:`BallistaServer.join` marks that variant's results
partial and lets the campaign finish with the survivors instead of
hanging forever on a dead client.

Two servers live here:

* :class:`BallistaServer` -- the original thread-per-connection server
  where remote *clients* execute the test cases (the 1999 topology).
* :class:`CampaignService` -- the multi-tenant campaign service: a
  selector-multiplexed control plane where clients merely *submit*
  campaign specs; the service runs the cases itself in leased worker
  processes (the :func:`~repro.core.parallel._variant_worker` entry
  point), journals every job durably, and streams results back through
  cursor-addressed FETCH pages.  Its survival contract: under chaos
  transports, client disconnect/reconnect, and mid-run worker SIGKILL,
  every campaign completes byte-identical to its serial run.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import queue as _queue
import selectors
import socket
import threading
import time

from repro.core.crash_scale import CaseCode
from repro.core.generator import CaseGenerator
from repro.core.mut import MuTRegistry, default_registry
from repro.core.parallel import ParallelCampaign, _variant_worker, shard_bounds
from repro.core.results import ResultSet
from repro.core.results_io import (
    ResultFormatError,
    load_checkpoint,
    merge_checkpoints,
    results_to_dict,
    save_results,
)
from repro.core.types import TypeRegistry, default_types
from repro.obs import events as obs_events
from repro.service import protocol as P
from repro.service.leases import LeaseError, LeaseManager
from repro.service.queue import (
    JOB_DONE,
    JOB_FAILED,
    JobQueue,
    JobRecord,
    JobSpec,
    split_token,
)
from repro.service.rpc import (
    ACCEPT_GARBAGE_ARGS,
    ACCEPT_PROC_UNAVAIL,
    ACCEPT_SUCCESS,
    ACCEPT_SYSTEM_ERR,
    LAST_FRAGMENT,
    MAX_RECORD,
    ProtocolError,
    RpcError,
    SocketTransport,
    Transport,
    decode_call,
    encode_reply,
    serve_connection,
)
from repro.service.xdr import XdrDecoder, XdrError
from repro.sim.personality import Personality


class BallistaServer:
    """Hands out test plans, collects results.

    :param variants: personalities the server knows (clients announce a
        variant key at HELLO time).
    :param cap: per-MuT case cap sent to clients.
    :param lease_s: per-variant lease duration in seconds.  A variant
        whose lease expires (no RPC for this long after it said HELLO)
        is declared dead by :meth:`join` and its results marked partial.
    """

    def __init__(
        self,
        variants: list[Personality],
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
        cap: int = 300,
        lease_s: float = 30.0,
    ) -> None:
        self.registry = registry or default_registry()
        self.types = types or default_types()
        self.generator = CaseGenerator(self.types, cap=cap)
        self.cap = cap
        self.lease_s = lease_s
        self._variants = {p.key: p for p in variants}
        self.results = ResultSet()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._completed: set[str] = set()
        self._expired: set[str] = set()
        #: variant -> monotonic timestamp of its last RPC (the lease).
        self._last_seen: dict[str, float] = {}
        #: variant -> REPORT sequence numbers already applied.
        self._applied_seqs: dict[str, set[int]] = {}
        #: duplicate REPORTs acknowledged without recording.
        self.duplicate_reports = 0

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def handlers(self):
        return {
            P.PROC_HELLO: self._on_hello,
            P.PROC_GET_PLAN: self._on_get_plan,
            P.PROC_REPORT: self._on_report,
            P.PROC_COMPLETE: self._on_complete,
            P.PROC_HEARTBEAT: self._on_heartbeat,
        }

    def _renew_lease(self, variant_key: str) -> None:
        with self._lock:
            self._last_seen[variant_key] = time.monotonic()

    def _on_hello(self, dec: XdrDecoder) -> bytes:
        variant_key = P.decode_hello(dec)
        personality = self._variants[variant_key]
        self._renew_lease(variant_key)
        entries = [
            P.PlanEntry(m.api, m.name, m.group, m.param_types)
            for m in self.registry.for_variant(personality)
        ]
        return P.encode_hello_reply(entries, self.cap)

    def _on_get_plan(self, dec: XdrDecoder) -> bytes:
        api, name = P.decode_get_plan(dec)
        mut = self.registry.get(api, name)
        cases = [case.value_names for case in self.generator.cases(mut)]
        return P.encode_plan_reply(cases)

    def _on_report(self, dec: XdrDecoder) -> bytes:
        report = P.decode_report(dec)
        variant = report["variant"]
        self._renew_lease(variant)
        mut = self.registry.get(report["api"], report["name"])
        with self._lock:
            applied = self._applied_seqs.setdefault(variant, set())
            if report["seq"] in applied:
                # A retransmission of a batch we already recorded: the
                # original ack was lost.  Acknowledge, do not re-count.
                self.duplicate_reports += 1
                return b""
            result = self.results.new_result(
                variant, mut.name, mut.api, mut.group
            )
            error_codes = report["error_codes"] or [0] * len(report["codes"])
            for index, (code, exceptional, error_code) in enumerate(
                zip(report["codes"], report["exceptional"], error_codes)
            ):
                result.record(
                    index,
                    CaseCode(code),
                    bool(exceptional),
                    error_code=error_code,
                )
            result.interference_crash = report["interference"]
            result.capped = report["capped"]
            result.planned_cases = report["planned"]
            applied.add(report["seq"])
        return b""

    def _on_complete(self, dec: XdrDecoder) -> bytes:
        variant_key = P.decode_hello(dec)
        self._renew_lease(variant_key)
        with self._lock:
            self._completed.add(variant_key)
        return b""

    def _on_heartbeat(self, dec: XdrDecoder) -> bytes:
        self._renew_lease(P.decode_hello(dec))
        return b""

    def completed_variants(self) -> set[str]:
        with self._lock:
            return set(self._completed)

    # ------------------------------------------------------------------
    # Local fallback
    # ------------------------------------------------------------------

    def run_local(
        self,
        jobs: int | None = None,
        progress=None,
        supervise: bool = True,
        policy=None,
    ) -> ResultSet:
        """Run the campaign in-process when no remote clients will
        connect -- the local fallback for a degraded fleet.

        Variants fan out across worker processes exactly like
        :class:`~repro.core.parallel.ParallelCampaign` (``jobs`` as
        there), producing the same result set remote clients would have
        reported.  By default the workers run under the self-healing
        :class:`~repro.core.supervisor.SupervisedCampaign` (tunable via
        ``policy``, a :class:`~repro.core.supervisor.SupervisorPolicy`);
        pass ``supervise=False`` for the bare runner.  A server built
        with a custom MuT/type registry falls back to the serial
        :class:`~repro.core.campaign.Campaign`: the registries' call
        implementations are closures and cannot cross the spawn
        boundary.  Completed variants are marked so :meth:`join`
        returns immediately for them.
        """
        from repro.core.campaign import Campaign, CampaignConfig
        from repro.core.mut import default_registry
        from repro.core.parallel import ParallelCampaign
        from repro.core.supervisor import SupervisedCampaign
        from repro.core.types import default_types

        variants = list(self._variants.values())
        config = CampaignConfig(cap=self.cap)
        stock = (
            self.registry is default_registry()
            and self.types is default_types()
        )
        if stock and supervise:
            runner = SupervisedCampaign(
                variants, config=config, jobs=jobs, policy=policy
            )
        elif stock:
            runner = ParallelCampaign(variants, config=config, jobs=jobs)
        else:
            runner = Campaign(
                variants,
                registry=self.registry,
                types=self.types,
                config=config,
            )
        local = runner.run(progress=progress)
        with self._lock:
            self.results.merge(local)
            self._completed |= {p.key for p in variants}
        return self.results

    def expired_variants(self) -> set[str]:
        """Variants whose lease ran out before they completed."""
        with self._lock:
            return set(self._expired)

    def _check_leases(self) -> None:
        """Expire leases of connected-but-silent variants."""
        now = time.monotonic()
        with self._lock:
            for variant, seen in self._last_seen.items():
                if variant in self._completed or variant in self._expired:
                    continue
                if now - seen > self.lease_s:
                    self._expired.add(variant)
                    self.results.mark_partial(variant)

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------

    def attach(self, transport: Transport) -> threading.Thread:
        """Serve one client connection on a background thread."""
        thread = threading.Thread(
            target=serve_connection,
            args=(transport, self.handlers()),
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
        return thread

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Accept TCP clients; returns the bound (host, port)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self._listener = listener

        def accept_loop() -> None:
            while True:
                try:
                    conn, _addr = listener.accept()
                except OSError:
                    return
                self.attach(SocketTransport(conn))

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return listener.getsockname()

    def shutdown(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def join(self, variant_keys: set[str], timeout: float = 60.0) -> None:
        """Block until every requested variant has either reported
        completion or lost its lease.

        A variant that connected but fell silent for longer than
        ``lease_s`` is marked expired -- its partial results stay in
        :attr:`results`, flagged via
        :meth:`~repro.core.results.ResultSet.mark_partial` -- and the
        campaign proceeds with the survivors.  Variants that *never*
        connected have no lease to expire, so those still raise
        :class:`TimeoutError` when ``timeout`` runs out.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self._check_leases()
            settled = self.completed_variants() | self.expired_variants()
            if variant_keys <= settled:
                return
            time.sleep(0.01)
        missing = variant_keys - self.completed_variants() - self.expired_variants()
        raise TimeoutError(f"clients never completed: {sorted(missing)}")


# ======================================================================
# Multi-tenant campaign service
# ======================================================================


class _ServiceConnection:
    """One client socket in the selector loop.

    Inbound: an incremental RFC 5531 record-marking parser -- bytes
    accumulate in ``inbuf`` until whole records fall out; framing damage
    (implausible length prefix, oversize record) raises
    :class:`ProtocolError` so the service can close the connection with
    a typed event instead of a raw struct error.

    Outbound: a bounded write buffer.  When a slow consumer lets the
    buffer climb past ``HIGH_WATER`` the service *pauses reading* from
    that connection (backpressure: no new requests, so no new replies)
    until the buffer drains below ``LOW_WATER``.  Because the v2
    protocol is poll-based, a paused client loses nothing -- its next
    STATUS simply returns a fresher snapshot (progress is coalesced by
    construction).
    """

    HIGH_WATER = 256 * 1024
    LOW_WATER = 128 * 1024

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.fileno = sock.fileno()
        self.inbuf = bytearray()
        self.fragments = bytearray()  # record assembled so far
        self.outbuf = bytearray()
        self.paused = False

    @property
    def mid_record(self) -> bool:
        return bool(self.inbuf or self.fragments)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb bytes; return every now-complete record."""
        self.inbuf += data
        records: list[bytes] = []
        while len(self.inbuf) >= 4:
            header = int.from_bytes(self.inbuf[:4], "big")
            length = header & ~LAST_FRAGMENT
            if length > MAX_RECORD:
                raise ProtocolError(f"implausible fragment length {length}")
            if len(self.fragments) + length > MAX_RECORD:
                raise ProtocolError(
                    f"record exceeds sane maximum {MAX_RECORD}"
                )
            if len(self.inbuf) < 4 + length:
                break  # fragment still in flight
            self.fragments += self.inbuf[4 : 4 + length]
            del self.inbuf[: 4 + length]
            if header & LAST_FRAGMENT:
                records.append(bytes(self.fragments))
                self.fragments.clear()
        return records

    def enqueue(self, record: bytes) -> None:
        self.outbuf += (LAST_FRAGMENT | len(record)).to_bytes(4, "big")
        self.outbuf += record
        if len(self.outbuf) >= self.HIGH_WATER:
            self.paused = True

    def flush(self) -> None:
        """Write as much buffered output as the socket will take."""
        while self.outbuf:
            try:
                sent = self.sock.send(self.outbuf)
            except (BlockingIOError, InterruptedError):
                return
            del self.outbuf[:sent]
        if self.paused and len(self.outbuf) <= self.LOW_WATER:
            self.paused = False

    def interest(self) -> int:
        events = 0
        if not self.paused:
            events |= selectors.EVENT_READ
        if self.outbuf:
            events |= selectors.EVENT_WRITE
        return events


class CampaignService:
    """The multi-tenant campaign service.

    One selector-driven network thread multiplexes every client
    connection (no thread-per-client); one scheduler thread leases job
    shards to worker processes, pumps their event queue, and finalises
    completed jobs.  All durable state -- the job queue, per-shard
    checkpoints, merged results -- lives under ``data_dir`` (see
    :mod:`repro.service.queue`), so a SIGTERMed or crashed service picks
    its campaigns back up on restart.

    :param data_dir: queue/checkpoint/result directory.
    :param max_workers: concurrent worker processes across all tenants.
    :param lease_s: shard lease horizon; a worker silent this long loses
        its shard to a fresh worker (which resumes from the shard
        checkpoint).
    :param max_attempts: grant budget per shard before its job is
        declared failed.
    :param recorder: optional :class:`repro.obs.recorder.Recorder` for
        the service's operational event stream (``job_submitted``,
        ``lease_granted`` .. ``drain_started``) plus forwarded worker
        telemetry.
    """

    def __init__(
        self,
        data_dir,
        max_workers: int = 2,
        lease_s: float = 10.0,
        spawn_grace: float | None = None,
        max_attempts: int = 5,
        recorder=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue = JobQueue(data_dir)
        self.max_workers = max_workers
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.recorder = recorder
        kwargs = {} if spawn_grace is None else {"spawn_grace": spawn_grace}
        self.leases = LeaseManager(
            lease_s=lease_s, recorder=recorder, **kwargs
        )
        self._lock = threading.RLock()
        self._ctx = multiprocessing.get_context("spawn")
        self._events = self._ctx.Queue()
        #: (job_id, token) -> live worker process.  The token is the
        #: bare variant for unsharded jobs, ``variant#k`` for slices.
        self._workers: dict[tuple[str, str], object] = {}
        #: (job_id, token) -> latest progress beacon (coalesced).
        self._progress: dict[tuple[str, str], dict] = {}
        #: (job_id, token) -> (mtime_ns, size, plan-ordered row list).
        self._row_cache: dict[tuple[str, str], tuple[int, int, list]] = {}
        self._plan_cache: dict[tuple[str, tuple[str, ...] | None], list] = {}
        self._selector = selectors.DefaultSelector()
        self._listener: socket.socket | None = None
        self._conns: dict[int, _ServiceConnection] = {}
        self._threads: list[threading.Thread] = []
        self._draining = threading.Event()
        self._net_stop = threading.Event()
        self._stopped = threading.Event()

    def _emit(self, event) -> None:
        if self.recorder is not None:
            self.recorder.emit(event)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind, start the network and scheduler threads, and return the
        bound ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        listener.setblocking(False)
        self._listener = listener
        self._selector.register(listener, selectors.EVENT_READ, data=None)
        # Spawned as two explicit constructions (not a loop over bound
        # methods) so the concurrency-contract lint rule can resolve
        # the thread roots and audit every field they share.
        network = threading.Thread(target=self._network_loop, daemon=True)
        scheduler = threading.Thread(target=self._scheduler_loop, daemon=True)
        for thread in (network, scheduler):
            thread.start()
            self._threads.append(thread)
        return listener.getsockname()

    def drain(self) -> None:
        """Graceful shutdown: stop granting leases, checkpoint in-flight
        shards (workers persist them at every MuT boundary; terminating
        them loses at most the tail since the last boundary, which the
        next service re-runs deterministically), persist the queue, and
        close every connection.  Idempotent and signal-handler safe: it
        only sets a flag -- the scheduler thread does the teardown."""
        self._draining.set()

    def close(self, timeout: float = 30.0) -> None:
        """Drain and wait for both service threads to finish."""
        self.drain()
        self._stopped.wait(timeout)
        for thread in self._threads:
            thread.join(timeout=timeout)

    def serve_forever(self) -> None:
        """Block until a :meth:`drain` (e.g. from a signal handler)
        completes."""
        self._stopped.wait()

    def worker_pids(self) -> dict[str, int]:
        """Live worker PIDs keyed ``"job/token"`` -- the token is the
        bare variant for unsharded jobs, ``variant#k`` for intra-variant
        slices (fault drills aim their SIGKILLs with this)."""
        with self._lock:
            return {
                f"{job_id}/{token}": worker.pid
                for (job_id, token), worker in self._workers.items()
                if worker.pid is not None
            }

    # ------------------------------------------------------------------
    # Network thread: the selector loop
    # ------------------------------------------------------------------

    def _network_loop(self) -> None:
        try:
            while not self._net_stop.is_set():
                for key, mask in self._selector.select(timeout=0.05):
                    if key.data is None:
                        self._accept()
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_READ:
                            self._readable(conn)
                        if (
                            mask & selectors.EVENT_WRITE
                            and conn.fileno in self._conns
                        ):
                            self._writable(conn)
        finally:
            for conn in list(self._conns.values()):
                self._drop(conn, "drain")
            if self._listener is not None:
                try:
                    self._selector.unregister(self._listener)
                except (KeyError, ValueError):  # pragma: no cover
                    pass
                self._listener.close()
            self._selector.close()
            self._stopped.set()

    def _accept(self) -> None:
        try:
            sock, _addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _ServiceConnection(sock)
        self._conns[conn.fileno] = conn
        self._selector.register(sock, selectors.EVENT_READ, data=conn)

    def _update_interest(self, conn: _ServiceConnection) -> None:
        if conn.fileno not in self._conns:
            return
        self._selector.modify(conn.sock, conn.interest(), data=conn)

    def _drop(self, conn: _ServiceConnection, reason: str) -> None:
        if self._conns.pop(conn.fileno, None) is None:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._emit(obs_events.ClientDisconnected(reason))

    def _readable(self, conn: _ServiceConnection) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn, "error")
            return
        if not data:
            if conn.mid_record:
                self._emit(
                    obs_events.ProtocolViolation(
                        "server", "connection closed mid-record"
                    )
                )
                self._drop(conn, "protocol_error")
            else:
                self._drop(conn, "eof")
            return
        try:
            records = conn.feed(data)
        except ProtocolError as exc:
            self._emit(obs_events.ProtocolViolation("server", str(exc)))
            self._drop(conn, "protocol_error")
            return
        for record in records:
            self._dispatch(conn, record)
        try:
            conn.flush()
        except OSError:
            self._drop(conn, "error")
            return
        self._update_interest(conn)

    def _writable(self, conn: _ServiceConnection) -> None:
        try:
            conn.flush()
        except OSError:
            self._drop(conn, "error")
            return
        self._update_interest(conn)

    def _dispatch(self, conn: _ServiceConnection, record: bytes) -> None:
        try:
            xid, procedure, dec = decode_call(record)
        except (RpcError, XdrError):
            # An unparseable call (a corrupted record that still framed
            # cleanly): nothing to reply to -- the client retransmits.
            return
        handler = {
            P.PROC_SUBMIT: self._on_submit,
            P.PROC_JOB_STATUS: self._on_job_status,
            P.PROC_FETCH: self._on_fetch,
            P.PROC_QUEUE_STATS: self._on_queue_stats,
        }.get(procedure)
        if handler is None:
            conn.enqueue(encode_reply(xid, ACCEPT_PROC_UNAVAIL))
            return
        try:
            document = P.decode_json(dec)
            reply = handler(document)
        except XdrError:
            conn.enqueue(encode_reply(xid, ACCEPT_GARBAGE_ARGS))
        except Exception:  # noqa: BLE001 - isolate the event loop
            conn.enqueue(encode_reply(xid, ACCEPT_SYSTEM_ERR))
        else:
            conn.enqueue(
                encode_reply(xid, ACCEPT_SUCCESS, P.encode_json(reply))
            )

    # ------------------------------------------------------------------
    # v2 procedure handlers (network thread)
    # ------------------------------------------------------------------

    @staticmethod
    def _error(message: str) -> dict:
        return {"ok": False, "error": message}

    def _on_submit(self, document: dict) -> dict:
        if self._draining.is_set():
            return self._error("service is draining; resubmit after restart")
        try:
            spec = JobSpec.from_dict(document)
        except ValueError as exc:
            return self._error(str(exc))
        if not spec.variants:
            return self._error("job must name at least one variant")
        from repro import ALL_VARIANTS

        known = {p.key for p in ALL_VARIANTS}
        unknown = [v for v in spec.variants if v not in known]
        if unknown:
            return self._error(f"unknown variants: {unknown}")
        if len(set(spec.variants)) != len(spec.variants):
            return self._error("duplicate variants in job spec")
        if spec.cap < 1:
            return self._error(f"cap must be >= 1, got {spec.cap}")
        if spec.shards < 1:
            return self._error(f"shards must be >= 1, got {spec.shards}")
        record, created = self.queue.submit(spec)
        if created:
            self._emit(
                obs_events.JobSubmitted(
                    record.job_id, spec.tenant, spec.variants, spec.cap
                )
            )
        return {"ok": True, "job_id": record.job_id, "created": created}

    def _on_job_status(self, document: dict) -> dict:
        record = self.queue.get(str(document.get("job_id", "")))
        if record is None:
            return self._error(f"unknown job {document.get('job_id')!r}")
        shards = {}
        with self._lock:
            for variant in record.spec.variants:
                tokens = record.spec.shard_tokens(variant)
                done = sum(1 for t in tokens if t in record.shards_done)
                leased = False
                attempt = 0
                progress = None
                for index, token in enumerate(tokens):
                    holder = self.leases.holder(
                        record.job_id, variant, index
                    )
                    leased = leased or holder is not None
                    attempt += self.leases.attempts(
                        record.job_id, variant, index
                    )
                    # The *latest* beacon only: a slow or reconnecting
                    # client gets a coalesced snapshot, never a backlog.
                    # Slices run chained, so at most one is in flight.
                    beacon = self._progress.get((record.job_id, token))
                    if beacon is not None:
                        progress = beacon
                status = {
                    "done": done == len(tokens),
                    "leased": leased,
                    "attempt": attempt,
                    "progress": progress,
                }
                if record.spec.shards > 1:
                    status["slices"] = {"done": done, "total": len(tokens)}
                shards[variant] = status
        return {
            "ok": True,
            "job_id": record.job_id,
            "state": record.state,
            "error": record.error,
            "shards": shards,
        }

    def _on_fetch(self, document: dict) -> dict:
        job_id = str(document.get("job_id", ""))
        variant = str(document.get("variant", ""))
        record = self.queue.get(job_id)
        if record is None:
            return self._error(f"unknown job {job_id!r}")
        if variant not in record.spec.variants:
            return self._error(f"job {job_id} has no shard {variant!r}")
        try:
            cursor = int(document.get("cursor", 0))
            max_rows = int(document.get("max_rows", P.MAX_FETCH_ROWS))
        except (TypeError, ValueError):
            return self._error("cursor and max_rows must be integers")
        if cursor < 0:
            return self._error(f"cursor must be >= 0, got {cursor}")
        max_rows = max(1, min(max_rows, P.MAX_FETCH_ROWS))
        rows = self._shard_rows(record, variant)
        page = rows[cursor : cursor + max_rows]
        next_cursor = cursor + len(page)
        return {
            "ok": True,
            "rows": page,
            "cursor": next_cursor,
            "done": (
                all(
                    token in record.shards_done
                    for token in record.spec.shard_tokens(variant)
                )
                and next_cursor >= len(rows)
            ),
        }

    def _on_queue_stats(self, document: dict) -> dict:
        states: dict[str, int] = {}
        for record in self.queue.jobs():
            states[record.state] = states.get(record.state, 0) + 1
        with self._lock:
            lease_stats = {
                "active": len(self.leases),
                "granted": self.leases.stats.granted,
                "expired": self.leases.stats.expired,
                "reassigned": self.leases.stats.reassignments,
                "double_grants_refused": (
                    self.leases.stats.double_grants_refused
                ),
            }
            workers = len(self._workers)
        return {
            "ok": True,
            "jobs": states,
            "leases": lease_stats,
            "workers": workers,
            "draining": self._draining.is_set(),
        }

    # ------------------------------------------------------------------
    # Plan-ordered row pages
    # ------------------------------------------------------------------

    def _plan_keys(self, variant: str, muts: tuple[str, ...] | None) -> list:
        """``"api:mut"`` keys in deterministic plan order for one shard.

        Checkpoint rows serialise *sorted by key*, not in execution
        order; re-sorting them by plan position recovers an append-only
        sequence (a checkpoint always holds a prefix of the plan, since
        shards checkpoint only at MuT boundaries) -- which is what makes
        FETCH cursors stable across retransmission, reconnection, and
        even a shard's reassignment to a new worker."""
        cache_key = (variant, muts)
        # Reached from both service threads: the network thread pages
        # FETCH rows while the scheduler builds worker specs.  The
        # cache dict must not be mutated unlocked from either side
        # (RLock, so the already-locked scheduler path just re-enters).
        with self._lock:
            cached = self._plan_cache.get(cache_key)
            if cached is not None:
                return cached
            from repro import ALL_VARIANTS

            personality = next(p for p in ALL_VARIANTS if p.key == variant)
            plan = default_registry().for_variant(personality)
            if muts is not None:
                wanted = set(muts)
                plan = [m for m in plan if m.name in wanted]
            keys = [f"{m.api}:{m.name}" for m in plan]
            self._plan_cache[cache_key] = keys
            return keys

    def _shard_rows(self, record: JobRecord, variant: str) -> list:
        """The variant's result rows in plan order, concatenated across
        its slice checkpoints.  Slices run chained (slice k+1 is only
        leased after slice k is done) and cover contiguous plan spans,
        so concatenating per-slice rows in slice order yields the full
        plan order and grows append-only -- FETCH cursors stay stable
        across polls, reconnection, and worker reassignment."""
        rows: list = []
        for token in record.spec.shard_tokens(variant):
            rows.extend(self._token_rows(record, variant, token))
        return rows

    def _token_rows(
        self, record: JobRecord, variant: str, token: str
    ) -> list:
        """One slice's rows in plan order, from its checkpoint file on
        disk (cached by mtime+size)."""
        shard = (record.job_id, token)
        path = self.queue.shard_file(record.job_id, token)
        try:
            stat = path.stat()
        except OSError:
            return []  # no checkpoint yet
        cached = self._row_cache.get(shard)
        if cached is not None and cached[:2] == (stat.st_mtime_ns, stat.st_size):
            return cached[2]
        try:
            checkpoint = load_checkpoint(path)
        except (OSError, ResultFormatError):
            # Mid-replace race or a torn shard: serve the previous page
            # set; the next poll sees the settled file.
            return cached[2] if cached is not None else []
        by_key = {
            f"{row['api']}:{row['mut']}": row
            for row in results_to_dict(checkpoint.results)["results"]
            if row["variant"] == variant
        }
        keys = self._plan_keys(variant, record.spec.muts)
        rows = [by_key[key] for key in keys if key in by_key]
        self._row_cache[shard] = (stat.st_mtime_ns, stat.st_size, rows)
        return rows

    # ------------------------------------------------------------------
    # Scheduler thread: leases, workers, finalisation
    # ------------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        try:
            while not self._draining.is_set():
                try:
                    message = self._events.get(timeout=0.05)
                except _queue.Empty:
                    message = None
                with self._lock:
                    while message is not None:
                        self._handle_message(message)
                        try:
                            message = self._events.get_nowait()
                        except _queue.Empty:
                            message = None
                    self._reap_silent_deaths()
                    self._expire_leases()
                    self._grant_leases()
        finally:
            self._teardown()

    def _teardown(self) -> None:
        with self._lock:
            pending = sum(
                1
                for record in self.queue.jobs()
                if record.state not in (JOB_DONE, JOB_FAILED)
            )
            self._emit(obs_events.DrainStarted(pending))
            # Reuse the parallel runner's escalating stop (terminate,
            # drain the queue so blocked feeders can flush, SIGKILL
            # stragglers); shard checkpoints on disk keep the progress.
            by_tag = {
                f"{job_id}/{token}": worker
                for (job_id, token), worker in self._workers.items()
            }
            ParallelCampaign._stop_workers(by_tag, self._events)
            for job_id, token in list(self._workers):
                variant, index = split_token(token)
                self.leases.release(job_id, variant, index)
            self._workers.clear()
            self.queue.close()
        self._net_stop.set()

    def _handle_message(self, message: tuple) -> None:
        kind, tag = message[0], message[1]
        job_id, _, token = tag.partition("/")
        variant, index = split_token(token)
        shard = (job_id, token)
        if kind == "heartbeat":
            self.leases.renew(job_id, variant, index)
        elif kind == "progress":
            self._progress[shard] = {
                "mut": message[2],
                "position": message[3],
                "total": message[4],
            }
        elif kind == "obs":
            if self.recorder is not None:
                self.recorder.record(message[2])
        elif kind == "done":
            self.leases.release(job_id, variant, index)
            self._retire_worker(shard)
            self._progress.pop(shard, None)
            if self.queue.mark_shard_done(job_id, token):
                self._finalize_job(job_id)
        elif kind == "error":
            self.leases.release(job_id, variant, index)
            self._retire_worker(shard)
            self._emit(
                obs_events.WorkerDied(token, "crashed", message[2])
            )
            if (
                self.leases.attempts(job_id, variant, index)
                >= self.max_attempts
            ):
                self._fail_job(
                    job_id,
                    f"shard {token} failed {self.max_attempts} times: "
                    f"{message[2]}",
                )

    def _retire_worker(self, shard: tuple[str, str]) -> None:
        worker = self._workers.pop(shard, None)
        if worker is not None:
            worker.join(timeout=10)

    def _reap_silent_deaths(self) -> None:
        """A SIGKILLed worker posts nothing; its process sentinel is the
        fast path to reassignment (heartbeat-loss expiry is the slow
        path, for workers that are alive but wedged)."""
        if not self._workers:
            return
        sentinels = {w.sentinel: s for s, w in self._workers.items()}
        try:
            ready = multiprocessing.connection.wait(list(sentinels), timeout=0)
        except OSError:  # pragma: no cover - sentinel closed under us
            ready = []
        for sentinel in ready:
            shard = sentinels[sentinel]
            worker = self._workers.get(shard)
            if worker is None:
                continue
            worker.join(timeout=1.0)
            if worker.is_alive():
                continue  # pragma: no cover - exit still settling
            # A worker that reported "done"/"error" was already retired;
            # reaching here means it died without a word.  Release the
            # lease so the grant pass reassigns the shard.
            del self._workers[shard]
            if worker.exitcode != 0:
                self._emit(
                    obs_events.WorkerDied(
                        shard[1],
                        "killed",
                        "exited without reporting a result",
                        exitcode=worker.exitcode,
                    )
                )
            job_id, token = shard
            variant, index = split_token(token)
            self.leases.release(job_id, variant, index)

    def _token_of(self, lease) -> str:
        """The worker-dict token a lease maps to: bare variant for
        unsharded jobs, ``variant#k`` when the job slices variants."""
        record = self.queue.get(lease.job_id)
        if record is not None and record.spec.shards > 1:
            return f"{lease.variant}#{lease.shard_index}"
        return lease.variant

    def _expire_leases(self) -> None:
        for lease in self.leases.expire_stale():
            worker = self._workers.pop(
                (lease.job_id, self._token_of(lease)), None
            )
            if worker is not None and worker.is_alive():
                worker.kill()  # wedged, not dead: make it dead
                worker.join(timeout=5)

    def _grant_leases(self) -> None:
        if self._draining.is_set():
            return
        for job_id, token in self.queue.pending_shards():
            if len(self._workers) >= self.max_workers:
                return
            variant, index = split_token(token)
            shard = (job_id, token)
            if shard in self._workers:
                continue
            if self.leases.holder(job_id, variant, index) is not None:
                continue  # pragma: no cover - lease without worker
            if (
                self.leases.attempts(job_id, variant, index)
                >= self.max_attempts
            ):
                # Silent deaths do not travel the "error" message path,
                # so an endlessly-killed shard must be failed here or
                # its job would hang unleasable forever.
                self._fail_job(
                    job_id,
                    f"shard {token} exhausted its "
                    f"{self.max_attempts} lease grants",
                )
                continue
            record = self.queue.get(job_id)
            if record is None or record.state in (JOB_DONE, JOB_FAILED):
                continue
            try:
                spec = self._worker_spec(record, token)
            except (OSError, ResultFormatError) as exc:
                # The predecessor slice's checkpoint must supply this
                # slice's base wear; without it the slice cannot run
                # byte-identically, so the job fails loudly instead of
                # guessing.
                self._fail_job(
                    job_id,
                    f"shard {token} has no usable base wear: {exc}",
                )
                continue
            try:
                lease = self.leases.grant(job_id, variant, index)
            except LeaseError:  # pragma: no cover - guarded above
                continue
            worker = self._ctx.Process(
                target=_variant_worker, args=(spec, self._events), daemon=True
            )
            worker.start()
            self._workers[shard] = worker
            self.queue.mark_running(job_id)
            self._emit(
                obs_events.WorkerSpawned(
                    token, worker.pid or 0, lease.attempt
                )
            )

    def _worker_spec(self, record: JobRecord, token: str) -> dict:
        variant, index = split_token(token)
        spec = {
            "variant": variant,
            "tag": f"{record.job_id}/{token}",
            "muts": (
                None if record.spec.muts is None else list(record.spec.muts)
            ),
            "config": {"cap": record.spec.cap},
            "shard_path": str(self.queue.shard_file(record.job_id, token)),
            "checkpoint_every": record.spec.checkpoint_every,
            "resume": None,  # the shard file on disk wins anyway
            "quarantine": {},
            # Beacons must outpace the lease horizon comfortably.
            "heartbeat_interval": max(0.01, min(1.0, self.lease_s / 5)),
            "events": self.recorder is not None,
        }
        if record.spec.shards > 1:
            # Chained slice execution: pending_shards() only yields a
            # slice once its predecessor is done, so the predecessor's
            # checkpoint on disk is complete and its end wear is the
            # byte-exact serial wear at this slice's first case.
            keys = self._plan_keys(variant, record.spec.muts)
            bounds = shard_bounds(len(keys), record.spec.shards)
            if index < len(bounds):
                start, stop = bounds[index]
            else:
                # More slices than plan positions: the surplus slices
                # are empty (their workers finish instantly) so the
                # token accounting still closes out.
                start = stop = len(keys)
            base_wear = None
            if index > 0 and start > 0:
                prev = record.spec.shard_tokens(variant)[index - 1]
                prev_path = self.queue.shard_file(record.job_id, prev)
                base_wear = load_checkpoint(prev_path).machine_wear.get(
                    variant
                )
            spec["shard"] = {
                "variant": variant,
                "index": index,
                "start": start,
                "stop": stop,
                "resumed": False,
                "base_wear": base_wear,
            }
        return spec

    def _finalize_job(self, job_id: str) -> None:
        record = self.queue.get(job_id)
        if record is None or record.state in (JOB_DONE, JOB_FAILED):
            return
        # Variant order, then slice order within each variant: the
        # chain-aware merge validates each variant's slice seams and
        # reassembles the byte-identical serial document.
        shards = [
            self.queue.shard_file(job_id, token)
            for variant in record.spec.variants
            for token in record.spec.shard_tokens(variant)
        ]
        try:
            merged = merge_checkpoints(
                shards,
                cap=record.spec.cap,
                variants=list(record.spec.variants),
            )
            save_results(merged.results, self.queue.results_file(job_id))
        except (OSError, ResultFormatError, ValueError) as exc:
            self._fail_job(job_id, f"finalise failed: {exc}")
            return
        self.queue.mark_job_done(job_id)
        self._emit(
            obs_events.JobFinished(job_id, merged.results.total_cases())
        )

    def _fail_job(self, job_id: str, why: str) -> None:
        self.queue.mark_job_failed(job_id, why)
        self._emit(obs_events.JobFailed(job_id, why))
