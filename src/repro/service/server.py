"""The central Ballista test server.

The server owns the MuT registry and the deterministic case generator,
hands out test plans to clients, and accumulates their reports into a
:class:`~repro.core.results.ResultSet` that the analysis layer consumes
exactly as if a local :class:`~repro.core.campaign.Campaign` had
produced it.

Dependability: every procedure is idempotent so that clients may
retransmit freely over lossy links -- HELLO and GET_PLAN are pure reads
of deterministic state, COMPLETE is a set insert, and REPORT carries a
per-variant sequence number so a duplicate batch is acknowledged but
never double-counted.  The server also tracks a lease per connected
variant (renewed by every RPC, including explicit HEARTBEATs); when a
lease expires, :meth:`BallistaServer.join` marks that variant's results
partial and lets the campaign finish with the survivors instead of
hanging forever on a dead client.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.core.crash_scale import CaseCode
from repro.core.generator import CaseGenerator
from repro.core.mut import MuTRegistry, default_registry
from repro.core.results import ResultSet
from repro.core.types import TypeRegistry, default_types
from repro.service import protocol as P
from repro.service.rpc import SocketTransport, Transport, serve_connection
from repro.service.xdr import XdrDecoder
from repro.sim.personality import Personality


class BallistaServer:
    """Hands out test plans, collects results.

    :param variants: personalities the server knows (clients announce a
        variant key at HELLO time).
    :param cap: per-MuT case cap sent to clients.
    :param lease_s: per-variant lease duration in seconds.  A variant
        whose lease expires (no RPC for this long after it said HELLO)
        is declared dead by :meth:`join` and its results marked partial.
    """

    def __init__(
        self,
        variants: list[Personality],
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
        cap: int = 300,
        lease_s: float = 30.0,
    ) -> None:
        self.registry = registry or default_registry()
        self.types = types or default_types()
        self.generator = CaseGenerator(self.types, cap=cap)
        self.cap = cap
        self.lease_s = lease_s
        self._variants = {p.key: p for p in variants}
        self.results = ResultSet()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._listener: socket.socket | None = None
        self._completed: set[str] = set()
        self._expired: set[str] = set()
        #: variant -> monotonic timestamp of its last RPC (the lease).
        self._last_seen: dict[str, float] = {}
        #: variant -> REPORT sequence numbers already applied.
        self._applied_seqs: dict[str, set[int]] = {}
        #: duplicate REPORTs acknowledged without recording.
        self.duplicate_reports = 0

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def handlers(self):
        return {
            P.PROC_HELLO: self._on_hello,
            P.PROC_GET_PLAN: self._on_get_plan,
            P.PROC_REPORT: self._on_report,
            P.PROC_COMPLETE: self._on_complete,
            P.PROC_HEARTBEAT: self._on_heartbeat,
        }

    def _renew_lease(self, variant_key: str) -> None:
        with self._lock:
            self._last_seen[variant_key] = time.monotonic()

    def _on_hello(self, dec: XdrDecoder) -> bytes:
        variant_key = P.decode_hello(dec)
        personality = self._variants[variant_key]
        self._renew_lease(variant_key)
        entries = [
            P.PlanEntry(m.api, m.name, m.group, m.param_types)
            for m in self.registry.for_variant(personality)
        ]
        return P.encode_hello_reply(entries, self.cap)

    def _on_get_plan(self, dec: XdrDecoder) -> bytes:
        api, name = P.decode_get_plan(dec)
        mut = self.registry.get(api, name)
        cases = [case.value_names for case in self.generator.cases(mut)]
        return P.encode_plan_reply(cases)

    def _on_report(self, dec: XdrDecoder) -> bytes:
        report = P.decode_report(dec)
        variant = report["variant"]
        self._renew_lease(variant)
        mut = self.registry.get(report["api"], report["name"])
        with self._lock:
            applied = self._applied_seqs.setdefault(variant, set())
            if report["seq"] in applied:
                # A retransmission of a batch we already recorded: the
                # original ack was lost.  Acknowledge, do not re-count.
                self.duplicate_reports += 1
                return b""
            result = self.results.new_result(
                variant, mut.name, mut.api, mut.group
            )
            error_codes = report["error_codes"] or [0] * len(report["codes"])
            for index, (code, exceptional, error_code) in enumerate(
                zip(report["codes"], report["exceptional"], error_codes)
            ):
                result.record(
                    index,
                    CaseCode(code),
                    bool(exceptional),
                    error_code=error_code,
                )
            result.interference_crash = report["interference"]
            result.capped = report["capped"]
            result.planned_cases = report["planned"]
            applied.add(report["seq"])
        return b""

    def _on_complete(self, dec: XdrDecoder) -> bytes:
        variant_key = P.decode_hello(dec)
        self._renew_lease(variant_key)
        with self._lock:
            self._completed.add(variant_key)
        return b""

    def _on_heartbeat(self, dec: XdrDecoder) -> bytes:
        self._renew_lease(P.decode_hello(dec))
        return b""

    def completed_variants(self) -> set[str]:
        with self._lock:
            return set(self._completed)

    # ------------------------------------------------------------------
    # Local fallback
    # ------------------------------------------------------------------

    def run_local(
        self,
        jobs: int | None = None,
        progress=None,
        supervise: bool = True,
        policy=None,
    ) -> ResultSet:
        """Run the campaign in-process when no remote clients will
        connect -- the local fallback for a degraded fleet.

        Variants fan out across worker processes exactly like
        :class:`~repro.core.parallel.ParallelCampaign` (``jobs`` as
        there), producing the same result set remote clients would have
        reported.  By default the workers run under the self-healing
        :class:`~repro.core.supervisor.SupervisedCampaign` (tunable via
        ``policy``, a :class:`~repro.core.supervisor.SupervisorPolicy`);
        pass ``supervise=False`` for the bare runner.  A server built
        with a custom MuT/type registry falls back to the serial
        :class:`~repro.core.campaign.Campaign`: the registries' call
        implementations are closures and cannot cross the spawn
        boundary.  Completed variants are marked so :meth:`join`
        returns immediately for them.
        """
        from repro.core.campaign import Campaign, CampaignConfig
        from repro.core.mut import default_registry
        from repro.core.parallel import ParallelCampaign
        from repro.core.supervisor import SupervisedCampaign
        from repro.core.types import default_types

        variants = list(self._variants.values())
        config = CampaignConfig(cap=self.cap)
        stock = (
            self.registry is default_registry()
            and self.types is default_types()
        )
        if stock and supervise:
            runner = SupervisedCampaign(
                variants, config=config, jobs=jobs, policy=policy
            )
        elif stock:
            runner = ParallelCampaign(variants, config=config, jobs=jobs)
        else:
            runner = Campaign(
                variants,
                registry=self.registry,
                types=self.types,
                config=config,
            )
        local = runner.run(progress=progress)
        with self._lock:
            self.results.merge(local)
            self._completed |= {p.key for p in variants}
        return self.results

    def expired_variants(self) -> set[str]:
        """Variants whose lease ran out before they completed."""
        with self._lock:
            return set(self._expired)

    def _check_leases(self) -> None:
        """Expire leases of connected-but-silent variants."""
        now = time.monotonic()
        with self._lock:
            for variant, seen in self._last_seen.items():
                if variant in self._completed or variant in self._expired:
                    continue
                if now - seen > self.lease_s:
                    self._expired.add(variant)
                    self.results.mark_partial(variant)

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------

    def attach(self, transport: Transport) -> threading.Thread:
        """Serve one client connection on a background thread."""
        thread = threading.Thread(
            target=serve_connection,
            args=(transport, self.handlers()),
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
        return thread

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Accept TCP clients; returns the bound (host, port)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self._listener = listener

        def accept_loop() -> None:
            while True:
                try:
                    conn, _addr = listener.accept()
                except OSError:
                    return
                self.attach(SocketTransport(conn))

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return listener.getsockname()

    def shutdown(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def join(self, variant_keys: set[str], timeout: float = 60.0) -> None:
        """Block until every requested variant has either reported
        completion or lost its lease.

        A variant that connected but fell silent for longer than
        ``lease_s`` is marked expired -- its partial results stay in
        :attr:`results`, flagged via
        :meth:`~repro.core.results.ResultSet.mark_partial` -- and the
        campaign proceeds with the survivors.  Variants that *never*
        connected have no lease to expire, so those still raise
        :class:`TimeoutError` when ``timeout`` runs out.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            self._check_leases()
            settled = self.completed_variants() | self.expired_variants()
            if variant_keys <= settled:
                return
            time.sleep(0.01)
        missing = variant_keys - self.completed_variants() - self.expired_variants()
        raise TimeoutError(f"clients never completed: {sorted(missing)}")
