"""The "C memory management" group: malloc family and mem* operations.

Heap blocks carry an 8-byte header (magic + size) directly before the
user pointer, so ``free``/``realloc`` genuinely *read memory* to decide
whether a pointer is a live block:

* glibc flavour: trusts the header; an invalid-but-readable pointer
  trips its consistency check and calls ``abort()`` (SIGABRT -> Abort
  failure), an unmapped pointer faults (SIGSEGV).  This is why the paper
  measured Linux *higher* in this group.
* MSVCRT/CE flavours: validate the header and report the error
  (``EINVAL``) instead.
"""

from __future__ import annotations

from repro.libc import errno_codes as E
from repro.sim.errors import ResourceExhausted, SoftwareAbort
from repro.sim.memory import Protection

HEAP_MAGIC = 0xBA11_A57A
#: Largest single allocation the simulated heap will grant.
MAX_ALLOC = 0x40_0000

_U32 = 0xFFFF_FFFF


class MemoryMixin:
    """malloc/free/realloc/calloc and the mem* block operations."""

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int:
        size &= _U32
        if size > MAX_ALLOC:
            self._set_errno(E.ENOMEM)
            return 0
        try:
            region = self.mem.map(
                max(size, 1) + 8, Protection.RW, tag="heap-block"
            )
        except ResourceExhausted:
            # Exhausted machine: malloc reports ENOMEM and returns NULL,
            # the graceful (failure-atomic) path.
            self._set_errno(E.ENOMEM)
            return 0
        self.mem.write_u32(region.start, HEAP_MAGIC)
        self.mem.write_u32(region.start + 4, size)
        user_ptr = region.start + 8
        self._heap[user_ptr] = region
        return user_ptr

    def calloc(self, count: int, size: int) -> int:
        count &= _U32
        size &= _U32
        total = count * size
        if total > MAX_ALLOC:
            self._set_errno(E.ENOMEM)
            return 0
        return self.malloc(total)

    def free(self, ptr: int) -> int:
        ptr &= _U32
        if ptr == 0:
            return 0  # free(NULL) is a no-op by specification
        region = self._heap.get(ptr)
        if region is not None:
            self.mem.unmap(region)
            del self._heap[ptr]
            return 0
        # Not one of ours: the CRT inspects the header anyway.
        magic = self.mem.read_u32(ptr - 8)  # faults on unmapped pointers
        if self.traits.heap_headers_validated:
            self._set_errno(E.EINVAL)
            return 0
        if self.traits.heap_abort_on_corruption:
            raise SoftwareAbort("free(): invalid pointer")
        return 0

    def realloc(self, ptr: int, size: int) -> int:
        ptr &= _U32
        size &= _U32
        if ptr == 0:
            return self.malloc(size)
        if size == 0:
            self.free(ptr)
            return 0
        region = self._heap.get(ptr)
        if region is None:
            magic = self.mem.read_u32(ptr - 8)
            if self.traits.heap_headers_validated:
                self._set_errno(E.EINVAL)
                return 0
            if self.traits.heap_abort_on_corruption:
                raise SoftwareAbort("realloc(): invalid pointer")
            self._set_errno(E.ENOMEM)
            return 0
        new_ptr = self.malloc(size)
        if new_ptr == 0:
            return 0
        old_size = self.mem.read_u32(region.start + 4)
        data = self.mem.read(ptr, min(old_size, size))
        self.mem.write(new_ptr, data)
        self.mem.unmap(region)
        del self._heap[ptr]
        return new_ptr

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------

    def memcpy(self, dest: int, src: int, n: int) -> int:
        n &= _U32
        data = self._read_span("memcpy", src, n)
        self._write_span("memcpy", dest, data)
        return dest

    def memmove(self, dest: int, src: int, n: int) -> int:
        n &= _U32
        data = self._read_span("memmove", src, n)
        self._write_span("memmove", dest, data)
        return dest

    def memset(self, dest: int, c: int, n: int) -> int:
        n &= _U32
        fill = bytes([c & 0xFF])
        written = 0
        while written < n:
            step = min(4096, n - written)
            if not self._user_write("memset", dest + written, fill * step):
                break
            written += step
        return dest

    def memcmp(self, a: int, b: int, n: int) -> int:
        n &= _U32
        left = self._read_span("memcmp", a, n)
        right = self._read_span("memcmp", b, n)
        return (left > right) - (left < right)

    def memchr(self, s: int, c: int, n: int) -> int:
        n &= _U32
        target = bytes([c & 0xFF])
        scanned = 0
        while scanned < n:
            step = min(4096, n - scanned)
            chunk = self._user_read("memchr", s + scanned, step)
            if chunk is None:
                break
            index = chunk.find(target)
            if index >= 0:
                return s + scanned + index
            scanned += step
        return 0
