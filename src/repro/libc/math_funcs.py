"""The "C math" group.

Flavour mechanics: 1999-era MSVCRT ran with the x87 invalid-operation
exception unmasked for NaN operands, raising
``EXCEPTION_FLT_INVALID_OPERATION`` (an Abort in Ballista terms), while
glibc masks FP exceptions and reports domain/range errors through
``errno`` -- which is why the paper measured near-zero Linux Abort rates
in this group but non-trivial Windows ones.
"""

from __future__ import annotations

import math

from repro.libc import errno_codes as E
from repro.sim.errors import ArithmeticFault

_HUGE_VAL = 1.79769313486231571e308


class MathMixin:
    """math.h implementations (22 functions)."""

    def _math_enter(self, func: str, *operands: float) -> None:
        """Flavour-dependent NaN handling on function entry."""
        if self.traits.math_traps_nan and any(
            isinstance(x, float) and math.isnan(x) for x in operands
        ):
            raise ArithmeticFault(
                func, win32_exception="EXCEPTION_FLT_INVALID_OPERATION"
            )

    def _domain_error(self) -> float:
        self._set_errno(E.EDOM)
        return math.nan

    def _range_error(self, sign: float = 1.0) -> float:
        self._set_errno(E.ERANGE)
        return math.copysign(_HUGE_VAL, sign)

    def _unary(self, func: str, x: float, compute) -> float:
        x = float(x)
        self._math_enter(func, x)
        if math.isnan(x):
            return math.nan
        try:
            return compute(x)
        except ValueError:
            return self._domain_error()
        except OverflowError:
            return self._range_error(x)

    # -- trigonometric ----------------------------------------------------

    def sin(self, x: float) -> float:
        return self._unary("sin", x, lambda v: math.sin(v) if math.isfinite(v) else self._domain_error())

    def cos(self, x: float) -> float:
        return self._unary("cos", x, lambda v: math.cos(v) if math.isfinite(v) else self._domain_error())

    def tan(self, x: float) -> float:
        return self._unary("tan", x, lambda v: math.tan(v) if math.isfinite(v) else self._domain_error())

    def asin(self, x: float) -> float:
        return self._unary("asin", x, math.asin)

    def acos(self, x: float) -> float:
        return self._unary("acos", x, math.acos)

    def atan(self, x: float) -> float:
        return self._unary("atan", x, math.atan)

    def atan2(self, y: float, x: float) -> float:
        y, x = float(y), float(x)
        self._math_enter("atan2", y, x)
        if math.isnan(y) or math.isnan(x):
            return math.nan
        return math.atan2(y, x)

    # -- hyperbolic ---------------------------------------------------------

    def sinh(self, x: float) -> float:
        return self._unary("sinh", x, math.sinh)

    def cosh(self, x: float) -> float:
        return self._unary("cosh", x, math.cosh)

    def tanh(self, x: float) -> float:
        return self._unary("tanh", x, math.tanh)

    # -- exponential / logarithmic -------------------------------------------

    def exp(self, x: float) -> float:
        return self._unary("exp", x, math.exp)

    def log(self, x: float) -> float:
        return self._unary(
            "log", x, lambda v: math.log(v) if v > 0 else self._domain_error()
        )

    def log10(self, x: float) -> float:
        return self._unary(
            "log10", x, lambda v: math.log10(v) if v > 0 else self._domain_error()
        )

    def pow(self, x: float, y: float) -> float:
        x, y = float(x), float(y)
        self._math_enter("pow", x, y)
        if math.isnan(x) or math.isnan(y):
            return math.nan
        try:
            result = math.pow(x, y)
        except ValueError:
            return self._domain_error()
        except OverflowError:
            return self._range_error(x)
        if math.isinf(result) and math.isfinite(x) and math.isfinite(y):
            return self._range_error(result)
        return result

    def sqrt(self, x: float) -> float:
        return self._unary("sqrt", x, math.sqrt)

    def ldexp(self, x: float, exp: int) -> float:
        x = float(x)
        self._math_enter("ldexp", x)
        if math.isnan(x):
            return math.nan
        try:
            return math.ldexp(x, max(min(int(exp), 1 << 16), -(1 << 16)))
        except OverflowError:
            return self._range_error(x)

    # -- rounding / remainder --------------------------------------------------

    def ceil(self, x: float) -> float:
        return self._unary(
            "ceil", x, lambda v: float(math.ceil(v)) if math.isfinite(v) else v
        )

    def floor(self, x: float) -> float:
        return self._unary(
            "floor", x, lambda v: float(math.floor(v)) if math.isfinite(v) else v
        )

    def fabs(self, x: float) -> float:
        return self._unary("fabs", x, math.fabs)

    def fmod(self, x: float, y: float) -> float:
        x, y = float(x), float(y)
        self._math_enter("fmod", x, y)
        if math.isnan(x) or math.isnan(y):
            return math.nan
        if y == 0 or math.isinf(x):
            return self._domain_error()
        return math.fmod(x, y)

    # -- integer -------------------------------------------------------------

    def abs(self, value: int) -> int:
        # abs(INT_MIN) is undefined behaviour: every real CRT returns
        # INT_MIN unchanged (two's complement negation overflows).
        if value == -0x8000_0000:
            return value
        return -value if value < 0 else value

    def labs(self, value: int) -> int:
        return self.abs(value)
