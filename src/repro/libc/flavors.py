"""C-runtime flavour traits.

Each trait names a concrete, mechanistic behaviour difference between
the C runtimes the paper exercised.  The traits were chosen to encode
*documented or architecturally grounded* differences -- never failure
rates -- and the benchmark suite shows that the paper's group-level rate
orderings emerge from them:

* glibc (RedHat 6.0 / gcc 2.91.66) indexes its ``__ctype_b`` tables
  without bounds checks, scans strings byte-wise, trusts ``FILE*``
  arguments and heap block headers, and reports math domain errors via
  ``errno`` rather than floating point traps.
* MSVCRT (VC++ 6.0) bounds-checks ctype lookups, rejects ``NULL`` and
  unregistered ``FILE*`` streams, validates heap headers, uses
  word-at-a-time string scanning, and raises structured exceptions for
  NaN operands.
* The Windows CE runtime behaves like a leaner MSVCRT but runs in a
  single shared address space, so a wild ``FILE*``'s buffer pointer is a
  write into system state (the paper's seventeen-function catastrophic
  finding).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlavorTraits:
    """Robustness-relevant behaviours of one C runtime."""

    name: str
    #: ``NULL`` FILE* arguments are detected and reported (EINVAL).
    null_file_checked: bool
    #: FILE* arguments must be registered streams; unregistered (but
    #: readable) pointers are rejected instead of dereferenced.
    stream_table_validated: bool
    #: ctype table lookups are bounds-checked (out-of-range ``c`` is
    #: classified "not in class" instead of indexing off the table).
    ctype_bounds_checked: bool
    #: String scanning reads 4 bytes at a time (can fault past a
    #: terminator that ends flush against an unmapped page).
    string_word_reads: bool
    #: ``free``/``realloc`` validate the heap block header and report
    #: EINVAL on mismatch instead of trusting it.
    heap_headers_validated: bool
    #: glibc's consistency check: an *invalid but readable* heap pointer
    #: triggers a deliberate abort() rather than silent corruption.
    heap_abort_on_corruption: bool
    #: NaN operands raise a floating-point structured exception instead
    #: of propagating quietly.
    math_traps_nan: bool
    #: asctime/strftime-style field validation: out-of-range struct tm
    #: fields produce an error return instead of indexing name tables.
    tm_fields_validated: bool
    #: ``time()`` is backed by a probing kernel path (EFAULT on a bad
    #: out-pointer) rather than a user-mode store.
    time_via_syscall: bool
    #: ``fgets`` with a non-positive size returns an error instead of
    #: treating the size as unbounded.
    fgets_size_checked: bool
    #: A wild FILE*'s garbage buffer pointer is a write into *shared
    #: system memory* (single-address-space CE) rather than a private
    #: fault.
    wild_file_hits_system: bool


GLIBC = FlavorTraits(
    name="glibc",
    null_file_checked=False,
    stream_table_validated=False,
    ctype_bounds_checked=False,
    string_word_reads=False,
    heap_headers_validated=False,
    heap_abort_on_corruption=True,
    math_traps_nan=False,
    tm_fields_validated=True,
    time_via_syscall=True,
    fgets_size_checked=False,
    wild_file_hits_system=False,
)

MSVCRT = FlavorTraits(
    name="msvcrt",
    null_file_checked=True,
    stream_table_validated=True,
    ctype_bounds_checked=True,
    string_word_reads=True,
    heap_headers_validated=True,
    heap_abort_on_corruption=False,
    math_traps_nan=True,
    tm_fields_validated=False,
    time_via_syscall=False,
    fgets_size_checked=True,
    wild_file_hits_system=False,
)

CE_CRT = FlavorTraits(
    name="ce-crt",
    null_file_checked=False,
    stream_table_validated=False,
    ctype_bounds_checked=True,
    string_word_reads=True,
    heap_headers_validated=True,
    heap_abort_on_corruption=False,
    math_traps_nan=False,
    tm_fields_validated=False,
    time_via_syscall=False,
    fgets_size_checked=False,
    wild_file_hits_system=True,
)

FLAVORS: dict[str, FlavorTraits] = {
    "glibc": GLIBC,
    "msvcrt": MSVCRT,
    "ce-crt": CE_CRT,
}
