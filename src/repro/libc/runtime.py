"""The simulated C runtime: per-process state and shared access helpers.

One :class:`CRuntime` is created per simulated process (lazily, by
:class:`~repro.core.context.TestContext`).  It owns the process's stdio
stream table, its malloc heap, the ctype classification table, and the
static buffers that ``localtime``/``asctime`` return.  The actual C
function families live in mixins:

* :class:`~repro.libc.ctype_funcs.CtypeMixin` -- the "C char" group
* :class:`~repro.libc.string_funcs.StringMixin` -- "C string"
* :class:`~repro.libc.memory_funcs.MemoryMixin` -- "C memory management"
* :class:`~repro.libc.stdio_funcs.StdioMixin` -- "C file I/O management"
  and "C stream I/O"
* :class:`~repro.libc.math_funcs.MathMixin` -- "C math"
* :class:`~repro.libc.time_funcs.TimeMixin` -- "C time"
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.libc import errno_codes as E
from repro.libc.ctype_funcs import CtypeMixin
from repro.libc.flavors import FLAVORS, FlavorTraits
from repro.libc.math_funcs import MathMixin
from repro.libc.memory_funcs import MemoryMixin
from repro.libc.stdio_funcs import StdioMixin, StreamState
from repro.libc.string_funcs import StringMixin
from repro.libc.time_funcs import TimeMixin
from repro.sim.guarded import crt_read, crt_write
from repro.sim.memory import Protection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Process

#: Text preloaded on the console so stdin-reading functions (gets,
#: fscanf on stdin, ...) have something to consume.
CONSOLE_INPUT = b"console input for ballista tests\n42 17 tokens\n"


class CRuntime(
    CtypeMixin, StringMixin, MemoryMixin, StdioMixin, MathMixin, TimeMixin
):
    """Per-process C runtime in the personality's flavour."""

    #: Size of the in-memory FILE structure.
    FILE_SIZE = 16
    #: Size of a stream's internal buffer.
    STREAM_BUF_SIZE = 64

    def __init__(self, process: "Process") -> None:
        self.process = process
        self.machine = process.machine
        self.mem = process.memory
        self.personality = process.personality
        self.traits: FlavorTraits = FLAVORS[self.personality.crt_flavor]
        self.error_reported = False

        self._streams: dict[int, StreamState] = {}
        self._heap: dict[int, object] = {}
        self._strtok_state = 0
        self._static_tm = 0  # lazily created static buffers
        self._static_str = 0

        # glibc-style ctype table: 384 readable bytes covering indices
        # -128..255 (the table pointer aims at offset 128).
        self._ctype_region = self.mem.map(
            384, Protection.READ, tag="ctype-table"
        )

        # Standard streams over the console fds.
        stdin_file = process.fds.get(0)
        if stdin_file is not None and not stdin_file.node.data:
            stdin_file.node.data.extend(CONSOLE_INPUT)
        self.stdin = self._register_stream(stdin_file, readable=True, writable=False)
        self.stdout = self._register_stream(
            process.fds.get(1), readable=False, writable=True
        )
        self.stderr = self._register_stream(
            process.fds.get(2), readable=False, writable=True
        )

    # ------------------------------------------------------------------
    # errno / error reporting
    # ------------------------------------------------------------------

    def _set_errno(self, code: int) -> None:
        self.process.errno = code
        self.error_reported = True

    def _fs_error(self, exc) -> None:
        """Translate a FileSystemError into errno."""
        self._set_errno(E.FS_CODE_TO_ERRNO.get(exc.code, E.EINVAL))

    # ------------------------------------------------------------------
    # Guarded user-memory access (see repro.sim.guarded)
    # ------------------------------------------------------------------

    def _user_write(self, func: str, address: int, data: bytes) -> bool:
        """Write through a caller pointer; False = fault absorbed as
        shared-state corruption (stop streaming)."""
        return crt_write(self.machine, self.mem, func, address, data)

    def _user_read(self, func: str, address: int, size: int) -> bytes | None:
        return crt_read(self.machine, self.mem, func, address, size)

    def _write_span(
        self, func: str, address: int, data: bytes, pad_to: int = 0
    ) -> None:
        """Write ``data`` then zero-fill up to ``pad_to`` total bytes,
        chunked so that enormous sizes fault at the region edge instead
        of materialising gigabytes."""
        if not self._user_write(func, address, data):
            return
        written = len(data)
        chunk = 4096
        while written < pad_to:
            step = min(chunk, pad_to - written)
            if not self._user_write(func, address + written, b"\x00" * step):
                return
            written += step

    def _read_span(self, func: str, address: int, size: int) -> bytes:
        """Chunked guarded read of up to ``size`` bytes; stops early when
        a fault is absorbed in CORRUPT mode."""
        out = bytearray()
        chunk = 4096
        while len(out) < size:
            step = min(chunk, size - len(out))
            piece = self._user_read(func, address + len(out), step)
            if piece is None:
                break
            out += piece
        return bytes(out)

    # ------------------------------------------------------------------
    # Bounded string scanning
    # ------------------------------------------------------------------

    def _scan_str(self, func: str, address: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string the way this flavour's scanner
        does (byte-wise vs word-at-a-time)."""
        return self.mem.read_cstring(
            address, limit=limit, word_at_a_time=self.traits.string_word_reads
        )

    def _scan_str_n(self, func: str, address: int, n: int) -> bytes:
        """Read at most ``n`` bytes, stopping at NUL.  A word-at-a-time
        scanner may touch up to 3 bytes past ``n``, as real ones do."""
        out = bytearray()
        step = 4 if self.traits.string_word_reads else 1
        cursor = address
        while len(out) < n:
            chunk = self.mem.read(cursor, step)
            terminator = chunk.find(0)
            if terminator >= 0:
                out += chunk[:terminator]
                break
            out += chunk
            cursor += step
        return bytes(out[:n])

    def _scan_wstr(self, func: str, address: int, limit: int = 1 << 20) -> bytes:
        """Read a UTF-16LE string (returns raw bytes, no terminator)."""
        if self.traits.string_word_reads:
            out = bytearray()
            cursor = address
            while len(out) < limit:
                chunk = self.mem.read(cursor, 4)
                for i in (0, 2):
                    unit = chunk[i : i + 2]
                    if unit == b"\x00\x00":
                        return bytes(out)
                    out += unit
                cursor += 4
            return bytes(out)
        return self.mem.read_wstring(address, limit=limit)

    # ------------------------------------------------------------------
    # Static result buffers (localtime / asctime return pointers)
    # ------------------------------------------------------------------

    def _static_tm_buffer(self) -> int:
        if not self._static_tm:
            self._static_tm = self.mem.map(44, Protection.RW, tag="static-tm").start
        return self._static_tm

    def _static_str_buffer(self) -> int:
        if not self._static_str:
            self._static_str = self.mem.map(
                64, Protection.RW, tag="static-str"
            ).start
        return self._static_str
