"""The simulated C runtime: per-process state and shared access helpers.

One :class:`CRuntime` is created per simulated process (lazily, by
:class:`~repro.core.context.TestContext`).  It owns the process's stdio
stream table, its malloc heap, the ctype classification table, and the
static buffers that ``localtime``/``asctime`` return.  The actual C
function families live in mixins:

* :class:`~repro.libc.ctype_funcs.CtypeMixin` -- the "C char" group
* :class:`~repro.libc.string_funcs.StringMixin` -- "C string"
* :class:`~repro.libc.memory_funcs.MemoryMixin` -- "C memory management"
* :class:`~repro.libc.stdio_funcs.StdioMixin` -- "C file I/O management"
  and "C stream I/O"
* :class:`~repro.libc.math_funcs.MathMixin` -- "C math"
* :class:`~repro.libc.time_funcs.TimeMixin` -- "C time"
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING

from repro.libc import errno_codes as E
from repro.libc.ctype_funcs import CtypeMixin
from repro.libc.flavors import FLAVORS, FlavorTraits
from repro.libc.math_funcs import MathMixin
from repro.libc.memory_funcs import MemoryMixin
from repro.libc.stdio_funcs import (
    FLAG_OPEN,
    FLAG_READ,
    FLAG_WRITE,
    StdioMixin,
    StreamState,
)
from repro.libc.string_funcs import StringMixin
from repro.libc.time_funcs import TimeMixin
from repro.sim.guarded import crt_read, crt_write
from repro.sim.memory import USER_LIMIT, Protection, Region

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Process

#: Text preloaded on the console so stdin-reading functions (gets,
#: fscanf on stdin, ...) have something to consume.
CONSOLE_INPUT = b"console input for ballista tests\n42 17 tokens\n"

#: Bump-allocation step for each of the runtime's seven boot mappings
#: (ctype table, then FILE + buffer per standard stream).  All are
#: smaller than a page, so each one advances the cursor by exactly one
#: 8 KiB slot -- the same arithmetic :meth:`AddressSpace.map` applies.
_CRT_STEP = 8192
#: Total address-space span the seven mappings cover.
_CRT_SPAN = 7 * _CRT_STEP
#: ``(fd, readable, writable, FILE-header flag word)`` per standard
#: stream, in registration order.
_STREAM_SPECS = (
    (0, True, False, (FLAG_OPEN | FLAG_READ).to_bytes(4, "little")),
    (1, False, True, (FLAG_OPEN | FLAG_WRITE).to_bytes(4, "little")),
    (2, False, True, (FLAG_OPEN | FLAG_WRITE).to_bytes(4, "little")),
)


class CRuntime(
    CtypeMixin, StringMixin, MemoryMixin, StdioMixin, MathMixin, TimeMixin
):
    """Per-process C runtime in the personality's flavour."""

    #: Size of the in-memory FILE structure.
    FILE_SIZE = 16
    #: Size of a stream's internal buffer.
    STREAM_BUF_SIZE = 64

    def __init__(self, process: "Process") -> None:
        self.process = process
        self.machine = process.machine
        self.mem = process.memory
        self.personality = process.personality
        self.traits: FlavorTraits = FLAVORS[self.personality.crt_flavor]
        self.error_reported = False

        self._streams: dict[int, StreamState] = {}
        self._heap: dict[int, object] = {}
        self._strtok_state = 0
        self._static_tm = 0  # lazily created static buffers
        self._static_str = 0

        # The runtime's seven boot mappings: the ctype table (384
        # readable bytes covering indices -128..255; the table pointer
        # aims at offset 128) followed by a FILE structure and stream
        # buffer per standard stream.  They are bump-allocated from the
        # current cursor in a fixed pattern, so the common case places
        # them directly -- byte-identical regions, addresses, cursor,
        # and list order to seven ``map()`` calls.  An open fault window
        # (armed "alloc" exhaustion must fire per mapping) or a cursor
        # near the top of user space takes the mapping path instead.
        mem = self.mem
        faults = mem.faults
        base = mem._cursor
        stdin_file = process.fds.get(0)
        if (faults is None or not faults.active) and base + _CRT_SPAN <= USER_LIMIT:
            ctype = Region(base, 384, Protection.READ, "ctype-table")
            self._ctype_region = ctype
            if stdin_file is not None and not stdin_file.node.data:
                stdin_file.node.data.extend(CONSOLE_INPUT)
            regions = [ctype]
            streams = self._streams
            fds = process.fds
            rw = Protection.RW
            file_size = self.FILE_SIZE
            buf_size = self.STREAM_BUF_SIZE
            offset = _CRT_STEP
            handles = []
            for fd, readable, writable, flag_header in _STREAM_SPECS:
                file_at = base + offset
                buf_at = file_at + _CRT_STEP
                file_region = Region(file_at, file_size, rw, "FILE")
                buf_region = Region(buf_at, buf_size, rw, "stdio-buf")
                offset += 2 * _CRT_STEP
                file_region.data[0:8] = flag_header + buf_at.to_bytes(
                    4, "little"
                )
                file_region.version = 1
                streams[file_at] = StreamState(
                    fds.get(fd), readable, writable, file_at, buf_at
                )
                regions.append(file_region)
                regions.append(buf_region)
                handles.append(file_at)
            position = bisect_right(mem._starts, base)
            mem._starts[position:position] = [r.start for r in regions]
            mem._regions[position:position] = regions
            mem._cursor = base + _CRT_SPAN
            self.stdin, self.stdout, self.stderr = handles
        else:
            self._ctype_region = mem.map(
                384, Protection.READ, tag="ctype-table"
            )
            if stdin_file is not None and not stdin_file.node.data:
                stdin_file.node.data.extend(CONSOLE_INPUT)
            self.stdin = self._register_stream(
                stdin_file, readable=True, writable=False
            )
            self.stdout = self._register_stream(
                process.fds.get(1), readable=False, writable=True
            )
            self.stderr = self._register_stream(
                process.fds.get(2), readable=False, writable=True
            )

    # ------------------------------------------------------------------
    # errno / error reporting
    # ------------------------------------------------------------------

    def _set_errno(self, code: int) -> None:
        self.process.errno = code
        self.error_reported = True

    def _fs_error(self, exc) -> None:
        """Translate a FileSystemError into errno."""
        self._set_errno(E.FS_CODE_TO_ERRNO.get(exc.code, E.EINVAL))

    # ------------------------------------------------------------------
    # Guarded user-memory access (see repro.sim.guarded)
    # ------------------------------------------------------------------

    def _user_write(self, func: str, address: int, data: bytes) -> bool:
        """Write through a caller pointer; False = fault absorbed as
        shared-state corruption (stop streaming)."""
        return crt_write(self.machine, self.mem, func, address, data)

    def _user_read(self, func: str, address: int, size: int) -> bytes | None:
        return crt_read(self.machine, self.mem, func, address, size)

    def _write_span(
        self, func: str, address: int, data: bytes, pad_to: int = 0
    ) -> None:
        """Write ``data`` then zero-fill up to ``pad_to`` total bytes,
        chunked so that enormous sizes fault at the region edge instead
        of materialising gigabytes."""
        if not self._user_write(func, address, data):
            return
        written = len(data)
        chunk = 4096
        while written < pad_to:
            step = min(chunk, pad_to - written)
            if not self._user_write(func, address + written, b"\x00" * step):
                return
            written += step

    def _read_span(self, func: str, address: int, size: int) -> bytes:
        """Chunked guarded read of up to ``size`` bytes; stops early when
        a fault is absorbed in CORRUPT mode."""
        out = bytearray()
        chunk = 4096
        while len(out) < size:
            step = min(chunk, size - len(out))
            piece = self._user_read(func, address + len(out), step)
            if piece is None:
                break
            out += piece
        return bytes(out)

    # ------------------------------------------------------------------
    # Bounded string scanning
    # ------------------------------------------------------------------

    def _scan_str(self, func: str, address: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string the way this flavour's scanner
        does (byte-wise vs word-at-a-time)."""
        return self.mem.read_cstring(
            address, limit=limit, word_at_a_time=self.traits.string_word_reads
        )

    def _scan_str_n(self, func: str, address: int, n: int) -> bytes:
        """Read at most ``n`` bytes, stopping at NUL.  A word-at-a-time
        scanner may touch up to 3 bytes past ``n``, as real ones do."""
        out = bytearray()
        step = 4 if self.traits.string_word_reads else 1
        cursor = address
        while len(out) < n:
            chunk = self.mem.read(cursor, step)
            terminator = chunk.find(0)
            if terminator >= 0:
                out += chunk[:terminator]
                break
            out += chunk
            cursor += step
        return bytes(out[:n])

    def _scan_wstr(self, func: str, address: int, limit: int = 1 << 20) -> bytes:
        """Read a UTF-16LE string (returns raw bytes, no terminator)."""
        if self.traits.string_word_reads:
            out = bytearray()
            cursor = address
            while len(out) < limit:
                chunk = self.mem.read(cursor, 4)
                for i in (0, 2):
                    unit = chunk[i : i + 2]
                    if unit == b"\x00\x00":
                        return bytes(out)
                    out += unit
                cursor += 4
            return bytes(out)
        return self.mem.read_wstring(address, limit=limit)

    # ------------------------------------------------------------------
    # Static result buffers (localtime / asctime return pointers)
    # ------------------------------------------------------------------

    def _static_tm_buffer(self) -> int:
        if not self._static_tm:
            self._static_tm = self.mem.map(44, Protection.RW, tag="static-tm").start
        return self._static_tm

    def _static_str_buffer(self) -> int:
        if not self._static_str:
            self._static_str = self.mem.map(
                64, Protection.RW, tag="static-str"
            ).start
        return self._static_str
