"""The "C char" group: ctype classification and case conversion.

This group produced the paper's starkest C-library contrast: "Linux has
more than a 30% Abort failure rate for C character operations, whereas
all the Windows systems have zero percent failure rates (this difference
is presumably because Windows does boundary checking on character
table-lookup operations)".

The mechanism is modelled literally: the glibc flavour indexes a
384-byte classification table at ``c + 128`` with **no bounds check**
(valid for the documented ``EOF..255`` domain and the signed-char range,
faulting for anything else), while the MSVCRT/CE flavours bounds-check
and classify out-of-range values as "not in class".
"""

from __future__ import annotations

from typing import Callable


def _ascii_pred(pred: Callable[[int], bool]) -> Callable[[int], bool]:
    return lambda c: 0 <= c <= 127 and pred(c)


_CLASSES: dict[str, Callable[[int], bool]] = {
    "isalnum": _ascii_pred(lambda c: chr(c).isalnum()),
    "isalpha": _ascii_pred(lambda c: chr(c).isalpha()),
    "iscntrl": _ascii_pred(lambda c: c < 0x20 or c == 0x7F),
    "isdigit": _ascii_pred(lambda c: chr(c).isdigit()),
    "isgraph": _ascii_pred(lambda c: 0x21 <= c <= 0x7E),
    "islower": _ascii_pred(lambda c: chr(c).islower()),
    "isprint": _ascii_pred(lambda c: 0x20 <= c <= 0x7E),
    "ispunct": _ascii_pred(
        lambda c: 0x21 <= c <= 0x7E and not chr(c).isalnum()
    ),
    "isspace": _ascii_pred(lambda c: chr(c) in " \t\n\r\v\f"),
    "isupper": _ascii_pred(lambda c: chr(c).isupper()),
    "isxdigit": _ascii_pred(lambda c: chr(c) in "0123456789abcdefABCDEF"),
}


class CtypeMixin:
    """ctype.h implementations (13 ASCII functions + CE wide twins)."""

    def _ctype_lookup(self, c: int) -> int:
        """Index the classification table the way this flavour does.

        Bounds-checked flavours clamp; glibc performs the raw table read
        ``__ctype_b[c]`` where the table covers -128..255, so any other
        ``c`` is an out-of-bounds access that (with our exact-sized
        table region) faults.
        """
        if self.traits.ctype_bounds_checked:
            return c if -1 <= c <= 255 else -1
        # Raw lookup: table base points at offset 128 of the region.
        self.mem.read(self._ctype_region.start + 128 + c, 1)
        return c

    def _classify(self, name: str, c: int) -> int:
        looked_up = self._ctype_lookup(c)
        if looked_up < 0:
            return 0
        return 1 if _CLASSES[name](looked_up) else 0

    # -- classification -------------------------------------------------

    def isalnum(self, c: int) -> int:
        return self._classify("isalnum", c)

    def isalpha(self, c: int) -> int:
        return self._classify("isalpha", c)

    def iscntrl(self, c: int) -> int:
        return self._classify("iscntrl", c)

    def isdigit(self, c: int) -> int:
        return self._classify("isdigit", c)

    def isgraph(self, c: int) -> int:
        return self._classify("isgraph", c)

    def islower(self, c: int) -> int:
        return self._classify("islower", c)

    def isprint(self, c: int) -> int:
        return self._classify("isprint", c)

    def ispunct(self, c: int) -> int:
        return self._classify("ispunct", c)

    def isspace(self, c: int) -> int:
        return self._classify("isspace", c)

    def isupper(self, c: int) -> int:
        return self._classify("isupper", c)

    def isxdigit(self, c: int) -> int:
        return self._classify("isxdigit", c)

    # -- conversion -------------------------------------------------------

    def tolower(self, c: int) -> int:
        looked_up = self._ctype_lookup(c)
        if 0 <= looked_up <= 255 and chr(looked_up).isupper():
            return ord(chr(looked_up).lower())
        return c

    def toupper(self, c: int) -> int:
        looked_up = self._ctype_lookup(c)
        if 0 <= looked_up <= 255 and chr(looked_up).islower():
            return ord(chr(looked_up).upper())
        return c

    # -- CE wide-character twins ------------------------------------------
    # The wide tables span the full 16-bit range, and the CE runtime
    # bounds-checks, so these never fault on scalar arguments.

    def towlower(self, c: int) -> int:
        if 0 <= c <= 0xFFFF:
            return ord(chr(c).lower()[:1] or chr(c))
        return c

    def towupper(self, c: int) -> int:
        if 0 <= c <= 0xFFFF:
            return ord(chr(c).upper()[:1] or chr(c))
        return c

    def iswalpha(self, c: int) -> int:
        return 1 if 0 <= c <= 0xFFFF and chr(c).isalpha() else 0
