"""Simulated C libraries (the 94 shared C-library MuTs).

"Of these calls, 94 were C library functions that were tested with
identical test cases in both APIs" (paper, section 1).  The same
implementations run on every OS variant; the variant's
:class:`~repro.libc.flavors.FlavorTraits` (glibc for Linux, MSVCRT for
desktop Windows, the CE runtime for Windows CE) decide the
robustness-relevant behaviour: parameter validation, ctype table bounds
checking, word-at-a-time string scanning, heap header validation, and
whether a wild ``FILE*`` dereference lands in shared system memory.
"""

from repro.libc.flavors import FLAVORS, FlavorTraits
from repro.libc.registration import register
from repro.libc.runtime import CRuntime

__all__ = ["CRuntime", "FLAVORS", "FlavorTraits", "register"]
