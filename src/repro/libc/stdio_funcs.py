"""The "C file I/O management" and "C stream I/O" groups.

``FILE*`` values are real addresses of 16-byte in-memory FILE
structures (``_flag``, ``_buffer``, ``_fd``), so the Ballista pool can
include NULL, unmapped, stale, and "string buffer typecast to a file
pointer" values and each flavour reacts mechanistically:

* MSVCRT rejects NULL and unregistered streams (EINVAL error return);
* glibc trusts the structure and chases its (garbage) buffer pointer --
  a user-mode fault, hence the higher Linux Abort rates in both groups;
* the CE runtime also trusts the structure, but lives in a single
  shared address space: flushing through the garbage buffer pointer
  writes into system state.  For the personality's RAW functions that
  is an immediate system crash; for fread/fgets (CORRUPT) it silently
  corrupts until the machine falls over -- reproducing the paper's
  seventeen-function Windows CE finding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.libc import errno_codes as E
from repro.sim.filesystem import FileSystemError, OpenFile
from repro.sim.guarded import crt_write
from repro.sim.memory import Protection

_U32 = 0xFFFF_FFFF

FLAG_READ = 0x1
FLAG_WRITE = 0x2
FLAG_OPEN = 0x4

#: Cap on pathological printf field widths so the simulation materialises
#: at most 64 KiB of padding (the fault, if any, happens long before).
MAX_FIELD_WIDTH = 0x1_0000


@dataclass(slots=True)
class StreamState:
    """CRT-side state of one open stream."""

    open_file: OpenFile | None
    readable: bool
    writable: bool
    file_addr: int
    buffer_addr: int
    closed: bool = False
    eof: bool = False
    err: bool = False
    ungot: list[int] = field(default_factory=list)


class StdioMixin:
    """stdio.h implementations (24 ASCII functions + CE wide twins)."""

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------

    def _register_stream(
        self, open_file: OpenFile | None, readable: bool, writable: bool
    ) -> int:
        file_region = self.mem.map(self.FILE_SIZE, Protection.RW, tag="FILE")
        buf_region = self.mem.map(
            self.STREAM_BUF_SIZE, Protection.RW, tag="stdio-buf"
        )
        flags = FLAG_OPEN
        flags |= FLAG_READ if readable else 0
        flags |= FLAG_WRITE if writable else 0
        # Initialise the freshly mapped, word-aligned FILE structure
        # directly (stores identical to the checked ``write_u32`` path:
        # the region is private, RW, and cannot fault).
        file_region.data[0:8] = flags.to_bytes(4, "little") + (
            buf_region.start
        ).to_bytes(4, "little")
        file_region.version += 1
        state = StreamState(
            open_file, readable, writable, file_region.start, buf_region.start
        )
        self._streams[file_region.start] = state
        return file_region.start

    def open_stream_for_test(self, path: str, mode: str) -> int:
        """Constructor hook for test values: open a real stream."""
        readable = "r" in mode or "+" in mode
        writable = mode[0] in "wa" or "+" in mode
        open_file = self.machine.fs.open(
            path,
            readable=readable,
            writable=writable,
            create=mode[0] in "wa",
            truncate=mode[0] == "w",
            append=mode[0] == "a",
        )
        return self._register_stream(open_file, readable, writable)

    def make_closed_stream(self) -> int:
        """Constructor hook: a stream that has been properly fclosed."""
        fp = self.open_stream_for_test(
            f"/tmp/bt_closed_{self.process.pid}.dat", "w"
        )
        state = self._streams[fp]
        if state.open_file is not None:
            state.open_file.close()
        state.closed = True
        self.mem.write_u32(fp, 0)  # _flag cleared
        self.mem.write_u32(fp + 4, 0)  # buffer pointer zeroed
        return fp

    def _stream(self, func: str, fp: int) -> StreamState | None:
        """Resolve a FILE* the way this flavour does.

        Returns the live stream, or ``None`` after reporting an error;
        raises a fault (or crashes the machine) when the flavour
        dereferences garbage.
        """
        fp &= _U32
        if fp == 0:
            if self.traits.null_file_checked:
                self._set_errno(E.EINVAL)
                return None
            self.mem.read_u32(fp)  # NULL dereference: user-mode fault
        state = self._streams.get(fp)
        if state is not None and not state.closed:
            return state
        # Stale or foreign pointer.  Every CRT reads the header fields.
        self.mem.read_u32(fp)  # _flag  (faults on unmapped FILE*)
        buffer_ptr = self.mem.read_u32(fp + 4)
        if self.traits.stream_table_validated:
            self._set_errno(E.EINVAL)
            return None
        if self.traits.wild_file_hits_system:
            # Single shared address space: the garbage buffer pointer is
            # a system address; writing the flush through it tramples
            # the OS (immediate crash or creeping corruption depending
            # on the personality's mode for this function).
            crt_write(self.machine, self.mem, func, buffer_ptr, b"\x00" * 16)
            self._set_errno(E.EBADF)
            return None
        # glibc: trust the struct, chase the garbage buffer pointer.
        self.mem.read(buffer_ptr, 4)
        self._set_errno(E.EBADF)
        return None

    # ------------------------------------------------------------------
    # C file I/O management
    # ------------------------------------------------------------------

    def _parse_mode(self, mode_addr: int) -> str | None:
        mode = self._scan_str("fopen", mode_addr).decode("latin-1")
        base = mode.rstrip("bt+")
        if base not in ("r", "w", "a") or len(mode) > 3:
            return None
        return mode

    def fopen(self, path_addr: int, mode_addr: int) -> int:
        path = self._scan_str("fopen", path_addr).decode("latin-1")
        mode = self._parse_mode(mode_addr)
        if mode is None:
            self._set_errno(E.EINVAL)
            return 0
        try:
            return self.open_stream_for_test(path, mode)
        except FileSystemError as exc:
            self._fs_error(exc)
            return 0

    def freopen(self, path_addr: int, mode_addr: int, fp: int) -> int:
        state = self._stream("freopen", fp)
        if state is None:
            return 0
        if state.open_file is not None:
            state.open_file.close()
        path = self._scan_str("freopen", path_addr).decode("latin-1")
        mode = self._parse_mode(mode_addr)
        if mode is None:
            self._set_errno(E.EINVAL)
            return 0
        try:
            reopened = self.machine.fs.open(
                path,
                readable="r" in mode or "+" in mode,
                writable=mode[0] in "wa" or "+" in mode,
                create=mode[0] in "wa",
                truncate=mode[0] == "w",
                append=mode[0] == "a",
            )
        except FileSystemError as exc:
            self._fs_error(exc)
            return 0
        state.open_file = reopened
        state.readable = reopened.readable
        state.writable = reopened.writable
        return fp

    def fclose(self, fp: int) -> int:
        state = self._stream("fclose", fp)
        if state is None:
            return -1
        if state.open_file is not None:
            state.open_file.close()
        state.closed = True
        self.mem.write_u32(state.file_addr, 0)
        self.mem.write_u32(state.file_addr + 4, 0)
        return 0

    def fflush(self, fp: int) -> int:
        if fp == 0:
            return 0  # fflush(NULL) flushes every stream: always legal
        state = self._stream("fflush", fp)
        return 0 if state is not None else -1

    def fseek(self, fp: int, offset: int, whence: int) -> int:
        state = self._stream("fseek", fp)
        if state is None:
            return -1
        if whence not in (0, 1, 2):
            self._set_errno(E.EINVAL)
            return -1
        if state.open_file is None:
            self._set_errno(E.ESPIPE)
            return -1
        try:
            state.open_file.seek(offset, whence)
        except FileSystemError as exc:
            self._fs_error(exc)
            return -1
        state.ungot.clear()
        state.eof = False
        return 0

    def ftell(self, fp: int) -> int:
        state = self._stream("ftell", fp)
        if state is None:
            return -1
        if state.open_file is None:
            self._set_errno(E.ESPIPE)
            return -1
        return state.open_file.offset

    def rewind(self, fp: int) -> None:
        state = self._stream("rewind", fp)
        if state is None:
            return
        if state.open_file is not None:
            state.open_file.seek(0, 0)
        state.ungot.clear()
        state.eof = False
        state.err = False

    def clearerr(self, fp: int) -> None:
        state = self._stream("clearerr", fp)
        if state is None:
            return
        state.eof = False
        state.err = False

    def remove(self, path_addr: int) -> int:
        path = self._scan_str("remove", path_addr).decode("latin-1")
        try:
            self.machine.fs.unlink(path)
            return 0
        except FileSystemError as exc:
            self._fs_error(exc)
            return -1

    def rename(self, old_addr: int, new_addr: int) -> int:
        old = self._scan_str("rename", old_addr).decode("latin-1")
        new = self._scan_str("rename", new_addr).decode("latin-1")
        try:
            self.machine.fs.rename(old, new)
            return 0
        except FileSystemError as exc:
            self._fs_error(exc)
            return -1

    # ------------------------------------------------------------------
    # C stream I/O primitives
    # ------------------------------------------------------------------

    def _stream_read(self, state: StreamState, count: int) -> bytes:
        if not state.readable or state.open_file is None:
            self._set_errno(E.EBADF)
            state.err = True
            return b""
        out = bytearray()
        while state.ungot and len(out) < count:
            out.append(state.ungot.pop())
        try:
            data = state.open_file.read(count - len(out))
        except FileSystemError as exc:
            self._fs_error(exc)
            state.err = True
            return bytes(out)
        out += data
        if len(out) < count:
            state.eof = True
        return bytes(out)

    def _stream_write(self, state: StreamState, data: bytes) -> int:
        if not state.writable or state.open_file is None:
            self._set_errno(E.EBADF)
            state.err = True
            return 0
        try:
            return state.open_file.write(data)
        except FileSystemError as exc:
            self._fs_error(exc)
            state.err = True
            return 0

    def fread(self, ptr: int, size: int, count: int, fp: int) -> int:
        size &= _U32
        count &= _U32
        state = self._stream("fread", fp)
        if state is None or size == 0 or count == 0:
            return 0
        data = self._stream_read(state, min(size * count, 1 << 20))
        self._write_span("fread", ptr, data)
        return len(data) // size

    def fwrite(self, ptr: int, size: int, count: int, fp: int) -> int:
        size &= _U32
        count &= _U32
        state = self._stream("fwrite", fp)
        if state is None or size == 0 or count == 0:
            return 0
        data = self._read_span("fwrite", ptr, min(size * count, 1 << 20))
        written = self._stream_write(state, data)
        return written // size

    def fgetc(self, fp: int) -> int:
        state = self._stream("fgetc", fp)
        if state is None:
            return -1
        data = self._stream_read(state, 1)
        return data[0] if data else -1

    def getc(self, fp: int) -> int:
        state = self._stream("getc", fp)
        if state is None:
            return -1
        data = self._stream_read(state, 1)
        return data[0] if data else -1

    def fputc(self, c: int, fp: int) -> int:
        state = self._stream("fputc", fp)
        if state is None:
            return -1
        byte = c & 0xFF
        return byte if self._stream_write(state, bytes([byte])) else -1

    def putc(self, c: int, fp: int) -> int:
        state = self._stream("putc", fp)
        if state is None:
            return -1
        byte = c & 0xFF
        return byte if self._stream_write(state, bytes([byte])) else -1

    def ungetc(self, c: int, fp: int) -> int:
        state = self._stream("ungetc", fp)
        if state is None:
            return -1
        if c == -1:
            return -1
        state.ungot.append(c & 0xFF)
        state.eof = False
        return c & 0xFF

    def fgets(self, buffer: int, n: int, fp: int) -> int:
        state = self._stream("fgets", fp)
        if state is None:
            return 0
        if n <= 0:
            if self.traits.fgets_size_checked:
                self._set_errno(E.EINVAL)
                return 0
            # Historic glibc bug family: a non-positive size was treated
            # as "no limit" by careless callers of the unchecked path.
            n = 1 << 20
        line = bytearray()
        while len(line) < n - 1:
            byte = self._stream_read(state, 1)
            if not byte:
                break
            line += byte
            if byte == b"\n":
                break
        if not line:
            return 0
        self._write_span("fgets", buffer, bytes(line) + b"\x00")
        return buffer

    def fputs(self, s: int, fp: int) -> int:
        data = self._scan_str("fputs", s)
        state = self._stream("fputs", fp)
        if state is None:
            return -1
        return self._stream_write(state, data)

    def gets(self, buffer: int) -> int:
        """The classic unbounded read into a caller buffer."""
        state = self._streams[self.stdin]
        line = bytearray()
        while True:
            byte = self._stream_read(state, 1)
            if not byte or byte == b"\n":
                break
            line += byte
        if not line and state.eof:
            return 0
        self._write_span("gets", buffer, bytes(line) + b"\x00")
        return buffer

    def puts(self, s: int) -> int:
        data = self._scan_str("puts", s)
        state = self._streams[self.stdout]
        self._stream_write(state, data + b"\n")
        return len(data) + 1

    # ------------------------------------------------------------------
    # Formatted I/O
    # ------------------------------------------------------------------

    def _format(self, func: str, fmt: bytes, arg: int) -> bytes:
        """Minimal printf engine supporting the pool's conversions.

        ``%s`` treats the (integer) vararg as a char* and scans it --
        faulting exactly like a mismatched vararg does; ``%n`` stores the
        running count through the vararg-as-pointer.
        """
        out = bytearray()
        index = 0
        consumed_arg = False
        while index < len(fmt):
            byte = fmt[index]
            if byte != ord("%"):
                out.append(byte)
                index += 1
                continue
            match = re.match(rb"%(-?\d*)([dsuxcn%])", fmt[index:])
            if match is None:
                out.append(byte)
                index += 1
                continue
            width = int(match.group(1) or 0)
            conv = match.group(2)
            index += match.end()
            if conv == b"%":
                out += b"%"
                continue
            value = 0 if consumed_arg else arg
            consumed_arg = True
            if conv == b"s":
                rendered = self._scan_str(func, value)
            elif conv == b"n":
                self._write_span(func, value, len(out).to_bytes(4, "little"))
                rendered = b""
            elif conv == b"c":
                rendered = bytes([value & 0xFF])
            elif conv == b"x":
                rendered = format(value & _U32, "x").encode()
            else:
                rendered = str(value).encode()
            pad = min(abs(width), MAX_FIELD_WIDTH) - len(rendered)
            if pad > 0:
                rendered = (
                    rendered + b" " * pad if width < 0 else b" " * pad + rendered
                )
            out += rendered
        return bytes(out)

    def fprintf(self, fp: int, fmt_addr: int, arg: int) -> int:
        fmt = self._scan_str("fprintf", fmt_addr)
        state = self._stream("fprintf", fp)
        if state is None:
            return -1
        rendered = self._format("fprintf", fmt, arg)
        return self._stream_write(state, rendered)

    def sprintf(self, buffer: int, fmt_addr: int, arg: int) -> int:
        fmt = self._scan_str("sprintf", fmt_addr)
        rendered = self._format("sprintf", fmt, arg)
        self._write_span("sprintf", buffer, rendered + b"\x00")
        return len(rendered)

    def fscanf(self, fp: int, fmt_addr: int, out_ptr: int) -> int:
        fmt = self._scan_str("fscanf", fmt_addr)
        state = self._stream("fscanf", fp)
        if state is None:
            return -1
        text = self._stream_read(state, 256)
        matched = 0
        if b"%d" in fmt:
            match = re.search(rb"[-+]?\d+", text)
            if match:
                value = int(match.group(0)) & _U32
                self._write_span("fscanf", out_ptr, value.to_bytes(4, "little"))
                matched = 1
        elif b"%s" in fmt:
            match = re.search(rb"\S+", text)
            if match:
                self._write_span("fscanf", out_ptr, match.group(0) + b"\x00")
                matched = 1
        elif b"%n" in fmt:
            self._write_span("fscanf", out_ptr, (0).to_bytes(4, "little"))
        return matched if matched else -1

    # ------------------------------------------------------------------
    # Windows CE wide twins
    # ------------------------------------------------------------------

    def _wfopen(self, path_addr: int, mode_addr: int) -> int:
        path = self._scan_wstr("_wfopen", path_addr).decode(
            "utf-16-le", "replace"
        )
        mode = self._scan_wstr("_wfopen", mode_addr).decode(
            "utf-16-le", "replace"
        )
        base = mode.rstrip("bt+")
        if base not in ("r", "w", "a") or len(mode) > 3:
            self._set_errno(E.EINVAL)
            return 0
        try:
            return self.open_stream_for_test(path, mode)
        except FileSystemError as exc:
            self._fs_error(exc)
            return 0

    def _wfreopen(self, path_addr: int, mode_addr: int, fp: int) -> int:
        state = self._stream("_wfreopen", fp)
        if state is None:
            return 0
        path = self._scan_wstr("_wfreopen", path_addr).decode(
            "utf-16-le", "replace"
        )
        mode = self._scan_wstr("_wfreopen", mode_addr).decode(
            "utf-16-le", "replace"
        )
        base = mode.rstrip("bt+")
        if base not in ("r", "w", "a") or len(mode) > 3:
            self._set_errno(E.EINVAL)
            return 0
        if state.open_file is not None:
            state.open_file.close()
        try:
            reopened = self.machine.fs.open(
                path,
                readable="r" in mode or "+" in mode,
                writable=mode[0] in "wa" or "+" in mode,
                create=mode[0] in "wa",
                truncate=mode[0] == "w",
            )
        except FileSystemError as exc:
            self._fs_error(exc)
            return 0
        state.open_file = reopened
        return fp

    def wfread(self, ptr: int, size: int, count: int, fp: int) -> int:
        """CE's wide-build fread (the paper's "fread (UNICODE and
        ASCII)" row)."""
        size &= _U32
        count &= _U32
        state = self._stream("wfread", fp)
        if state is None or size == 0 or count == 0:
            return 0
        data = self._stream_read(state, min(size * count, 1 << 20))
        self._write_span("wfread", ptr, data)
        return len(data) // size

    def fgetwc(self, fp: int) -> int:
        state = self._stream("fgetwc", fp)
        if state is None:
            return -1
        data = self._stream_read(state, 2)
        return int.from_bytes(data, "little") if len(data) == 2 else -1

    def fgetws(self, buffer: int, n: int, fp: int) -> int:
        state = self._stream("fgetws", fp)
        if state is None:
            return 0
        if n <= 0:
            n = 1 << 18
        line = bytearray()
        while len(line) // 2 < n - 1:
            unit = self._stream_read(state, 2)
            if len(unit) < 2:
                break
            line += unit
            if unit == b"\n\x00":
                break
        if not line:
            return 0
        self._write_span("fgetws", buffer, bytes(line) + b"\x00\x00")
        return buffer

    def fputwc(self, c: int, fp: int) -> int:
        state = self._stream("fputwc", fp)
        if state is None:
            return -1
        unit = (c & 0xFFFF).to_bytes(2, "little")
        return (c & 0xFFFF) if self._stream_write(state, unit) else -1

    def fputws(self, s: int, fp: int) -> int:
        data = self._scan_wstr("fputws", s)
        state = self._stream("fputws", fp)
        if state is None:
            return -1
        return self._stream_write(state, data)

    def fwprintf(self, fp: int, fmt_addr: int, arg: int) -> int:
        fmt = self._scan_wstr("fwprintf", fmt_addr).decode(
            "utf-16-le", "replace"
        )
        state = self._stream("fwprintf", fp)
        if state is None:
            return -1
        rendered = self._format("fwprintf", fmt.encode("latin-1", "replace"), arg)
        return self._stream_write(state, rendered.decode("latin-1").encode("utf-16-le"))

    def fwscanf(self, fp: int, fmt_addr: int, out_ptr: int) -> int:
        fmt = self._scan_wstr("fwscanf", fmt_addr)
        state = self._stream("fwscanf", fp)
        if state is None:
            return -1
        text = self._stream_read(state, 256)
        if b"%d" in fmt.replace(b"\x00", b""):
            match = re.search(rb"[-+]?\d+", text.replace(b"\x00", b"")) if text else None
            if match:
                value = int(match.group(0)) & _U32
                self._write_span("fwscanf", out_ptr, value.to_bytes(4, "little"))
                return 1
        return -1
