"""The "C time" group.

Flavour mechanics:

* glibc's ``time()`` is a thin system-call wrapper, so a bad out-pointer
  comes back as ``EFAULT`` from the probing kernel; MSVCRT's stores
  through the pointer in user mode and faults.
* glibc validates ``struct tm`` field ranges (error return); MSVCRT
  indexes its month/day name tables with whatever the struct contains,
  so garbage fields walk off the tables and fault.

Both mechanisms make this one of the eight groups where the paper
measured *Linux lower* than Windows.
"""

from __future__ import annotations

from repro.libc import errno_codes as E
from repro.sim.guarded import kernel_copy_to_user

_U32 = 0xFFFF_FFFF

_DAYS_IN_MONTH = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
_MONTH_NAMES = [
    b"Jan", b"Feb", b"Mar", b"Apr", b"May", b"Jun",
    b"Jul", b"Aug", b"Sep", b"Oct", b"Nov", b"Dec",
]
_DAY_NAMES = [b"Sun", b"Mon", b"Tue", b"Wed", b"Thu", b"Fri", b"Sat"]


def _civil_from_unix(seconds: int) -> tuple[int, int, int, int, int, int, int, int]:
    """(year, month0, day, hour, minute, second, weekday, yearday)."""
    days, rem = divmod(seconds, 86_400)
    hour, rem = divmod(rem, 3_600)
    minute, second = divmod(rem, 60)
    weekday = (4 + days) % 7  # 1970-01-01 was a Thursday
    year = 1970
    while True:
        length = 366 if _is_leap(year) else 365
        if days < length:
            break
        days -= length
        year += 1
    yearday = days
    month = 0
    month_days = list(_DAYS_IN_MONTH)
    if _is_leap(year):
        month_days[1] = 29
    while days >= month_days[month]:
        days -= month_days[month]
        month += 1
    return year, month, days + 1, hour, minute, second, weekday, yearday


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


class TimeMixin:
    """time.h implementations (8 functions)."""

    # ------------------------------------------------------------------
    # struct tm marshalling (nine i32 fields, 36 bytes used of 44)
    # ------------------------------------------------------------------

    def _read_tm(self, func: str, address: int) -> list[int]:
        return [self.mem.read_i32(address + 4 * i) for i in range(9)]

    def _write_tm(self, address: int, fields: list[int]) -> None:
        for index, value in enumerate(fields):
            self.mem.write_i32(address + 4 * index, value)

    def _tm_fields_sane(self, fields: list[int]) -> bool:
        sec, minute, hour, mday, mon, year, _wday, _yday, _isdst = fields
        return (
            0 <= sec <= 61
            and 0 <= minute <= 59
            and 0 <= hour <= 23
            and 1 <= mday <= 31
            and 0 <= mon <= 11
            and -1900 <= year <= 8099
        )

    def _month_name(self, func: str, month: int) -> bytes:
        """Index the month-name table the way this flavour does."""
        if self.traits.tm_fields_validated:
            return _MONTH_NAMES[month % 12]
        # Unchecked table walk: garbage months read off the table.
        self.mem.read(self._ctype_region.start + 128 + month * 4, 1)
        return _MONTH_NAMES[month % 12]

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def time(self, t_ptr: int) -> int:
        now = self.machine.clock.unix_seconds()
        if t_ptr != 0:
            if self.traits.time_via_syscall:
                ok = kernel_copy_to_user(
                    self.machine,
                    self.mem,
                    "time",
                    t_ptr,
                    now.to_bytes(4, "little"),
                )
                if not ok:
                    self._set_errno(E.EFAULT)
                    return -1 & _U32
            else:
                self.mem.write_u32(t_ptr, now)  # user-mode store
        return now

    def localtime(self, t_ptr: int) -> int:
        seconds = self.mem.read_i32(t_ptr)  # dereferences in user mode
        if seconds < 0:
            if self.traits.tm_fields_validated:
                self._set_errno(E.EOVERFLOW)
                return 0
            seconds &= 0x7FFF_FFFF
        year, mon, mday, hour, minute, sec, wday, yday = _civil_from_unix(seconds)
        out = self._static_tm_buffer()
        self._write_tm(out, [sec, minute, hour, mday, mon, year - 1900, wday, yday, 0])
        return out

    def gmtime(self, t_ptr: int) -> int:
        return self.localtime(t_ptr)  # the simulated machine runs in UTC

    def mktime(self, tm_ptr: int) -> int:
        fields = self._read_tm("mktime", tm_ptr)
        if not self._tm_fields_sane(fields):
            if self.traits.tm_fields_validated:
                self._set_errno(E.EOVERFLOW)
                return -1 & _U32
            # Unchecked: normalisation walks the month table with the
            # garbage month value.
            self._month_name("mktime", fields[4])
        sec, minute, hour, mday, mon, year = fields[:6]
        total_days = 0
        for y in range(1970, max(1970, min(year + 1900, 10_000))):
            total_days += 366 if _is_leap(y) else 365
        month_days = list(_DAYS_IN_MONTH)
        if _is_leap(year + 1900):
            month_days[1] = 29
        total_days += sum(month_days[: max(0, min(mon, 11))]) + max(0, mday - 1)
        return total_days * 86_400 + hour * 3_600 + minute * 60 + sec

    def _render_asctime(self, func: str, fields: list[int]) -> bytes:
        sec, minute, hour, mday, mon, year = fields[:6]
        wday = fields[6]
        month = self._month_name(func, mon)
        day = _DAY_NAMES[wday % 7]
        return (
            day
            + b" "
            + month
            + b" %2d %02d:%02d:%02d %4d\n" % (mday, hour, minute, sec, year + 1900)
        )

    def asctime(self, tm_ptr: int) -> int:
        fields = self._read_tm("asctime", tm_ptr)
        if not self._tm_fields_sane(fields) and self.traits.tm_fields_validated:
            self._set_errno(E.EOVERFLOW)
            return 0
        text = self._render_asctime("asctime", fields)
        out = self._static_str_buffer()
        self.mem.write_cstring(out, text[:62])
        return out

    def ctime(self, t_ptr: int) -> int:
        tm_addr = self.localtime(t_ptr)
        if tm_addr == 0:
            return 0
        return self.asctime(tm_addr)

    def strftime(self, buffer: int, maxsize: int, fmt_addr: int, tm_ptr: int) -> int:
        maxsize &= _U32
        fmt = self._scan_str("strftime", fmt_addr)
        fields = self._read_tm("strftime", tm_ptr)
        if not self._tm_fields_sane(fields):
            if self.traits.tm_fields_validated:
                self._set_errno(E.EOVERFLOW)
                return 0
            self._month_name("strftime", fields[4])
        rendered = bytearray()
        index = 0
        while index < len(fmt):
            if fmt[index] == ord("%") and index + 1 < len(fmt):
                conv = fmt[index + 1 : index + 2]
                if conv == b"Y":
                    rendered += str(fields[5] + 1900).encode()
                elif conv == b"m":
                    rendered += b"%02d" % ((fields[4] % 12) + 1)
                elif conv == b"d":
                    rendered += b"%02d" % fields[3]
                elif conv == b"H":
                    rendered += b"%02d" % fields[2]
                else:
                    rendered += fmt[index : index + 2]
                index += 2
            else:
                rendered.append(fmt[index])
                index += 1
        if maxsize == 0 or len(rendered) + 1 > maxsize:
            return 0
        self._write_span("strftime", buffer, bytes(rendered) + b"\x00")
        return len(rendered)

    def difftime(self, end: int, start: int) -> float:
        return float(end - start)
