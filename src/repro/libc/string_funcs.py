"""The "C string" group: string.h plus the numeric conversions.

Flavour-relevant mechanics:

* the glibc flavour scans byte-wise; the MSVCRT/CE flavours scan
  word-at-a-time (``traits.string_word_reads``), which faults on valid
  strings whose terminator sits flush against an unmapped page (the
  ``STR_EDGE`` test value) -- the mechanistic reason the paper measured
  *higher* Windows Abort rates in this group;
* ``strncpy`` zero-fills the destination out to ``n`` (ISO semantics),
  which is what lets exceptional sizes trample past small buffers; on
  Windows 98/98 SE the personality routes those faults into the shared
  arena (the paper's ``*strncpy`` catastrophic entry), as does CE for
  the UNICODE twin ``_tcsncpy``.
"""

from __future__ import annotations

from repro.libc import errno_codes as E

_U32 = 0xFFFF_FFFF


class StringMixin:
    """string.h / stdlib.h-conversion implementations."""

    # ------------------------------------------------------------------
    # Copy / concatenate
    # ------------------------------------------------------------------

    def strcpy(self, dest: int, src: int) -> int:
        data = self._scan_str("strcpy", src)
        self._write_span("strcpy", dest, data + b"\x00")
        return dest

    def strncpy(self, dest: int, src: int, n: int) -> int:
        n &= _U32
        data = self._scan_str_n("strncpy", src, n)
        # ISO strncpy: if src is shorter than n, pad with NULs to n.
        self._write_span("strncpy", dest, data, pad_to=n)
        return dest

    def strcat(self, dest: int, src: int) -> int:
        existing = self._scan_str("strcat", dest)
        data = self._scan_str("strcat", src)
        self._write_span("strcat", dest + len(existing), data + b"\x00")
        return dest

    def strncat(self, dest: int, src: int, n: int) -> int:
        n &= _U32
        existing = self._scan_str("strncat", dest)
        data = self._scan_str_n("strncat", src, n)
        self._write_span("strncat", dest + len(existing), data + b"\x00")
        return dest

    # ------------------------------------------------------------------
    # Compare / search
    # ------------------------------------------------------------------

    def strcmp(self, a: int, b: int) -> int:
        left = self._scan_str("strcmp", a)
        right = self._scan_str("strcmp", b)
        return (left > right) - (left < right)

    def strncmp(self, a: int, b: int, n: int) -> int:
        n &= _U32
        left = self._scan_str_n("strncmp", a, n)
        right = self._scan_str_n("strncmp", b, n)
        return (left > right) - (left < right)

    def strchr(self, s: int, c: int) -> int:
        data = self._scan_str("strchr", s)
        target = c & 0xFF
        if target == 0:
            return s + len(data)
        index = data.find(bytes([target]))
        return s + index if index >= 0 else 0

    def strrchr(self, s: int, c: int) -> int:
        data = self._scan_str("strrchr", s)
        target = c & 0xFF
        if target == 0:
            return s + len(data)
        index = data.rfind(bytes([target]))
        return s + index if index >= 0 else 0

    def strstr(self, haystack: int, needle: int) -> int:
        hay = self._scan_str("strstr", haystack)
        pin = self._scan_str("strstr", needle)
        if not pin:
            return haystack
        index = hay.find(pin)
        return haystack + index if index >= 0 else 0

    def strlen(self, s: int) -> int:
        return len(self._scan_str("strlen", s))

    def strspn(self, s: int, accept: int) -> int:
        data = self._scan_str("strspn", s)
        allowed = set(self._scan_str("strspn", accept))
        count = 0
        for byte in data:
            if byte not in allowed:
                break
            count += 1
        return count

    def strcspn(self, s: int, reject: int) -> int:
        data = self._scan_str("strcspn", s)
        banned = set(self._scan_str("strcspn", reject))
        count = 0
        for byte in data:
            if byte in banned:
                break
            count += 1
        return count

    def strpbrk(self, s: int, accept: int) -> int:
        data = self._scan_str("strpbrk", s)
        wanted = set(self._scan_str("strpbrk", accept))
        for index, byte in enumerate(data):
            if byte in wanted:
                return s + index
        return 0

    def strtok(self, s: int, delim: int) -> int:
        """Stateful tokeniser; ``s == NULL`` continues the saved scan.
        With no saved scan every real CRT returns NULL here."""
        if s == 0:
            s = self._strtok_state
            if s == 0:
                return 0
        seps = set(self._scan_str("strtok", delim))
        data = self._scan_str("strtok", s)
        start = 0
        while start < len(data) and data[start] in seps:
            start += 1
        if start == len(data):
            self._strtok_state = 0
            return 0
        end = start
        while end < len(data) and data[end] not in seps:
            end += 1
        if end < len(data):
            # Terminate the token in place, as strtok really does.
            self._write_span("strtok", s + end, b"\x00")
            self._strtok_state = s + end + 1
        else:
            self._strtok_state = 0
        return s + start

    # ------------------------------------------------------------------
    # Numeric conversions
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_int(data: bytes, base: int) -> tuple[int, int]:
        """Parse an integer prefix; returns (value, chars consumed)."""
        text = data.decode("latin-1")
        index = 0
        while index < len(text) and text[index] in " \t\n\r\v\f":
            index += 1
        start = index
        if index < len(text) and text[index] in "+-":
            index += 1
        effective = base or 10
        digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:effective]
        if base in (0, 16) and text[index : index + 2].lower() == "0x":
            index += 2
            digits = "0123456789abcdef"
            effective = 16
        end = index
        while end < len(text) and text[end].lower() in digits:
            end += 1
        if end == index:
            return 0, 0
        body = text[start:end]
        try:
            value = int(body, effective)
        except ValueError:
            return 0, 0
        return value, end

    def atoi(self, s: int) -> int:
        value, _ = self._parse_int(self._scan_str("atoi", s), 10)
        return value

    def atol(self, s: int) -> int:
        value, _ = self._parse_int(self._scan_str("atol", s), 10)
        return value

    def atof(self, s: int) -> float:
        data = self._scan_str("atof", s).decode("latin-1")
        import re

        match = re.match(r"\s*[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?", data)
        return float(match.group(0)) if match else 0.0

    def strtol(self, s: int, endptr: int, base: int) -> int:
        if base != 0 and not 2 <= base <= 36:
            self._set_errno(E.EINVAL)
            return 0
        data = self._scan_str("strtol", s)
        value, consumed = self._parse_int(data, base)
        if endptr != 0:
            self._write_span("strtol", endptr, (s + consumed).to_bytes(4, "little"))
        if not -0x8000_0000 <= value <= 0x7FFF_FFFF:
            self._set_errno(E.ERANGE)
            value = 0x7FFF_FFFF if value > 0 else -0x8000_0000
        return value

    def strtod(self, s: int, endptr: int) -> float:
        data = self._scan_str("strtod", s).decode("latin-1")
        import re

        match = re.match(r"\s*[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?", data)
        consumed = match.end() if match else 0
        if endptr != 0:
            self._write_span("strtod", endptr, (s + consumed).to_bytes(4, "little"))
        return float(match.group(0)) if match else 0.0

    # ------------------------------------------------------------------
    # Wide-character twins (Windows CE UNICODE builds)
    # ------------------------------------------------------------------

    def _scan_wstr_n(self, func: str, address: int, n_units: int) -> bytes:
        out = bytearray()
        cursor = address
        while len(out) < 2 * n_units:
            unit = self.mem.read(cursor, 2)
            if unit == b"\x00\x00":
                break
            out += unit
            cursor += 2
        return bytes(out[: 2 * n_units])

    def wcscpy(self, dest: int, src: int) -> int:
        data = self._scan_wstr("wcscpy", src)
        self._write_span("wcscpy", dest, data + b"\x00\x00")
        return dest

    def _tcsncpy(self, dest: int, src: int, n: int) -> int:
        """UNICODE strncpy: zero-fills to ``n`` UTF-16 units.  On CE the
        personality routes destination faults into shared system memory
        (the paper's ``(UNICODE) *_tcsncpy`` catastrophic entry)."""
        n &= _U32
        data = self._scan_wstr_n("_tcsncpy", src, n)
        self._write_span("_tcsncpy", dest, data, pad_to=min(2 * n, _U32))
        return dest

    def wcscat(self, dest: int, src: int) -> int:
        existing = self._scan_wstr("wcscat", dest)
        data = self._scan_wstr("wcscat", src)
        self._write_span("wcscat", dest + len(existing), data + b"\x00\x00")
        return dest

    def wcsncat(self, dest: int, src: int, n: int) -> int:
        n &= _U32
        existing = self._scan_wstr("wcsncat", dest)
        data = self._scan_wstr_n("wcsncat", src, n)
        self._write_span("wcsncat", dest + len(existing), data + b"\x00\x00")
        return dest

    def wcscmp(self, a: int, b: int) -> int:
        left = self._scan_wstr("wcscmp", a)
        right = self._scan_wstr("wcscmp", b)
        return (left > right) - (left < right)

    def wcsncmp(self, a: int, b: int, n: int) -> int:
        n &= _U32
        left = self._scan_wstr_n("wcsncmp", a, n)
        right = self._scan_wstr_n("wcsncmp", b, n)
        return (left > right) - (left < right)

    def _wfind(self, func: str, s: int, c: int, last: bool) -> int:
        data = self._scan_wstr(func, s)
        needle = (c & 0xFFFF).to_bytes(2, "little")
        units = [data[i : i + 2] for i in range(0, len(data), 2)]
        indices = [i for i, unit in enumerate(units) if unit == needle]
        if not indices:
            return s + len(data) if c == 0 else 0
        return s + 2 * (indices[-1] if last else indices[0])

    def wcschr(self, s: int, c: int) -> int:
        return self._wfind("wcschr", s, c, last=False)

    def wcsrchr(self, s: int, c: int) -> int:
        return self._wfind("wcsrchr", s, c, last=True)

    def wcsstr(self, haystack: int, needle: int) -> int:
        hay = self._scan_wstr("wcsstr", haystack)
        pin = self._scan_wstr("wcsstr", needle)
        if not pin:
            return haystack
        index = hay.find(pin)
        # Align to a unit boundary.
        while index >= 0 and index % 2:
            index = hay.find(pin, index + 1)
        return haystack + index if index >= 0 else 0

    def wcslen(self, s: int) -> int:
        return len(self._scan_wstr("wcslen", s)) // 2

    def _wclasses(self, func: str, s: int, other: int) -> tuple[list, set]:
        data = self._scan_wstr(func, s)
        units = [data[i : i + 2] for i in range(0, len(data), 2)]
        other_data = self._scan_wstr(func, other)
        other_units = {
            other_data[i : i + 2] for i in range(0, len(other_data), 2)
        }
        return units, other_units

    def wcsspn(self, s: int, accept: int) -> int:
        units, allowed = self._wclasses("wcsspn", s, accept)
        count = 0
        for unit in units:
            if unit not in allowed:
                break
            count += 1
        return count

    def wcscspn(self, s: int, reject: int) -> int:
        units, banned = self._wclasses("wcscspn", s, reject)
        count = 0
        for unit in units:
            if unit in banned:
                break
            count += 1
        return count

    def wcspbrk(self, s: int, accept: int) -> int:
        units, wanted = self._wclasses("wcspbrk", s, accept)
        for index, unit in enumerate(units):
            if unit in wanted:
                return s + 2 * index
        return 0

    def wcstok(self, s: int, delim: int) -> int:
        if s == 0:
            s = self._strtok_state
            if s == 0:
                return 0
        units, seps = self._wclasses("wcstok", s, delim)
        start = 0
        while start < len(units) and units[start] in seps:
            start += 1
        if start == len(units):
            self._strtok_state = 0
            return 0
        end = start
        while end < len(units) and units[end] not in seps:
            end += 1
        if end < len(units):
            self._write_span("wcstok", s + 2 * end, b"\x00\x00")
            self._strtok_state = s + 2 * (end + 1)
        else:
            self._strtok_state = 0
        return s + 2 * start
