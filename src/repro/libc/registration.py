"""MuT registration for the 94 shared C library functions.

"Of these calls, 94 were C library functions that were tested with
identical test cases in both APIs."  Group sizes follow the paper where
it pins them down (10 "C file I/O management" functions and 14 "C stream
I/O" functions -- the groups whose Windows CE catastrophic counts the
paper reports as 6/10 and 11/14).

Windows CE runs a subset: the whole "C time" group plus remove/rename
and gets/puts are absent (82 of 94 tested), and 26 functions gain
UNICODE twins (the paper's "(108)" parenthetical), of which nine crash
-- giving the paper's "18 functions (27 counting ASCII and UNICODE
separately)".
"""

from __future__ import annotations

from repro.core.mut import MuTRegistry

#: Functions Windows CE's C runtime does not provide.
CE_MISSING_C_FUNCTIONS = frozenset(
    {
        "time", "localtime", "gmtime", "mktime",
        "asctime", "ctime", "strftime", "difftime",
        "remove", "rename", "gets", "puts",
    }
)

GROUP_CHAR = "C char"
GROUP_STRING = "C string"
GROUP_MEMORY = "C memory management"
GROUP_FILE_IO = "C file I/O management"
GROUP_STREAM_IO = "C stream I/O"
GROUP_MATH = "C math"
GROUP_TIME = "C time"

#: (name, group, parameter types) for the 94 ASCII C functions.
C_FUNCTIONS: list[tuple[str, str, list[str]]] = [
    # -- C char (13) ---------------------------------------------------
    ("isalnum", GROUP_CHAR, ["char_int"]),
    ("isalpha", GROUP_CHAR, ["char_int"]),
    ("iscntrl", GROUP_CHAR, ["char_int"]),
    ("isdigit", GROUP_CHAR, ["char_int"]),
    ("isgraph", GROUP_CHAR, ["char_int"]),
    ("islower", GROUP_CHAR, ["char_int"]),
    ("isprint", GROUP_CHAR, ["char_int"]),
    ("ispunct", GROUP_CHAR, ["char_int"]),
    ("isspace", GROUP_CHAR, ["char_int"]),
    ("isupper", GROUP_CHAR, ["char_int"]),
    ("isxdigit", GROUP_CHAR, ["char_int"]),
    ("tolower", GROUP_CHAR, ["char_int"]),
    ("toupper", GROUP_CHAR, ["char_int"]),
    # -- C string (18) ---------------------------------------------------
    ("strcpy", GROUP_STRING, ["buffer", "cstring"]),
    ("strncpy", GROUP_STRING, ["buffer", "cstring", "size"]),
    ("strcat", GROUP_STRING, ["buffer", "cstring"]),
    ("strncat", GROUP_STRING, ["buffer", "cstring", "size"]),
    ("strcmp", GROUP_STRING, ["cstring", "cstring"]),
    ("strncmp", GROUP_STRING, ["cstring", "cstring", "size"]),
    ("strchr", GROUP_STRING, ["cstring", "char_int"]),
    ("strrchr", GROUP_STRING, ["cstring", "char_int"]),
    ("strstr", GROUP_STRING, ["cstring", "cstring"]),
    ("strlen", GROUP_STRING, ["cstring"]),
    ("strspn", GROUP_STRING, ["cstring", "cstring"]),
    ("strcspn", GROUP_STRING, ["cstring", "cstring"]),
    ("strpbrk", GROUP_STRING, ["cstring", "cstring"]),
    ("strtok", GROUP_STRING, ["cstring", "cstring"]),
    ("atoi", GROUP_STRING, ["cstring"]),
    ("atof", GROUP_STRING, ["cstring"]),
    ("strtol", GROUP_STRING, ["cstring", "buffer", "int_val"]),
    ("strtod", GROUP_STRING, ["cstring", "buffer"]),
    # -- C memory management (9) -----------------------------------------
    ("malloc", GROUP_MEMORY, ["size"]),
    ("calloc", GROUP_MEMORY, ["size", "size"]),
    ("realloc", GROUP_MEMORY, ["buffer", "size"]),
    ("free", GROUP_MEMORY, ["buffer"]),
    ("memcpy", GROUP_MEMORY, ["buffer", "buffer", "size"]),
    ("memmove", GROUP_MEMORY, ["buffer", "buffer", "size"]),
    ("memset", GROUP_MEMORY, ["buffer", "char_int", "size"]),
    ("memcmp", GROUP_MEMORY, ["buffer", "buffer", "size"]),
    ("memchr", GROUP_MEMORY, ["buffer", "char_int", "size"]),
    # -- C file I/O management (10) ----------------------------------------
    ("fopen", GROUP_FILE_IO, ["filename", "fopen_mode"]),
    ("freopen", GROUP_FILE_IO, ["filename", "fopen_mode", "fileptr"]),
    ("fclose", GROUP_FILE_IO, ["fileptr"]),
    ("fflush", GROUP_FILE_IO, ["fileptr"]),
    ("fseek", GROUP_FILE_IO, ["fileptr", "long_offset", "seek_whence"]),
    ("ftell", GROUP_FILE_IO, ["fileptr"]),
    ("rewind", GROUP_FILE_IO, ["fileptr"]),
    ("clearerr", GROUP_FILE_IO, ["fileptr"]),
    ("remove", GROUP_FILE_IO, ["filename"]),
    ("rename", GROUP_FILE_IO, ["filename", "filename"]),
    # -- C stream I/O (14) --------------------------------------------------
    ("fread", GROUP_STREAM_IO, ["buffer", "size", "size", "fileptr"]),
    ("fwrite", GROUP_STREAM_IO, ["buffer", "size", "size", "fileptr"]),
    ("fprintf", GROUP_STREAM_IO, ["fileptr", "format_string", "int_val"]),
    ("fscanf", GROUP_STREAM_IO, ["fileptr", "format_string", "buffer"]),
    ("fgets", GROUP_STREAM_IO, ["buffer", "int_val", "fileptr"]),
    ("fputs", GROUP_STREAM_IO, ["cstring", "fileptr"]),
    ("fgetc", GROUP_STREAM_IO, ["fileptr"]),
    ("fputc", GROUP_STREAM_IO, ["char_int", "fileptr"]),
    ("getc", GROUP_STREAM_IO, ["fileptr"]),
    ("putc", GROUP_STREAM_IO, ["char_int", "fileptr"]),
    ("ungetc", GROUP_STREAM_IO, ["char_int", "fileptr"]),
    ("gets", GROUP_STREAM_IO, ["buffer"]),
    ("puts", GROUP_STREAM_IO, ["cstring"]),
    ("sprintf", GROUP_STREAM_IO, ["buffer", "format_string", "int_val"]),
    # -- C math (22) -----------------------------------------------------------
    ("acos", GROUP_MATH, ["double_val"]),
    ("asin", GROUP_MATH, ["double_val"]),
    ("atan", GROUP_MATH, ["double_val"]),
    ("atan2", GROUP_MATH, ["double_val", "double_val"]),
    ("ceil", GROUP_MATH, ["double_val"]),
    ("cos", GROUP_MATH, ["double_val"]),
    ("cosh", GROUP_MATH, ["double_val"]),
    ("exp", GROUP_MATH, ["double_val"]),
    ("fabs", GROUP_MATH, ["double_val"]),
    ("floor", GROUP_MATH, ["double_val"]),
    ("fmod", GROUP_MATH, ["double_val", "double_val"]),
    ("log", GROUP_MATH, ["double_val"]),
    ("log10", GROUP_MATH, ["double_val"]),
    ("pow", GROUP_MATH, ["double_val", "double_val"]),
    ("sin", GROUP_MATH, ["double_val"]),
    ("sinh", GROUP_MATH, ["double_val"]),
    ("sqrt", GROUP_MATH, ["double_val"]),
    ("tan", GROUP_MATH, ["double_val"]),
    ("tanh", GROUP_MATH, ["double_val"]),
    ("ldexp", GROUP_MATH, ["double_val", "int_val"]),
    ("abs", GROUP_MATH, ["int_val"]),
    ("labs", GROUP_MATH, ["int_val"]),
    # -- C time (8) ---------------------------------------------------------------
    ("time", GROUP_TIME, ["time_t_ptr"]),
    ("localtime", GROUP_TIME, ["time_t_ptr"]),
    ("gmtime", GROUP_TIME, ["time_t_ptr"]),
    ("mktime", GROUP_TIME, ["tm_ptr"]),
    ("asctime", GROUP_TIME, ["tm_ptr"]),
    ("ctime", GROUP_TIME, ["time_t_ptr"]),
    ("strftime", GROUP_TIME, ["buffer", "size", "format_string", "tm_ptr"]),
    ("difftime", GROUP_TIME, ["time_t_val", "time_t_val"]),
]

#: (name, group, parameter types) for the 26 Windows CE UNICODE twins.
CE_UNICODE_TWINS: list[tuple[str, str, list[str]]] = [
    # 14 wide string functions
    ("wcscpy", GROUP_STRING, ["buffer", "wstring"]),
    ("_tcsncpy", GROUP_STRING, ["buffer", "wstring", "size"]),
    ("wcscat", GROUP_STRING, ["buffer", "wstring"]),
    ("wcsncat", GROUP_STRING, ["buffer", "wstring", "size"]),
    ("wcscmp", GROUP_STRING, ["wstring", "wstring"]),
    ("wcsncmp", GROUP_STRING, ["wstring", "wstring", "size"]),
    ("wcschr", GROUP_STRING, ["wstring", "char_int"]),
    ("wcsrchr", GROUP_STRING, ["wstring", "char_int"]),
    ("wcsstr", GROUP_STRING, ["wstring", "wstring"]),
    ("wcslen", GROUP_STRING, ["wstring"]),
    ("wcsspn", GROUP_STRING, ["wstring", "wstring"]),
    ("wcscspn", GROUP_STRING, ["wstring", "wstring"]),
    ("wcspbrk", GROUP_STRING, ["wstring", "wstring"]),
    ("wcstok", GROUP_STRING, ["wstring", "wstring"]),
    # 2 wide stdio-management functions
    ("_wfopen", GROUP_FILE_IO, ["wstring", "wstring"]),
    ("_wfreopen", GROUP_FILE_IO, ["wstring", "wstring", "fileptr"]),
    # 7 wide stream functions
    ("wfread", GROUP_STREAM_IO, ["buffer", "size", "size", "fileptr"]),
    ("fgetwc", GROUP_STREAM_IO, ["fileptr"]),
    ("fgetws", GROUP_STREAM_IO, ["buffer", "int_val", "fileptr"]),
    ("fwprintf", GROUP_STREAM_IO, ["fileptr", "wstring", "int_val"]),
    ("fputwc", GROUP_STREAM_IO, ["char_int", "fileptr"]),
    ("fputws", GROUP_STREAM_IO, ["wstring", "fileptr"]),
    ("fwscanf", GROUP_STREAM_IO, ["fileptr", "wstring", "buffer"]),
    # 3 wide character-class functions
    ("towlower", GROUP_CHAR, ["char_int"]),
    ("towupper", GROUP_CHAR, ["char_int"]),
    ("iswalpha", GROUP_CHAR, ["char_int"]),
]


#: UNICODE twin -> the ASCII function it shadows on Windows CE.  "Since
#: Windows CE uses the UNICODE character set as a default, we only
#: report the failure rates for the UNICODE versions of these C
#: functions" (paper section 4); reporting therefore prefers the twin
#: and drops the ASCII result for these pairs.
UNICODE_TWIN_OF: dict[str, str] = {
    "wcscpy": "strcpy",
    "_tcsncpy": "strncpy",
    "wcscat": "strcat",
    "wcsncat": "strncat",
    "wcscmp": "strcmp",
    "wcsncmp": "strncmp",
    "wcschr": "strchr",
    "wcsrchr": "strrchr",
    "wcsstr": "strstr",
    "wcslen": "strlen",
    "wcsspn": "strspn",
    "wcscspn": "strcspn",
    "wcspbrk": "strpbrk",
    "wcstok": "strtok",
    "_wfopen": "fopen",
    "_wfreopen": "freopen",
    "wfread": "fread",
    "fgetwc": "fgetc",
    "fgetws": "fgets",
    "fwprintf": "fprintf",
    "fputwc": "fputc",
    "fputws": "fputs",
    "fwscanf": "fscanf",
    "towlower": "tolower",
    "towupper": "toupper",
    "iswalpha": "isalpha",
}


def register(registry: MuTRegistry) -> None:
    """Register all C library MuTs (94 ASCII + 26 CE UNICODE twins)."""
    for name, group, params in C_FUNCTIONS:
        exclude = (
            frozenset({"wince"}) if name in CE_MISSING_C_FUNCTIONS else frozenset()
        )
        registry.add(
            name, "libc", group, params, exclude_platforms=exclude
        )
    for name, group, params in CE_UNICODE_TWINS:
        registry.add(
            name,
            "libc",
            group,
            params,
            platforms=frozenset({"wince"}),
            charset="unicode",
        )
