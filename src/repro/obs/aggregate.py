"""Fold a telemetry event stream into an operational snapshot.

:class:`MetricsAggregator` is itself a :class:`~repro.obs.recorder.Recorder`,
so it can consume events live (tee'd next to a JSONL file) or replay a
file after the fact (``python -m repro stats events.jsonl``).  The
snapshot answers the operational questions the paper's >2-million-case
campaign raises: per-variant and per-group case throughput, CRASH-scale
outcome counters, worker restart/quarantine totals, retry and chaos
pressure on the service layer, and wall-clock per phase.

All wall-clock arithmetic here uses the ``t`` stamps recorders put on
records -- the aggregator never reads a clock of its own.
"""

from __future__ import annotations

import json

from repro.core.crash_scale import CaseCode
from repro.obs.recorder import Recorder

#: Outcome columns in report order (CRASH severity order, then the
#: bookkeeping codes).
_CODE_COLUMNS = (
    "CATASTROPHIC",
    "RESTART",
    "ABORT",
    "PASS_ERROR",
    "PASS_NO_ERROR",
    "SETUP_SKIP",
    "NOT_RUN",
    "FAULT_ATOMICITY",
)

_DEATH_KINDS = ("crashed", "hung", "killed")


def _blank_variant() -> dict:
    return {
        "muts": 0,
        "cases": 0,
        "case_events": 0,
        "outcomes": {},
        "catastrophic": 0,
        "interference": 0,
        "quarantined": 0,
        "sim_ticks": 0,
        "started_t": None,
        "finished_t": None,
        "spawns": 0,
        "deaths": 0,
        "restarts": 0,
    }


class MetricsAggregator(Recorder):
    """Streaming fold of event records into a stats snapshot."""

    def __init__(self) -> None:
        self.events = 0
        self.malformed = 0
        self._first_t: float | None = None
        self._last_t: float | None = None
        self._campaign: dict = {"variants": [], "cap": None, "cases": None}
        self._variants: dict[str, dict] = {}
        self._groups: dict[str, dict] = {}
        self._ops = {
            "worker_spawns": 0,
            "worker_deaths": 0,
            "worker_restarts": 0,
            "budget_exhausted": 0,
            "quarantines": 0,
            "checkpoints_written": 0,
            "rpc_retries": 0,
            "chaos_faults": 0,
            "protocol_errors": 0,
            "jobs_submitted": 0,
            "jobs_finished": 0,
            "jobs_failed": 0,
            "leases_granted": 0,
            "leases_expired": 0,
            "leases_reassigned": 0,
            "client_disconnects": 0,
            "drains": 0,
        }
        self._deaths_by_kind: dict[str, int] = {}
        self._chaos_by_fault: dict[str, int] = {}
        #: Sequence-campaign counters, keyed by variant.
        self._sequences: dict[str, dict] = {}
        self._faults_by_family: dict[str, int] = {}
        #: Restart-replay dedup for sequence lifecycle and fault events,
        #: mirroring ``_folded_muts``.
        self._folded_seqs: set[tuple] = set()
        # A worker restarted without a recent shard re-runs completed
        # MuTs and re-emits their (byte-identical) mut_finished events;
        # fold each MuT's histogram once so a healed run's CRASH
        # counters match the undisturbed run's.  Replay magnitude stays
        # visible via case_events / replayed_cases.
        self._folded_muts: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------

    def _variant(self, key: str) -> dict:
        return self._variants.setdefault(key, _blank_variant())

    def record(self, data: dict) -> None:
        self.events += 1
        t = data.get("t")
        if isinstance(t, (int, float)):
            if self._first_t is None:
                self._first_t = float(t)
            self._last_t = float(t)
        kind = data.get("kind")
        handler = getattr(self, f"_fold_{kind}", None)
        if handler is None:
            self.malformed += 1
            return
        handler(data, t if isinstance(t, (int, float)) else None)

    # -- campaign events ----------------------------------------------

    def _fold_campaign_started(self, data: dict, t) -> None:
        self._campaign["variants"] = list(data.get("variants", []))
        self._campaign["cap"] = data.get("cap")

    def _fold_campaign_finished(self, data: dict, t) -> None:
        self._campaign["cases"] = data.get("cases")

    def _fold_variant_started(self, data: dict, t) -> None:
        stats = self._variant(data["variant"])
        if stats["started_t"] is None and t is not None:
            stats["started_t"] = float(t)

    def _fold_variant_finished(self, data: dict, t) -> None:
        stats = self._variant(data["variant"])
        stats["cases"] = max(stats["cases"], int(data.get("cases", 0)))
        stats["sim_ticks"] = int(data.get("sim_ticks", 0))
        if t is not None:
            stats["finished_t"] = float(t)

    def _fold_case_executed(self, data: dict, t) -> None:
        self._variant(data["variant"])["case_events"] += 1

    def _fold_mut_finished(self, data: dict, t) -> None:
        key = (str(data.get("variant")), str(data.get("mut")))
        if key in self._folded_muts:
            return  # restart replay of an already-folded MuT
        self._folded_muts.add(key)
        stats = self._variant(data["variant"])
        stats["muts"] += 1
        outcomes = data.get("outcomes", {})
        for name in sorted(outcomes):
            stats["outcomes"][name] = stats["outcomes"].get(name, 0) + int(
                outcomes[name]
            )
        if data.get("catastrophic"):
            stats["catastrophic"] += 1
        if data.get("interference"):
            stats["interference"] += 1
        group = self._groups.setdefault(
            data.get("group", "?"), {"muts": 0, "cases": 0}
        )
        group["muts"] += 1
        group["cases"] += int(data.get("cases", 0))

    def _fold_mut_quarantined(self, data: dict, t) -> None:
        key = (str(data.get("variant")), str(data.get("mut")))
        if key in self._folded_muts:
            return
        self._folded_muts.add(key)
        self._variant(data["variant"])["quarantined"] += 1
        self._ops["quarantines"] += 1

    def _fold_checkpoint_written(self, data: dict, t) -> None:
        self._ops["checkpoints_written"] += 1

    # -- sequence-campaign events -------------------------------------

    def _sequence_stats(self, variant: str) -> dict:
        return self._sequences.setdefault(
            variant,
            {
                "sequences": 0,
                "crashed": 0,
                "origin": 0,
                "propagated": 0,
                "faults_injected": 0,
                "atomicity_violations": 0,
            },
        )

    def _fold_sequence_started(self, data: dict, t) -> None:
        self._variant(data["variant"])

    def _fold_sequence_finished(self, data: dict, t) -> None:
        key = (str(data.get("variant")), str(data.get("sequence")))
        if key in self._folded_seqs:
            return  # restart replay of an already-folded sequence
        self._folded_seqs.add(key)
        stats = self._sequence_stats(data["variant"])
        stats["sequences"] += 1
        if data.get("crash_step") is not None:
            stats["crashed"] += 1
            classification = str(data.get("classification") or "")
            if classification in ("origin", "propagated"):
                stats[classification] += 1

    def _fold_fault_injected(self, data: dict, t) -> None:
        key = (
            str(data.get("variant")),
            str(data.get("sequence")),
            int(data.get("step", -1)),
            "fault",
        )
        if key in self._folded_seqs:
            return
        self._folded_seqs.add(key)
        stats = self._sequence_stats(data["variant"])
        stats["faults_injected"] += 1
        family = str(data.get("family", "?"))
        self._faults_by_family[family] = (
            self._faults_by_family.get(family, 0) + 1
        )

    def _fold_atomicity_violation(self, data: dict, t) -> None:
        key = (
            str(data.get("variant")),
            str(data.get("sequence")),
            int(data.get("step", -1)),
            "atomicity",
        )
        if key in self._folded_seqs:
            return
        self._folded_seqs.add(key)
        self._sequence_stats(data["variant"])["atomicity_violations"] += 1

    # -- operational events -------------------------------------------

    def _fold_worker_spawned(self, data: dict, t) -> None:
        self._variant(data["variant"])["spawns"] += 1
        self._ops["worker_spawns"] += 1

    def _fold_worker_finished(self, data: dict, t) -> None:
        self._variant(data["variant"])

    def _fold_worker_died(self, data: dict, t) -> None:
        self._variant(data["variant"])["deaths"] += 1
        self._ops["worker_deaths"] += 1
        death = str(data.get("death", "?"))
        self._deaths_by_kind[death] = self._deaths_by_kind.get(death, 0) + 1

    def _fold_worker_restarted(self, data: dict, t) -> None:
        self._variant(data["variant"])["restarts"] += 1
        self._ops["worker_restarts"] += 1

    def _fold_budget_exhausted(self, data: dict, t) -> None:
        self._ops["budget_exhausted"] += 1

    def _fold_rpc_retry(self, data: dict, t) -> None:
        self._ops["rpc_retries"] += 1

    def _fold_chaos_fault(self, data: dict, t) -> None:
        self._ops["chaos_faults"] += 1
        fault = str(data.get("fault", "?"))
        self._chaos_by_fault[fault] = self._chaos_by_fault.get(fault, 0) + 1

    # -- campaign-service events --------------------------------------

    def _fold_protocol_error(self, data: dict, t) -> None:
        self._ops["protocol_errors"] += 1

    def _fold_job_submitted(self, data: dict, t) -> None:
        self._ops["jobs_submitted"] += 1

    def _fold_job_finished(self, data: dict, t) -> None:
        self._ops["jobs_finished"] += 1

    def _fold_job_failed(self, data: dict, t) -> None:
        self._ops["jobs_failed"] += 1

    def _fold_lease_granted(self, data: dict, t) -> None:
        self._ops["leases_granted"] += 1

    def _fold_lease_expired(self, data: dict, t) -> None:
        self._ops["leases_expired"] += 1

    def _fold_lease_reassigned(self, data: dict, t) -> None:
        self._ops["leases_reassigned"] += 1

    def _fold_client_disconnected(self, data: dict, t) -> None:
        self._ops["client_disconnects"] += 1

    def _fold_drain_started(self, data: dict, t) -> None:
        self._ops["drains"] += 1

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The folded metrics as plain JSON-compatible data."""
        wall_s = None
        if self._first_t is not None and self._last_t is not None:
            wall_s = round(self._last_t - self._first_t, 6)
        variants = {}
        for key in sorted(self._variants):
            stats = self._variants[key]
            # A variant that never finished reports the cases its MuT
            # histograms account for.
            recorded = stats["cases"] or sum(
                stats["outcomes"].get(name, 0) for name in sorted(stats["outcomes"])
            )
            duration = None
            if stats["started_t"] is not None and stats["finished_t"] is not None:
                duration = round(stats["finished_t"] - stats["started_t"], 6)
            variants[key] = {
                "muts": stats["muts"],
                "cases": recorded,
                "case_events": stats["case_events"],
                "replayed_cases": max(0, stats["case_events"] - recorded)
                if stats["case_events"]
                else 0,
                "outcomes": {
                    name: stats["outcomes"][name]
                    for name in sorted(stats["outcomes"])
                },
                "catastrophic_muts": stats["catastrophic"],
                "interference_muts": stats["interference"],
                "quarantined_muts": stats["quarantined"],
                "sim_ticks": stats["sim_ticks"],
                "wall_s": duration,
                "cases_per_s": (
                    round(recorded / duration, 1)
                    if duration and recorded
                    else None
                ),
                "workers": {
                    "spawned": stats["spawns"],
                    "died": stats["deaths"],
                    "restarted": stats["restarts"],
                },
            }
        return {
            "events": self.events,
            "malformed": self.malformed,
            "wall_s": wall_s,
            "campaign": dict(self._campaign),
            "variants": variants,
            "sequences": {
                key: dict(self._sequences[key])
                for key in sorted(self._sequences)
            },
            "faults_by_family": {
                k: self._faults_by_family[k]
                for k in sorted(self._faults_by_family)
            },
            "groups": {
                name: dict(self._groups[name]) for name in sorted(self._groups)
            },
            "ops": {
                **self._ops,
                "deaths_by_kind": {
                    k: self._deaths_by_kind[k]
                    for k in sorted(self._deaths_by_kind)
                },
                "chaos_by_fault": {
                    k: self._chaos_by_fault[k]
                    for k in sorted(self._chaos_by_fault)
                },
            },
        }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _fmt_duration(seconds) -> str:
    if seconds is None:
        return "-"
    if seconds >= 60:
        return f"{int(seconds) // 60}m{seconds % 60:04.1f}s"
    return f"{seconds:.2f}s"


def render_stats(snapshot: dict) -> str:
    """The human-readable ``repro stats`` report."""
    lines: list[str] = []
    campaign = snapshot.get("campaign", {})
    head = f"Campaign telemetry: {snapshot.get('events', 0)} events"
    if campaign.get("variants"):
        head += (
            f", {len(campaign['variants'])} variants"
            f" ({','.join(campaign['variants'])})"
        )
    if campaign.get("cap") is not None:
        head += f", cap {campaign['cap']}"
    lines.append(head)
    total_cases = campaign.get("cases")
    wall = snapshot.get("wall_s")
    summary = []
    if total_cases is not None:
        summary.append(f"{total_cases} cases recorded")
    if wall is not None:
        summary.append(f"wall clock {_fmt_duration(wall)}")
        if total_cases:
            summary.append(f"{total_cases / wall:.1f} cases/s overall" if wall else "")
    if snapshot.get("malformed"):
        summary.append(f"{snapshot['malformed']} malformed events skipped")
    if summary:
        lines.append("  " + "; ".join(s for s in summary if s))
    lines.append("")

    variants = snapshot.get("variants", {})
    if variants:
        header = (
            f"{'variant':<9} {'muts':>5} {'cases':>7} {'wall':>8} "
            f"{'cases/s':>8}  "
            + " ".join(f"{_short(c):>6}" for c in _CODE_COLUMNS)
            + f" {'quar':>5}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for key in sorted(variants):
            row = variants[key]
            outcomes = row.get("outcomes", {})
            lines.append(
                f"{key:<9} {row['muts']:>5} {row['cases']:>7} "
                f"{_fmt_duration(row.get('wall_s')):>8} "
                f"{row['cases_per_s'] if row.get('cases_per_s') else '-':>8}  "
                + " ".join(
                    f"{outcomes.get(c, 0):>6}" for c in _CODE_COLUMNS
                )
                + f" {row.get('quarantined_muts', 0):>5}"
            )
        lines.append("")
        replayed = sum(v.get("replayed_cases", 0) for v in variants.values())
        executed = sum(v.get("case_events", 0) for v in variants.values())
        if executed:
            lines.append(
                f"case executions: {executed} "
                f"({replayed} re-executed after worker restarts)"
            )

    sequences = snapshot.get("sequences", {})
    if sequences:
        header = (
            f"{'variant':<9} {'seqs':>6} {'crashed':>8} {'origin':>7} "
            f"{'propag':>7} {'faults':>7} {'atomic':>7}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for key in sorted(sequences):
            row = sequences[key]
            lines.append(
                f"{key:<9} {row['sequences']:>6} {row['crashed']:>8} "
                f"{row['origin']:>7} {row['propagated']:>7} "
                f"{row['faults_injected']:>7} "
                f"{row['atomicity_violations']:>7}"
            )
        families = snapshot.get("faults_by_family", {})
        if families:
            lines.append(
                "fault families: "
                + ", ".join(
                    f"{k}: {families[k]}" for k in sorted(families)
                )
            )
        lines.append("")

    ops = snapshot.get("ops", {})
    deaths = ops.get("deaths_by_kind", {})
    death_detail = (
        " (" + ", ".join(f"{k}: {deaths[k]}" for k in sorted(deaths)) + ")"
        if deaths
        else ""
    )
    lines.append(
        f"workers: {ops.get('worker_spawns', 0)} spawned, "
        f"{ops.get('worker_deaths', 0)} died{death_detail}, "
        f"{ops.get('worker_restarts', 0)} restarted, "
        f"{ops.get('budget_exhausted', 0)} budget-exhausted"
    )
    lines.append(
        f"harness: {ops.get('quarantines', 0)} MuTs quarantined, "
        f"{ops.get('checkpoints_written', 0)} checkpoints written"
    )
    chaos = ops.get("chaos_by_fault", {})
    chaos_detail = (
        " (" + ", ".join(f"{k}: {chaos[k]}" for k in sorted(chaos)) + ")"
        if chaos
        else ""
    )
    lines.append(
        f"service: {ops.get('rpc_retries', 0)} RPC retries, "
        f"{ops.get('chaos_faults', 0)} chaos faults{chaos_detail}"
    )
    service_v2 = (
        ops.get("jobs_submitted", 0)
        or ops.get("leases_granted", 0)
        or ops.get("client_disconnects", 0)
        or ops.get("protocol_errors", 0)
        or ops.get("drains", 0)
    )
    if service_v2:
        # Only multi-tenant service runs produce these events; plain
        # campaign telemetry keeps its historical report shape.
        lines.append(
            f"queue: {ops.get('jobs_submitted', 0)} jobs submitted, "
            f"{ops.get('jobs_finished', 0)} finished, "
            f"{ops.get('jobs_failed', 0)} failed; "
            f"leases: {ops.get('leases_granted', 0)} granted, "
            f"{ops.get('leases_expired', 0)} expired, "
            f"{ops.get('leases_reassigned', 0)} reassigned"
        )
        lines.append(
            f"clients: {ops.get('client_disconnects', 0)} disconnects, "
            f"{ops.get('protocol_errors', 0)} protocol errors, "
            f"{ops.get('drains', 0)} drains"
        )

    groups = snapshot.get("groups", {})
    if groups:
        lines.append("")
        lines.append(f"{'group':<24} {'muts':>5} {'cases':>8}")
        for name in sorted(groups):
            lines.append(
                f"{name:<24} {groups[name]['muts']:>5} "
                f"{groups[name]['cases']:>8}"
            )
    return "\n".join(lines)


def _short(code_name: str) -> str:
    return {
        "CATASTROPHIC": "catast",
        "RESTART": "restrt",
        "ABORT": "abort",
        "PASS_ERROR": "pa-err",
        "PASS_NO_ERROR": "pas-ok",
        "SETUP_SKIP": "skip",
        "NOT_RUN": "notrun",
        "FAULT_ATOMICITY": "atomic",
    }[code_name]


def render_stats_json(snapshot: dict) -> str:
    return json.dumps(snapshot, indent=2, sort_keys=True)


# Self-check: every column short name is defined for the CaseCode enum
# we report on (drift here would crash report rendering at runtime).
assert set(_CODE_COLUMNS) == {code.name for code in CaseCode}
