"""Recorders: where telemetry events go.

A recorder receives :class:`~repro.obs.events.Event` objects (or their
plain-dict form, when events cross a process boundary) and does
something durable with them.  The contract is deliberately tiny::

    recorder.emit(event)      # typed path (converts to a dict)
    recorder.record(data)     # plain-dict path (already converted)
    recorder.close()

**Clock policy.**  This module is the only place in the codebase allowed
to read a real wall clock into recorded data: recorders stamp a ``t``
field (seconds from an arbitrary monotonic origin, via
:func:`wall_clock`) onto each record at emission time, purely so a
stats reader can compute throughput and phase durations.  Event
*contents* never contain wall time -- simulated-time events carry sim
ticks instead -- which is what keeps serial and parallel event streams
byte-identical after stripping ``t``.  The determinism lint enforces
this boundary: ``time.perf_counter`` is a DET-WALLCLOCK violation
everywhere except ``obs/`` (see
:data:`repro.lint.manifests.WALLCLOCK_ALLOWANCES`).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, IO

from repro.obs.events import Event


def wall_clock() -> float:
    """The telemetry timestamp source: monotonic seconds, suitable only
    for durations.  Injectable everywhere it is used, so tests can feed
    a deterministic clock."""
    return time.perf_counter()


class Recorder:
    """Base recorder: routes typed events onto the plain-dict path."""

    def emit(self, event: Event) -> None:
        self.record(event.as_dict())

    def record(self, data: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MemoryRecorder(Recorder):
    """Collects records in a list (tests, in-process aggregation).

    With the default ``clock=None`` records are kept exactly as emitted
    (no ``t`` field) -- the form the equivalence tests compare.  Pass a
    clock to mimic :class:`JsonlRecorder`'s stamping.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.records: list[dict] = []
        self._clock = clock

    def record(self, data: dict) -> None:
        if self._clock is not None:
            data = {"t": self._clock(), **data}
        self.records.append(data)


class JsonlRecorder(Recorder):
    """Streams one JSON object per line to a file.

    Records are stamped with a ``t`` wall timestamp (see the module
    docstring for the clock policy), buffered, and written+flushed every
    ``flush_every`` records so an operator can tail the file while the
    campaign runs without paying a write and a syscall per test case.
    The hot path splices the timestamp onto a single reused-encoder pass
    over the record instead of copying the dict -- a campaign emits one
    event per test case, so per-record microseconds are the recorder's
    entire overhead budget.

    :param target: path to (over)write, or an open text stream.
    :param clock: injectable timestamp source (default
        :func:`wall_clock`).
    :param flush_every: write and flush after this many records.
    """

    def __init__(
        self,
        target: str | pathlib.Path | IO[str],
        clock: Callable[[], float] | None = None,
        flush_every: int = 1000,
    ) -> None:
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        self._clock = clock if clock is not None else wall_clock
        self._flush_every = max(1, flush_every)
        self._encode = json.JSONEncoder(separators=(",", ":")).encode
        self._lines: list[str] = []
        self.count = 0

    def record(self, data: dict) -> None:
        body = self._encode(data)
        if body == "{}":  # defensive: keep the splice valid JSON
            body = '{"t":%s}' % round(self._clock(), 6)
            line = body + "\n"
        else:
            line = f'{{"t":{round(self._clock(), 6)},{body[1:]}\n'
        self._lines.append(line)
        self.count += 1
        if len(self._lines) >= self._flush_every:
            self._drain()

    def _drain(self) -> None:
        if self._lines:
            self._fh.write("".join(self._lines))
            self._lines.clear()
            self._fh.flush()

    def close(self) -> None:
        self._drain()
        if self._owns:
            self._fh.close()


class TeeRecorder(Recorder):
    """Fans each record out to several recorders (e.g. a JSONL file plus
    a live :class:`~repro.obs.aggregate.MetricsAggregator`)."""

    def __init__(self, *recorders: Recorder) -> None:
        self._recorders = recorders

    def record(self, data: dict) -> None:
        for recorder in self._recorders:
            recorder.record(dict(data))

    def close(self) -> None:
        for recorder in self._recorders:
            recorder.close()


def read_events(path: str | pathlib.Path) -> tuple[list[dict], int]:
    """Load a JSONL event file.  Returns ``(records, malformed)`` --
    unparseable lines are counted, not fatal (a killed run may leave a
    torn final line)."""
    records: list[dict] = []
    malformed = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                malformed += 1
    return records, malformed
