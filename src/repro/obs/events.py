"""Typed telemetry events and the deterministic campaign stream.

Every observable moment of a campaign run is one event: a frozen
dataclass with a ``kind`` tag and an :meth:`~Event.as_dict` plain-data
form (the shape that crosses process boundaries and lands in JSONL
files).  Recorders (:mod:`repro.obs.recorder`) stamp a wall-clock ``t``
field onto that dict at emission time; nothing *inside* an event ever
reads a wall clock, so event contents are as reproducible as the
campaign itself.

Events split into two populations:

* **Campaign events** (:data:`DETERMINISTIC_KINDS`) describe the
  simulated measurement -- which case ran, with what outcome, at what
  simulated tick.  At a given seed and cap these are a pure function of
  the plan, so the per-variant stream is identical between serial,
  parallel, and supervised runs (after stripping wall timestamps and
  collapsing worker-restart replays; see :func:`variant_stream`).
* **Operational events** (everything else) describe the machinery:
  workers spawning, dying, restarting; checkpoints hitting disk; RPC
  retries and chaos faults.  These legitimately differ run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Event kinds whose content is a deterministic function of (seed, cap,
#: variant plan) -- the population the serial-vs-parallel equivalence
#: guarantee covers.
DETERMINISTIC_KINDS = frozenset(
    {
        "variant_started",
        "case_executed",
        "mut_finished",
        "mut_quarantined",
        "variant_finished",
    }
)

#: Schema version stamped into ``campaign_started`` events so a stats
#: reader can refuse documents it does not understand.
EVENTS_VERSION = 1


class Event:
    """Base class: one observable moment of a campaign run."""

    kind: str = ""

    def as_dict(self) -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class CampaignStarted(Event):
    """The run began: which variants, at what cap."""

    variants: tuple[str, ...]
    cap: int
    kind = "campaign_started"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "schema": EVENTS_VERSION,
            "variants": list(self.variants),
            "cap": self.cap,
        }


@dataclass(frozen=True)
class CampaignFinished(Event):
    """The run completed; ``cases`` is the merged result-set total."""

    cases: int
    kind = "campaign_finished"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "cases": self.cases}


@dataclass(frozen=True)
class VariantStarted(Event):
    """One variant's plan began (re-emitted by a restarted worker; the
    canonical stream collapses the repeats)."""

    variant: str
    planned_muts: int
    kind = "variant_started"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "planned_muts": self.planned_muts,
        }


@dataclass(frozen=True)
class VariantFinished(Event):
    """One variant's plan ran to the end.  ``cases`` counts the cases
    *recorded* for the variant (restart-safe: resumed rows included);
    ``sim_ticks`` is the simulated clock after the last MuT."""

    variant: str
    cases: int
    sim_ticks: int
    kind = "variant_finished"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "cases": self.cases,
            "sim_ticks": self.sim_ticks,
        }


@dataclass(frozen=True)
class CaseExecuted(Event):
    """One test case ran.  ``code`` is the compact
    :class:`~repro.core.crash_scale.CaseCode` integer; ``sim_ticks`` the
    simulated clock after the case (simulated time, never wall time)."""

    variant: str
    mut: str  #: ``api:name``
    case_index: int
    code: int
    exceptional: bool
    sim_ticks: int
    kind = "case_executed"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "mut": self.mut,
            "case": self.case_index,
            "code": self.code,
            "exceptional": self.exceptional,
            "sim_ticks": self.sim_ticks,
        }


@dataclass(frozen=True)
class MutFinished(Event):
    """Testing of one MuT completed (or was cut short by a Catastrophic
    crash): case count plus the full outcome histogram, keyed by
    :class:`~repro.core.crash_scale.CaseCode` name in sorted order."""

    variant: str
    mut: str
    group: str
    cases: int
    outcomes: dict  #: {code_name: count}, keys sorted
    catastrophic: bool
    interference: bool
    sim_ticks: int
    kind = "mut_finished"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "mut": self.mut,
            "group": self.group,
            "cases": self.cases,
            "outcomes": dict(self.outcomes),
            "catastrophic": self.catastrophic,
            "interference": self.interference,
            "sim_ticks": self.sim_ticks,
        }


@dataclass(frozen=True)
class MutQuarantined(Event):
    """A MuT was recorded as QUARANTINED on this variant (the
    supervisor's verdict, applied by the worker when its plan reaches
    the withdrawn MuT)."""

    variant: str
    mut: str
    reason: str
    kind = "mut_quarantined"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "mut": self.mut,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class CheckpointWritten(Event):
    """A checkpoint document hit disk.  ``scope`` is a variant key for
    per-variant (shard) saves or ``"campaign"`` for combined saves."""

    scope: str
    path: str
    muts_done: int
    kind = "checkpoint_written"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "scope": self.scope,
            "path": self.path,
            "muts_done": self.muts_done,
        }


@dataclass(frozen=True)
class WorkerSpawned(Event):
    """A variant worker process started (``attempt`` counts from 1; a
    supervised relaunch bumps it)."""

    variant: str
    pid: int
    attempt: int
    kind = "worker_spawned"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "pid": self.pid,
            "attempt": self.attempt,
        }


@dataclass(frozen=True)
class WorkerFinished(Event):
    """A worker delivered its shard and exited cleanly."""

    variant: str
    kind = "worker_finished"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "variant": self.variant}


@dataclass(frozen=True)
class WorkerDied(Event):
    """A worker died before finishing: ``death`` is ``"crashed"``
    (internal exception), ``"hung"`` (wall-clock watchdog), ``"killed"``
    (nonzero exit noticed by the reap scan)."""

    variant: str
    death: str
    why: str
    exitcode: int | None = None
    kind = "worker_died"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "death": self.death,
            "why": self.why[:500],
            "exitcode": self.exitcode,
        }


@dataclass(frozen=True)
class WorkerRestarted(Event):
    """The supervisor scheduled a relaunch from the variant's shard."""

    variant: str
    attempt: int
    backoff_s: float
    death: str
    kind = "worker_restarted"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "attempt": self.attempt,
            "backoff_s": self.backoff_s,
            "death": self.death,
        }


@dataclass(frozen=True)
class ShardReplayed(Event):
    """A sharded slice ran from a stale speculative base wear; its
    attempt was discarded and the slice re-queued from the true
    frontier.  Operational only -- replays never reach the merged
    results, so the deterministic stream is unaffected."""

    variant: str
    index: int
    why: str
    kind = "shard_replayed"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "index": self.index,
            "why": self.why[:500],
        }


@dataclass(frozen=True)
class BudgetExhausted(Event):
    """The supervisor gave up on a variant: restart budget spent."""

    variant: str
    restarts: int
    why: str
    kind = "budget_exhausted"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "restarts": self.restarts,
            "why": self.why[:500],
        }


@dataclass(frozen=True)
class RpcRetry(Event):
    """An RPC call retransmitted (attempt counts the retry, from 1)."""

    attempt: int
    xid: int
    kind = "rpc_retry"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "attempt": self.attempt, "xid": self.xid}


@dataclass(frozen=True)
class ChaosFault(Event):
    """The chaos schedule injected a fault into a transport."""

    fault: str  #: drop / dup / corrupt / truncate / delay / disconnect
    direction: str  #: send / recv
    kind = "chaos_fault"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "fault": self.fault,
            "direction": self.direction,
        }


@dataclass(frozen=True)
class ProtocolViolation(Event):
    """A transport stream violated the record-marking protocol and the
    connection was closed (``where`` is ``"client"`` or ``"server"``)."""

    where: str
    detail: str
    kind = "protocol_error"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "where": self.where,
            "detail": self.detail[:500],
        }


# ----------------------------------------------------------------------
# Campaign-service events (the multi-tenant queue/lease machinery)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JobSubmitted(Event):
    """A tenant's campaign spec entered the durable job queue."""

    job_id: str
    tenant: str
    variants: tuple[str, ...]
    cap: int
    kind = "job_submitted"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "variants": list(self.variants),
            "cap": self.cap,
        }


@dataclass(frozen=True)
class JobFinished(Event):
    """Every shard of a job completed and its results document was
    saved."""

    job_id: str
    cases: int
    kind = "job_finished"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "job_id": self.job_id, "cases": self.cases}


@dataclass(frozen=True)
class JobFailed(Event):
    """A job was abandoned: one of its shards exhausted its attempt
    budget."""

    job_id: str
    why: str
    kind = "job_failed"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "job_id": self.job_id, "why": self.why[:500]}


@dataclass(frozen=True)
class LeaseGranted(Event):
    """A shard was leased to a worker (``attempt`` counts from 1; a
    reassignment bumps it)."""

    job_id: str
    variant: str
    lease_id: str
    attempt: int
    kind = "lease_granted"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "variant": self.variant,
            "lease_id": self.lease_id,
            "attempt": self.attempt,
        }


@dataclass(frozen=True)
class LeaseExpired(Event):
    """A lease's holder went silent past its deadline; the shard is
    back on the queue."""

    job_id: str
    variant: str
    lease_id: str
    stale_s: float
    kind = "lease_expired"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "variant": self.variant,
            "lease_id": self.lease_id,
            "stale_s": self.stale_s,
        }


@dataclass(frozen=True)
class LeaseReassigned(Event):
    """A shard whose earlier lease died was granted to a fresh worker,
    resuming from the shard checkpoint."""

    job_id: str
    variant: str
    attempt: int
    kind = "lease_reassigned"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "variant": self.variant,
            "attempt": self.attempt,
        }


@dataclass(frozen=True)
class ClientDisconnected(Event):
    """A service connection ended (``reason``: ``"eof"``, ``"error"``,
    ``"protocol_error"``, or ``"drain"``).  Jobs are durable, so a
    disconnected client loses nothing -- it reconnects and resumes its
    result stream from its cursor."""

    reason: str
    kind = "client_disconnected"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "reason": self.reason}


@dataclass(frozen=True)
class DrainStarted(Event):
    """SIGTERM drain began: no new leases, in-flight shards checkpoint,
    the queue persists, then the service exits 0."""

    pending_jobs: int
    kind = "drain_started"

    def as_dict(self) -> dict:
        return {"kind": self.kind, "pending_jobs": self.pending_jobs}


# ----------------------------------------------------------------------
# The deterministic per-variant stream
# ----------------------------------------------------------------------


def strip_wall(record: dict) -> dict:
    """A copy of an event record without its wall timestamp -- the form
    the serial-vs-parallel equivalence guarantee is stated over."""
    return {k: v for k, v in record.items() if k != "t"}


def variant_stream(
    records: Iterable[dict], variant: str, plan: Iterable | None = None
) -> list[dict]:
    """The canonical deterministic event stream for one variant.

    Filters ``records`` to the :data:`DETERMINISTIC_KINDS` belonging to
    ``variant``, strips wall timestamps, and collapses worker-restart
    replays so a healed run canonicalises to the undisturbed serial
    stream:

    * repeated ``variant_started`` events (one per worker launch) keep
      only the first;
    * ``case_executed`` events are buffered per MuT and flushed only
      when that MuT's ``mut_finished`` arrives, so the partial case run
      of a killed attempt (re-executed from case 0 after restart) never
      appears twice -- a fresh ``case 0`` for a MuT discards the stale
      partial buffer;
    * a MuT whose block already flushed is closed: a restarted worker
      without a recent shard re-runs completed MuTs from scratch, and
      those replays (byte-identical by the determinism guarantee) are
      dropped rather than emitted twice.

    The result is exactly the serial emission order: ``variant_started``,
    then per MuT in plan order its cases followed by ``mut_finished``
    (or a bare ``mut_quarantined``), then ``variant_finished``.

    With ``plan`` (the variant's ordered MuT identities, as ``api:name``
    strings or ``(api, name)`` pairs) the canonicalisation also covers
    *intra-variant sharded* runs, whose slices interleave and finish out
    of plan order: flushed MuT blocks are re-emitted in plan order, and
    the per-slice ``variant_finished`` events collapse into one
    synthesised record (``cases`` summed across slices, ``sim_ticks``
    the maximum -- the simulated clock is monotone along the plan, so
    the maximum is the final slice's end clock, the serial value).
    MuTs absent from ``plan`` sort after it in arrival order.
    """
    out: list[dict] = []
    started: dict | None = None
    pending: dict[str, list[dict]] = {}
    done: set[str] = set()
    tail: list[dict] = []
    for raw in records:
        if raw.get("kind") not in DETERMINISTIC_KINDS:
            continue
        if raw.get("variant") != variant:
            continue
        record = strip_wall(raw)
        kind = record["kind"]
        if kind == "variant_started":
            if started is None:
                started = record
            continue
        if kind == "case_executed":
            if record["mut"] in done:
                continue  # replay of an already-flushed MuT
            cases = pending.setdefault(record["mut"], [])
            if record["case"] == 0:
                cases.clear()  # a restarted attempt replays from case 0
            cases.append(record)
        elif kind == "mut_finished":
            if record["mut"] in done:
                pending.pop(record["mut"], None)
                continue
            out.extend(pending.pop(record["mut"], []))
            out.append(record)
            done.add(record["mut"])
        elif kind == "mut_quarantined":
            if record["mut"] in done:
                continue
            pending.pop(record["mut"], None)
            out.append(record)
            done.add(record["mut"])
        else:  # variant_finished: only the surviving attempt emits one
            tail.append(record)
    prefix = [started] if started is not None else []
    if plan is not None:
        order = [
            mut if isinstance(mut, str) else f"{mut[0]}:{mut[1]}"
            for mut in plan
        ]
        blocks: dict[str, list[dict]] = {}
        for record in out:
            blocks.setdefault(record.get("mut"), []).append(record)
        ordered: list[dict] = []
        for mut in order:
            ordered.extend(blocks.pop(mut, []))
        for leftovers in blocks.values():  # pragma: no cover - off-plan MuT
            ordered.extend(leftovers)
        out = ordered
        if len(tail) > 1:
            tail = [
                {
                    "kind": "variant_finished",
                    "variant": variant,
                    "cases": sum(r.get("cases", 0) for r in tail),
                    "sim_ticks": max(r.get("sim_ticks", 0) for r in tail),
                }
            ]
    return prefix + out + tail
