"""Terminal progress rendering for multi-variant campaigns.

The original CLI progress display was a single ``\\r``-rewritten status
line, which garbles as soon as ``--jobs > 1`` interleaves updates from
several variants onto the same line.  :class:`ProgressRenderer` keeps
**one status line per variant**: on a TTY the block of lines is redrawn
in place with cursor-up / erase-line escapes; on anything else (a CI
log, a pipe) it degrades to one plain line per update so the output
stays grep-able instead of a soup of carriage returns.
"""

from __future__ import annotations

import sys
from typing import IO


class ProgressRenderer:
    """Render per-variant campaign progress to a stream.

    :param stream: output stream (default ``sys.stderr``).
    :param tty: force TTY (redraw-in-place) or non-TTY (line-per-update)
        mode; default asks the stream's ``isatty()``.
    :param width: clamp rendered lines to this many columns on a TTY so
        a redraw never wraps (wrapping would break the cursor-up math).
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        tty: bool | None = None,
        width: int = 100,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if tty is None:
            isatty = getattr(self._stream, "isatty", None)
            tty = bool(isatty()) if callable(isatty) else False
        self._tty = tty
        self._width = width
        self._order: list[str] = []
        self._lines: dict[str, str] = {}

    # ------------------------------------------------------------------

    def update(self, variant: str, mut: str, position: int, total: int) -> None:
        """The campaign :data:`~repro.core.campaign.ProgressFn` hook."""
        line = f"[{variant:8s}] {position + 1:3d}/{total} {mut}"
        if variant not in self._lines:
            self._order.append(variant)
            if self._tty:
                self._stream.write("\n")  # open a dedicated row
        self._lines[variant] = line
        if self._tty:
            self._redraw()
        else:
            self._stream.write(line + "\n")
            self._stream.flush()

    def _redraw(self) -> None:
        count = len(self._order)
        parts = [f"\x1b[{count}A"]  # to the top of the block
        for key in self._order:
            parts.append("\x1b[2K" + self._lines[key][: self._width] + "\n")
        self._stream.write("".join(parts))
        self._stream.flush()

    def close(self) -> None:
        """Erase the status block (TTY) so the summary that follows
        starts on a clean line; a no-op off-TTY."""
        count = len(self._order)
        if self._tty and count:
            self._stream.write(
                f"\x1b[{count}A" + "\x1b[2K\n" * count + f"\x1b[{count}A"
            )
            self._stream.flush()
        self._order = []
        self._lines = {}
