"""``python -m repro stats``: render a telemetry event file as a report.

Usage::

    python -m repro --events events.jsonl ...   # write telemetry
    python -m repro stats events.jsonl          # text report
    python -m repro stats events.jsonl --json   # machine-readable
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs.aggregate import MetricsAggregator, render_stats, render_stats_json
from repro.obs.recorder import read_events


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "Summarise a structured telemetry file written by "
            "`python -m repro --events PATH`: per-variant throughput and "
            "CRASH-scale outcome counters, worker restart/quarantine "
            "totals, and service-layer retry/chaos pressure."
        ),
    )
    parser.add_argument("events", metavar="EVENTS.JSONL", help="event file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregated snapshot as JSON instead of text",
    )
    args = parser.parse_args(argv)

    try:
        records, malformed = read_events(args.events)
    except OSError as exc:
        parser.error(f"{args.events}: {exc}")
    aggregator = MetricsAggregator()
    for record in records:
        aggregator.record(record)
    aggregator.malformed += malformed
    snapshot = aggregator.snapshot()
    try:
        if args.json:
            print(render_stats_json(snapshot))
        else:
            print(render_stats(snapshot))
        sys.stdout.flush()
    except BrokenPipeError:
        # Reader went away (`repro stats ... | head`): exit quietly with
        # the conventional SIGPIPE status.  Point stdout at devnull so
        # the interpreter's exit-time flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    if not records:
        sys.stderr.write(f"warning: {args.events} contains no events\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `repro stats`
    raise SystemExit(main())
