"""Structured run telemetry for campaign execution.

The operational story of a campaign -- throughput, worker restarts,
hangs, quarantines, checkpoint cadence -- is captured as typed events
(:mod:`repro.obs.events`) streamed to pluggable recorders
(:mod:`repro.obs.recorder`) and folded into metrics snapshots
(:mod:`repro.obs.aggregate`).  ``python -m repro --events PATH`` writes
the stream; ``python -m repro stats PATH`` renders it.

Wall-clock reads are confined to this package (recorders stamp a ``t``
field per record); event contents carry simulated ticks only, so the
deterministic per-variant stream is identical between serial and
parallel runs at the same seed -- see
:func:`repro.obs.events.variant_stream`.
"""

from repro.obs.aggregate import MetricsAggregator, render_stats
from repro.obs.events import (
    DETERMINISTIC_KINDS,
    EVENTS_VERSION,
    BudgetExhausted,
    CampaignFinished,
    CampaignStarted,
    CaseExecuted,
    ChaosFault,
    CheckpointWritten,
    Event,
    MutFinished,
    MutQuarantined,
    RpcRetry,
    VariantFinished,
    VariantStarted,
    WorkerDied,
    WorkerFinished,
    WorkerRestarted,
    WorkerSpawned,
    strip_wall,
    variant_stream,
)
from repro.obs.progress import ProgressRenderer
from repro.obs.recorder import (
    JsonlRecorder,
    MemoryRecorder,
    Recorder,
    TeeRecorder,
    read_events,
    wall_clock,
)

__all__ = [
    "BudgetExhausted",
    "CampaignFinished",
    "CampaignStarted",
    "CaseExecuted",
    "ChaosFault",
    "CheckpointWritten",
    "DETERMINISTIC_KINDS",
    "EVENTS_VERSION",
    "Event",
    "JsonlRecorder",
    "MemoryRecorder",
    "MetricsAggregator",
    "MutFinished",
    "MutQuarantined",
    "ProgressRenderer",
    "Recorder",
    "RpcRetry",
    "TeeRecorder",
    "VariantFinished",
    "VariantStarted",
    "WorkerDied",
    "WorkerFinished",
    "WorkerRestarted",
    "WorkerSpawned",
    "read_events",
    "render_stats",
    "strip_wall",
    "variant_stream",
    "wall_clock",
]
