"""Machine-readable exports of the paper's data series.

The text renderers in :mod:`repro.analysis.tables` mirror the paper's
layout; this module exposes the same numbers as plain data for plotting
or spreadsheet work:

* :func:`table1_rows` / :func:`table2_matrix` / :func:`figure2_series`
  return dictionaries and matrices;
* :func:`write_csv` dumps any of them as CSV.
"""

from __future__ import annotations

import csv
import io
import pathlib

from repro.analysis.groups import ALL_GROUPS, GROUP_DISPLAY
from repro.analysis.rates import summarize
from repro.analysis.silent import DESKTOP_KEYS, estimate_silent_rates
from repro.analysis.tables import VARIANT_ORDER
from repro.core.results import ResultSet


def _present(results: ResultSet) -> list[tuple[str, str]]:
    available = set(results.variants())
    return [(key, name) for key, name in VARIANT_ORDER if key in available]


def table1_rows(results: ResultSet) -> list[dict]:
    """Table 1 as one dict per OS variant."""
    rows = []
    for key, name in _present(results):
        summary = summarize(results, key, display_name=name)
        rows.append(
            {
                "variant": key,
                "name": name,
                "syscalls_tested": summary.syscalls_tested,
                "syscalls_catastrophic": summary.syscalls_catastrophic,
                "syscall_abort_rate": round(summary.syscall_abort_rate, 6),
                "syscall_restart_rate": round(summary.syscall_restart_rate, 6),
                "c_functions_tested": summary.c_functions_tested,
                "c_functions_catastrophic": summary.c_functions_catastrophic,
                "c_abort_rate": round(summary.c_abort_rate, 6),
                "c_restart_rate": round(summary.c_restart_rate, 6),
                "muts_tested": summary.muts_tested,
                "muts_catastrophic": summary.muts_catastrophic,
                "overall_abort_rate": round(summary.overall_abort_rate, 6),
                "overall_restart_rate": round(summary.overall_restart_rate, 6),
                "total_cases": summary.total_cases,
            }
        )
    return rows


def table2_matrix(results: ResultSet) -> tuple[list[str], list[str], list[list]]:
    """Table 2 / Figure 1 as (group labels, variant names, rate matrix).

    ``matrix[i][j]`` is group *i*'s abort+restart rate on variant *j*,
    or ``None`` where the variant has no functions in the group.
    """
    present = _present(results)
    summaries = {
        key: summarize(results, key, display_name=name) for key, name in present
    }
    groups = [GROUP_DISPLAY[g] for g in ALL_GROUPS]
    names = [name for _, name in present]
    matrix: list[list] = []
    for group in ALL_GROUPS:
        row = []
        for key, _ in present:
            rates = summaries[key].groups[group]
            if rates.muts == 0:
                row.append(None)
            else:
                row.append(round(rates.abort_rate + rates.restart_rate, 6))
        matrix.append(row)
    return groups, names, matrix


def figure2_series(results: ResultSet) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 2 as ``{variant: {group: {abort, restart, silent}}}`` for
    the desktop Windows variants."""
    present = [k for k in DESKTOP_KEYS if k in results.variants()]
    estimates = estimate_silent_rates(results, tuple(present))
    series: dict[str, dict[str, dict[str, float]]] = {}
    for key in present:
        summary = summarize(results, key)
        series[key] = {}
        for group in ALL_GROUPS:
            rates = summary.groups[group]
            if rates.muts == 0:
                continue
            series[key][GROUP_DISPLAY[group]] = {
                "abort": round(rates.abort_rate, 6),
                "restart": round(rates.restart_rate, 6),
                "silent": round(estimates[key].group_rate(group), 6),
            }
    return series


def table2_csv(results: ResultSet) -> str:
    """Table 2 as CSV text (groups x variants)."""
    groups, names, matrix = table2_matrix(results)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["group", *names])
    for label, row in zip(groups, matrix):
        writer.writerow(
            [label, *("" if cell is None else cell for cell in row)]
        )
    return buffer.getvalue()


def table1_csv(results: ResultSet) -> str:
    """Table 1 as CSV text."""
    rows = table1_rows(results)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(results: ResultSet, directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write table1.csv and table2.csv into ``directory``; returns the
    written paths."""
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in (
        ("table1.csv", table1_csv(results)),
        ("table2.csv", table2_csv(results)),
    ):
        path = target / name
        path.write_text(text, encoding="utf-8")
        written.append(path)
    return written
