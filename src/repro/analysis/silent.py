"""Silent-failure estimation by voting across Win32 implementations.

"If one presumes that the Win32 API is supposed to be identical in
exception handling as well as functionality across implementations, if
one system reports a pass with no error reported for one particular
test case and another system reports a pass with an error or a failure
for that identical test case, then we can declare the system that
reported no error as having a Silent failure." (paper, section 4)

The voting relies on the generator's determinism: every desktop variant
executes the *same* case sequence for a MuT, so per-case code arrays
line up index-by-index.  Windows CE is excluded (its API is similar but
not identical), as is Linux (different API entirely) -- both exactly as
in the paper.

Because this reproduction also knows the ground truth (each test value
is annotated ``exceptional``), :func:`estimate_silent_rates` can return
the ground-truth Silent rate alongside the voting estimate; the
validation suite checks that the estimator is a sane lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.groups import ALL_GROUPS
from repro.analysis.rates import _mean, select_results
from repro.core.crash_scale import CaseCode
from repro.core.results import ResultSet

#: The variants the paper votes across.
DESKTOP_KEYS: tuple[str, ...] = ("win95", "win98", "win98se", "winnt", "win2000")

_PASS_NO_ERROR = int(CaseCode.PASS_NO_ERROR)
_DISAGREEING = {
    int(CaseCode.PASS_ERROR),
    int(CaseCode.ABORT),
    int(CaseCode.RESTART),
    int(CaseCode.CATASTROPHIC),
}


@dataclass
class SilentEstimate:
    """Voting-estimated Silent failure rates for one variant."""

    variant: str
    #: per (api, mut_name) -> estimated silent rate
    per_mut: dict[tuple[str, str], float] = field(default_factory=dict)
    #: per (api, mut_name) -> ground-truth silent rate (same MuT set)
    per_mut_truth: dict[tuple[str, str], float] = field(default_factory=dict)
    #: groups of the voted MuTs, for aggregation
    mut_groups: dict[tuple[str, str], str] = field(default_factory=dict)

    def group_rate(self, group: str) -> float:
        return _mean(
            [
                rate
                for key, rate in self.per_mut.items()
                if self.mut_groups.get(key) == group
            ]
        )

    def group_rates(self) -> dict[str, float]:
        return {group: self.group_rate(group) for group in ALL_GROUPS}

    def overall_rate(self) -> float:
        return _mean(list(self.per_mut.values()))

    def overall_truth_rate(self) -> float:
        return _mean(list(self.per_mut_truth.values()))


def estimate_silent_rates(
    results: ResultSet, variants: tuple[str, ...] = DESKTOP_KEYS
) -> dict[str, SilentEstimate]:
    """Run the cross-variant voting estimator.

    Only MuTs present on *all* voted variants participate, and only case
    indices executed by all of them (a Catastrophic failure truncates a
    variant's case array, as in the paper).
    """
    present = [v for v in variants if v in results.variants()]
    if len(present) < 2:
        raise ValueError(
            f"voting needs at least two variants with results, got {present}"
        )
    estimates = {v: SilentEstimate(v) for v in present}

    # MuT keys common to every voted variant.
    keys_per_variant = [
        {(r.api, r.mut_name): r for r in select_results(results, v, "both")}
        for v in present
    ]
    common = set(keys_per_variant[0])
    for keyed in keys_per_variant[1:]:
        common &= set(keyed)

    for key in sorted(common):
        rows = [keyed[key] for keyed in keys_per_variant]
        comparable = min(len(r.codes) for r in rows)
        silent_counts = [0] * len(rows)
        executed_counts = [0] * len(rows)
        for index in range(comparable):
            codes = [r.codes[index] for r in rows]
            for position, code in enumerate(codes):
                if CaseCode(code).counts_as_executed:
                    executed_counts[position] += 1
            disagreement = any(code in _DISAGREEING for code in codes)
            if not disagreement:
                continue
            for position, code in enumerate(codes):
                if code == _PASS_NO_ERROR:
                    silent_counts[position] += 1
        for position, variant in enumerate(present):
            estimate = estimates[variant]
            executed = executed_counts[position]
            estimate.per_mut[key] = (
                silent_counts[position] / executed if executed else 0.0
            )
            estimate.per_mut_truth[key] = rows[position].silent_ground_truth_rate()
            estimate.mut_groups[key] = rows[position].group
    return estimates
