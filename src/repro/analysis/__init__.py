"""Comparison methodology and report generation.

* :mod:`repro.analysis.groups` -- the twelve functional groupings that
  make the Windows-vs-Linux comparison possible.
* :mod:`repro.analysis.rates` -- normalised failure-rate computation
  (per-MuT rates, uniformly weighted group means).
* :mod:`repro.analysis.silent` -- the Silent-failure voting estimator
  across identical test cases on the desktop Windows variants.
* :mod:`repro.analysis.hindering` -- the same voting idea extended to
  wrong-error-code (Hindering) failures, which the paper could only
  analyse manually.
* :mod:`repro.analysis.tables` -- renderers that regenerate the paper's
  Table 1, Table 2/Figure 1, Table 3 and Figure 2.
* :mod:`repro.analysis.compare` -- case-exact diffing of two campaigns
  (patch/regression verification).
* :mod:`repro.analysis.export` -- CSV / plain-data exports for plotting.
"""

from repro.analysis.compare import ComparisonReport, MuTDiff, compare_results
from repro.analysis.export import (
    figure2_series,
    table1_rows,
    table2_matrix,
    write_csv,
)
from repro.analysis.groups import ALL_GROUPS, C_GROUPS, SYSCALL_GROUPS
from repro.analysis.hindering import (
    estimate_hindering_rates,
    render_hindering,
)
from repro.analysis.rates import GroupRates, VariantSummary, summarize
from repro.analysis.silent import estimate_silent_rates
from repro.analysis.tables import (
    render_figure1,
    render_figure2,
    render_sequence_table,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "ALL_GROUPS",
    "C_GROUPS",
    "ComparisonReport",
    "MuTDiff",
    "compare_results",
    "GroupRates",
    "SYSCALL_GROUPS",
    "VariantSummary",
    "estimate_hindering_rates",
    "estimate_silent_rates",
    "figure2_series",
    "render_figure1",
    "render_hindering",
    "render_figure2",
    "render_sequence_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "summarize",
    "table1_rows",
    "table2_matrix",
    "write_csv",
]
