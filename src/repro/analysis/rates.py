"""Normalised failure-rate computation (the paper's comparison method).

Per-MuT rates are averaged with uniform weights; MuTs that suffered a
Catastrophic failure are excluded from the averages (the crash leaves
their case set incomplete) but counted separately -- exactly the
discipline of the paper's Table 1 and Table 2.

Windows CE counting: for the 26 C functions with ASCII and UNICODE
implementations, headline numbers use the UNICODE twin and drop the
ASCII result (the paper's choice); ``ce_counting="both"`` keeps both,
yielding the parenthesised counts of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.groups import ALL_GROUPS
from repro.core.results import MuTResult, ResultSet
from repro.libc.registration import UNICODE_TWIN_OF

_SYSCALL_APIS = {"win32", "posix"}


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def select_results(
    results: ResultSet, variant: str, ce_counting: str = "unicode"
) -> list[MuTResult]:
    """The variant's results under the chosen CE counting convention.

    :param ce_counting: ``"unicode"`` (headline: UNICODE twins replace
        their ASCII originals on CE) or ``"both"`` (count ASCII and
        UNICODE separately, Table 1's parenthesised numbers).
    """
    rows = results.for_variant(variant)
    if variant != "wince" or ce_counting == "both":
        return rows
    shadowed = set(UNICODE_TWIN_OF.values())
    return [
        r for r in rows if not (r.api == "libc" and r.mut_name in shadowed)
    ]


@dataclass
class GroupRates:
    """Failure rates for one functional group on one variant."""

    group: str
    variant: str
    muts: int
    catastrophic_muts: int
    abort_rate: float
    restart_rate: float
    silent_ground_truth_rate: float

    @property
    def has_catastrophic(self) -> bool:
        return self.catastrophic_muts > 0


@dataclass
class VariantSummary:
    """One OS variant's Table 1 row."""

    variant: str
    name: str
    syscalls_tested: int
    syscalls_catastrophic: int
    syscall_abort_rate: float
    syscall_restart_rate: float
    c_functions_tested: int
    c_functions_catastrophic: int
    c_abort_rate: float
    c_restart_rate: float
    total_cases: int
    groups: dict[str, GroupRates] = field(default_factory=dict)

    @property
    def muts_tested(self) -> int:
        return self.syscalls_tested + self.c_functions_tested

    @property
    def muts_catastrophic(self) -> int:
        return self.syscalls_catastrophic + self.c_functions_catastrophic

    @property
    def overall_abort_rate(self) -> float:
        """Uniform mean of the twelve group abort rates ("the total
        failure rates give each group's failure rate an even
        weighting")."""
        rates = [g.abort_rate for g in self.groups.values() if g.muts]
        return _mean(rates)

    @property
    def overall_restart_rate(self) -> float:
        rates = [g.restart_rate for g in self.groups.values() if g.muts]
        return _mean(rates)


def _rates_for(rows: list[MuTResult]) -> tuple[float, float, float, int]:
    """(abort, restart, silent-ground-truth, catastrophic count) with the
    paper's exclusion of catastrophic MuTs from rate averages."""
    catastrophic = sum(1 for r in rows if r.catastrophic)
    clean = [r for r in rows if not r.catastrophic]
    return (
        _mean([r.abort_rate for r in clean]),
        _mean([r.restart_rate for r in clean]),
        _mean([r.silent_ground_truth_rate() for r in clean]),
        catastrophic,
    )


def group_rates(
    results: ResultSet, variant: str, ce_counting: str = "unicode"
) -> dict[str, GroupRates]:
    """Per-group normalised rates for one variant."""
    rows = select_results(results, variant, ce_counting)
    out: dict[str, GroupRates] = {}
    for group in ALL_GROUPS:
        members = [r for r in rows if r.group == group]
        abort, restart, silent, catastrophic = _rates_for(members)
        out[group] = GroupRates(
            group=group,
            variant=variant,
            muts=len(members),
            catastrophic_muts=catastrophic,
            abort_rate=abort,
            restart_rate=restart,
            silent_ground_truth_rate=silent,
        )
    return out


def summarize(
    results: ResultSet,
    variant: str,
    display_name: str | None = None,
    ce_counting: str = "unicode",
) -> VariantSummary:
    """Build the Table 1 row for one variant."""
    rows = select_results(results, variant, ce_counting)
    syscalls = [r for r in rows if r.api in _SYSCALL_APIS]
    c_functions = [r for r in rows if r.api == "libc"]
    sys_abort, sys_restart, _, sys_cat = _rates_for(syscalls)
    c_abort, c_restart, _, c_cat = _rates_for(c_functions)
    return VariantSummary(
        variant=variant,
        name=display_name or variant,
        syscalls_tested=len(syscalls),
        syscalls_catastrophic=sys_cat,
        syscall_abort_rate=sys_abort,
        syscall_restart_rate=sys_restart,
        c_functions_tested=len(c_functions),
        c_functions_catastrophic=c_cat,
        c_abort_rate=c_abort,
        c_restart_rate=c_restart,
        total_cases=results.total_cases(variant),
        groups=group_rates(results, variant, ce_counting),
    )


def catastrophic_function_count(
    results: ResultSet, variant: str, api_set: set[str], ce_counting: str
) -> int:
    """Count MuTs with Catastrophic failures under a CE counting mode."""
    rows = select_results(results, variant, ce_counting)
    return sum(1 for r in rows if r.api in api_set and r.catastrophic)
