"""Campaign-to-campaign comparison (regression analysis).

The deterministic generator makes two campaigns directly comparable
case-by-case — across *runs* as well as across variants.  This module
diffs two result sets for the same variant(s): which MuTs stopped (or
started) crashing, and where the per-class rates moved.  It is the tool
a vendor QA team would run against a candidate service pack, and it is
what `examples/patch_verification.py` demonstrates on a hypothetical
"Windows 98 SP2" personality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import MuTResult, ResultSet


@dataclass
class MuTDiff:
    """Per-MuT change between a baseline and a candidate run."""

    variant: str
    api: str
    mut_name: str
    group: str
    crash_fixed: bool = False
    crash_introduced: bool = False
    abort_delta: float = 0.0
    restart_delta: float = 0.0
    silent_truth_delta: float = 0.0
    #: Case indices whose code changed (bounded sample).
    changed_cases: list[int] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return (
            self.crash_fixed
            or self.crash_introduced
            or abs(self.abort_delta) > 1e-9
            or abs(self.restart_delta) > 1e-9
            or bool(self.changed_cases)
        )


@dataclass
class ComparisonReport:
    """Diff of two campaigns."""

    diffs: list[MuTDiff] = field(default_factory=list)
    #: MuTs present only in one of the two runs.
    only_in_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    only_in_candidate: list[tuple[str, str, str]] = field(default_factory=list)

    def changed(self) -> list[MuTDiff]:
        return [d for d in self.diffs if d.changed]

    def fixed_crashes(self) -> list[MuTDiff]:
        return [d for d in self.diffs if d.crash_fixed]

    def introduced_crashes(self) -> list[MuTDiff]:
        return [d for d in self.diffs if d.crash_introduced]

    def regressions(self) -> list[MuTDiff]:
        """Changes a release manager must block on: new crashes or
        abort-rate increases."""
        return [
            d
            for d in self.diffs
            if d.crash_introduced or d.abort_delta > 1e-9
        ]

    def render(self, max_rows: int = 30) -> str:
        lines = [
            "Campaign comparison (baseline -> candidate)",
            "",
            f"  MuTs compared: {len(self.diffs)}; changed: "
            f"{len(self.changed())}; crashes fixed: "
            f"{len(self.fixed_crashes())}; crashes introduced: "
            f"{len(self.introduced_crashes())}",
        ]
        if self.only_in_baseline or self.only_in_candidate:
            lines.append(
                f"  coverage drift: -{len(self.only_in_baseline)} "
                f"+{len(self.only_in_candidate)} MuTs"
            )
        lines.append("")
        shown = 0
        for diff in sorted(
            self.changed(),
            key=lambda d: (not d.crash_introduced, not d.crash_fixed, d.mut_name),
        ):
            if shown >= max_rows:
                lines.append(f"  ... {len(self.changed()) - shown} more")
                break
            notes = []
            if diff.crash_fixed:
                notes.append("CRASH FIXED")
            if diff.crash_introduced:
                notes.append("CRASH INTRODUCED")
            if abs(diff.abort_delta) > 1e-9:
                notes.append(f"abort {100 * diff.abort_delta:+.1f}pp")
            if abs(diff.restart_delta) > 1e-9:
                notes.append(f"restart {100 * diff.restart_delta:+.1f}pp")
            lines.append(
                f"  {diff.variant:9s} {diff.mut_name:28s} {'; '.join(notes)}"
            )
            shown += 1
        if not self.changed():
            lines.append("  (no behavioural changes)")
        return "\n".join(lines)


def _diff_one(baseline: MuTResult, candidate: MuTResult) -> MuTDiff:
    diff = MuTDiff(
        baseline.variant, baseline.api, baseline.mut_name, baseline.group
    )
    diff.crash_fixed = baseline.catastrophic and not candidate.catastrophic
    diff.crash_introduced = candidate.catastrophic and not baseline.catastrophic
    diff.abort_delta = candidate.abort_rate - baseline.abort_rate
    diff.restart_delta = candidate.restart_rate - baseline.restart_rate
    diff.silent_truth_delta = (
        candidate.silent_ground_truth_rate()
        - baseline.silent_ground_truth_rate()
    )
    comparable = min(len(baseline.codes), len(candidate.codes))
    for index in range(comparable):
        if baseline.codes[index] != candidate.codes[index]:
            diff.changed_cases.append(index)
            if len(diff.changed_cases) >= 20:
                break
    return diff


def compare_results(
    baseline: ResultSet, candidate: ResultSet
) -> ComparisonReport:
    """Diff two result sets (same cap/registry assumed; MuTs missing on
    either side are reported as coverage drift, not failures)."""
    report = ComparisonReport()
    baseline_keys = {
        (r.variant, r.api, r.mut_name): r for r in baseline
    }
    candidate_keys = {
        (r.variant, r.api, r.mut_name): r for r in candidate
    }
    for key in sorted(baseline_keys.keys() | candidate_keys.keys()):
        before = baseline_keys.get(key)
        after = candidate_keys.get(key)
        if before is None:
            report.only_in_candidate.append(key)
        elif after is None:
            report.only_in_baseline.append(key)
        else:
            report.diffs.append(_diff_one(before, after))
    return report
