"""Renderers that regenerate the paper's tables and figures as text.

Each renderer takes a :class:`~repro.core.results.ResultSet` produced by
a campaign over (a subset of) the seven OS variants and prints the same
rows/series the paper reports:

* :func:`render_table1` -- robustness failure rates by MuT.
* :func:`render_table2` -- failure rates by functional category.
* :func:`render_figure1` -- the same data as comparative bars.
* :func:`render_table3` -- functions with Catastrophic failures
  (``*`` = reproducible only inside the harness).
* :func:`render_figure2` -- Abort + Restart + estimated Silent rates for
  the desktop Windows variants.
* :func:`render_sequence_table` -- sequence-campaign crash attribution
  (first-failure step pointers, origin-vs-propagated classification,
  fault-injection pressure), the companion table Table 1 gains when a
  campaign ran in ``--mode sequence``.
"""

from __future__ import annotations

from repro.analysis.groups import GROUP_DISPLAY, TABLE2_ORDER
from repro.analysis.rates import (
    VariantSummary,
    catastrophic_function_count,
    select_results,
    summarize,
)
from repro.analysis.silent import DESKTOP_KEYS, estimate_silent_rates
from repro.core.results import ResultSet

#: Display names in the paper's reporting order.
VARIANT_ORDER: tuple[tuple[str, str], ...] = (
    ("linux", "Linux"),
    ("win95", "Windows 95"),
    ("win98", "Windows 98"),
    ("win98se", "Windows 98 SE"),
    ("winnt", "Windows NT"),
    ("win2000", "Windows 2000"),
    ("wince", "Windows CE"),
)


def _present(results: ResultSet) -> list[tuple[str, str]]:
    available = set(results.variants())
    return [(key, name) for key, name in VARIANT_ORDER if key in available]


def _pct(rate: float) -> str:
    return f"{100 * rate:5.2f}%"


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


def _table1_row(summary: VariantSummary, results: ResultSet) -> list[str]:
    variant = summary.variant
    cells = [
        summary.name,
        str(summary.syscalls_tested),
        str(summary.syscalls_catastrophic),
        _pct(summary.syscall_restart_rate),
        _pct(summary.syscall_abort_rate),
        str(summary.c_functions_tested),
        str(summary.c_functions_catastrophic),
        _pct(summary.c_restart_rate),
        _pct(summary.c_abort_rate),
        str(summary.muts_tested),
        str(summary.muts_catastrophic),
        _pct(summary.overall_restart_rate),
        _pct(summary.overall_abort_rate),
    ]
    if variant == "wince":
        # Parenthesised counts: ASCII and UNICODE counted separately
        # (the paper's "82 (108)" and "18 (27)").
        both_rows = select_results(results, variant, "both")
        c_both = sum(1 for r in both_rows if r.api == "libc")
        c_cat_both = catastrophic_function_count(
            results, variant, {"libc"}, "both"
        )
        # ASCII-merged function count: a pair counts once if either
        # implementation crashed.
        merged = _ce_merged_catastrophic_count(both_rows)
        cells[5] = f"{summary.c_functions_tested} ({c_both})"
        cells[6] = f"{merged} ({merged + _ce_unicode_catastrophic_count(both_rows)})"
        cells[9] = f"{summary.muts_tested} ({summary.syscalls_tested + c_both})"
    return cells


def _ce_merged_catastrophic_count(both_rows) -> int:
    """C functions with Catastrophic failures, ASCII and UNICODE merged."""
    from repro.libc.registration import UNICODE_TWIN_OF

    names = set()
    for row in both_rows:
        if row.api != "libc" or not row.catastrophic:
            continue
        names.add(UNICODE_TWIN_OF.get(row.mut_name, row.mut_name))
    return len(names)


def _ce_unicode_catastrophic_count(both_rows) -> int:
    """Crashing UNICODE twins (the extra units in the "(27)" count)."""
    from repro.libc.registration import UNICODE_TWIN_OF

    return sum(
        1
        for row in both_rows
        if row.api == "libc"
        and row.catastrophic
        and row.mut_name in UNICODE_TWIN_OF
    )


def render_table1(results: ResultSet) -> str:
    """Table 1: Robustness failure rates by Module under Test.

    Variants whose campaign did not run to completion (dead client,
    expired lease, interrupted run) are marked with ``!`` -- their rates
    are computed over the MuTs that did report, not the full plan.
    Variants where the supervisor quarantined poison MuTs (repeated
    worker kills/hangs) are marked with ``~``; the footnote lists the
    withdrawn MuTs, which contribute to no rate.
    """
    headers = [
        "OS",
        "SysCalls",
        "SysCat",
        "SysRestart",
        "SysAbort",
        "CFuncs",
        "CCat",
        "CRestart",
        "CAbort",
        "MuTs",
        "MuTsCat",
        "Restart",
        "Abort",
    ]
    rows = [headers]
    any_partial = False
    quarantined: list = []
    for key, name in _present(results):
        summary = summarize(results, key, display_name=name)
        cells = _table1_row(summary, results)
        records = results.quarantined_for(key)
        if records:
            quarantined.extend(records)
            cells[0] = f"~{cells[0]}"
        if results.is_partial(key):
            any_partial = True
            cells[0] = f"!{cells[0]}"
        rows.append(cells)
    table = _format_table(
        rows, title="Table 1. Robustness failure rates by Module under Test"
    )
    if any_partial:
        table += (
            "\n(! = partial results: the variant's campaign did not run "
            "to completion)"
        )
    if quarantined:
        listing = ", ".join(
            f"{r.api}:{r.mut_name} [{r.variant}]" for r in quarantined
        )
        table += (
            f"\n(~ = quarantined MuTs excluded from rates: {listing})"
        )
    return table


# ----------------------------------------------------------------------
# Table 2 / Figure 1
# ----------------------------------------------------------------------


def render_table2(results: ResultSet) -> str:
    """Table 2: overall failure rates by functional category.

    Catastrophic-failure MuTs are excluded from the rates; groups
    containing any are marked with ``*``, as in the paper.
    """
    present = _present(results)
    summaries = {
        key: summarize(results, key, display_name=name) for key, name in present
    }
    rows = [["Group"] + [name for _, name in present]]
    for group in TABLE2_ORDER:
        row = [GROUP_DISPLAY[group]]
        for key, _ in present:
            rates = summaries[key].groups[group]
            if rates.muts == 0:
                row.append("N/A")
                continue
            marker = "*" if rates.has_catastrophic else ""
            row.append(f"{marker}{100 * (rates.abort_rate + rates.restart_rate):.1f}%")
        rows.append(row)
    return _format_table(
        rows,
        title=(
            "Table 2. Overall robustness failure rates by functional "
            "category (* = group contains Catastrophic failures)"
        ),
    )


def render_figure1(results: ResultSet, width: int = 40) -> str:
    """Figure 1: comparative failure rates by category, as text bars."""
    present = _present(results)
    summaries = {
        key: summarize(results, key, display_name=name) for key, name in present
    }
    lines = [
        "Figure 1. Comparative Windows and Linux robustness failure "
        "rates by functional category",
        "",
    ]
    for group in TABLE2_ORDER:
        lines.append(GROUP_DISPLAY[group])
        for key, name in present:
            rates = summaries[key].groups[group]
            if rates.muts == 0:
                lines.append(f"  {name:14s} | (no data)")
                continue
            rate = rates.abort_rate + rates.restart_rate
            bar = "#" * round(rate * width)
            lines.append(f"  {name:14s} |{bar:<{width}s}| {100 * rate:5.1f}%")
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 3
# ----------------------------------------------------------------------


def render_table3(results: ResultSet) -> str:
    """Table 3: functions that exhibited Catastrophic failures by OS and
    function group (``*`` = needed accumulated state / not reproducible
    as a single test)."""
    present = [
        (key, name)
        for key, name in _present(results)
        if key not in ("linux", "winnt", "win2000")
    ]
    lines = [
        "Table 3. Functions exhibiting Catastrophic failures "
        "(* = only inside the test harness)",
        "",
    ]
    by_group: dict[str, dict[str, list[str]]] = {}
    starred: set[str] = set()
    for key, _ in present:
        for row in select_results(results, key, "both"):
            if not row.catastrophic:
                continue
            by_group.setdefault(row.group, {}).setdefault(
                row.mut_name, []
            ).append(key)
            if row.interference_crash:
                starred.add(row.mut_name)
    if not by_group:
        lines.append("(no Catastrophic failures observed)")
        return "\n".join(lines)
    key_order = [key for key, _ in present]
    header = f"  {'function':32s}" + "".join(f"{key:>9s}" for key in key_order)
    for group in TABLE2_ORDER:
        if group not in by_group:
            continue
        lines.append(group)
        lines.append(header)
        for name in sorted(by_group[group]):
            label = ("*" if name in starred else "") + name
            marks = [
                "X" if key in by_group[group][name] else ""
                for key in key_order
            ]
            lines.append(
                f"  {label:32s}" + "".join(f"{mark:>9s}" for mark in marks)
            )
        lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Sequence attribution table
# ----------------------------------------------------------------------


def render_sequence_table(results: ResultSet) -> str:
    """Crash attribution for ``--mode sequence`` campaigns.

    One summary row per OS variant, then one line per crashed sequence
    pointing at the step that first failed, the step attributed as the
    crash origin, and the origin-vs-propagated classification.  A
    ``propagated`` crash whose origin step is ``-`` was inherited from
    wear the sequence *started* on (dirty-machine mode).
    """
    from repro.core.crash_scale import CaseCode
    from repro.core.sequences import SEQUENCE_API

    headers = [
        "OS",
        "Seqs",
        "Crashed",
        "Origin",
        "Propagated",
        "Faults",
        "Fired",
        "Atomicity",
    ]
    rows = [headers]
    crash_lines: list[str] = []
    any_rows = False
    for key, name in _present(results):
        seqs = [
            r for r in results.for_variant(key) if r.api == SEQUENCE_API
        ]
        if not seqs:
            continue
        any_rows = True
        crashed = origin = propagated = armed = fired = atomic = 0
        for row in seqs:
            info = row.sequence or {}
            fault = info.get("fault")
            if fault is not None:
                armed += 1
                if fault.get("fired"):
                    fired += 1
            atomic += row.count(CaseCode.FAULT_ATOMICITY)
            crash_step = info.get("crash_step")
            if crash_step is None:
                continue
            crashed += 1
            classification = info.get("classification")
            if classification == "origin":
                origin += 1
            elif classification == "propagated":
                propagated += 1
            step = info.get("steps", [{}])[crash_step]
            origin_step = info.get("origin_step")
            crash_lines.append(
                f"  {key} {row.mut_name}: crash@step {crash_step} "
                f"({step.get('api', '?')}:{step.get('mut', '?')}), "
                f"first-failure@"
                f"{info.get('first_failure', crash_step)}, "
                f"origin@{'-' if origin_step is None else origin_step}, "
                f"{classification or '?'}"
                + (
                    f", fault={fault['family']}@{fault['step']}"
                    if fault is not None and fault.get("fired")
                    else ""
                )
            )
        rows.append(
            [
                name,
                str(len(seqs)),
                str(crashed),
                str(origin),
                str(propagated),
                str(armed),
                str(fired),
                str(atomic),
            ]
        )
    if not any_rows:
        return (
            "Sequence crash attribution\n"
            "(no sequence campaigns recorded)"
        )
    table = _format_table(
        rows,
        title=(
            "Sequence crash attribution (k-call sequences; origin = "
            "crashing step caused it, propagated = accumulated wear did)"
        ),
    )
    if crash_lines:
        table += "\n\ncrashed sequences:\n" + "\n".join(crash_lines)
    return table


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------


def render_figure2(results: ResultSet) -> str:
    """Figure 2: Abort + Restart + estimated Silent failure rates for the
    desktop Windows variants (voting estimator)."""
    present = [key for key in DESKTOP_KEYS if key in results.variants()]
    estimates = estimate_silent_rates(results, tuple(present))
    names = dict(VARIANT_ORDER)
    summaries = {key: summarize(results, key) for key in present}
    lines = [
        "Figure 2. Abort, Restart, and estimated Silent failure rates "
        "for Windows desktop operating systems",
        "",
        f"  {'group':18s}" + "".join(f"{names[k]:>15s}" for k in present),
    ]
    for group in TABLE2_ORDER:
        cells = []
        for key in present:
            rates = summaries[key].groups[group]
            silent = estimates[key].group_rate(group)
            total = rates.abort_rate + rates.restart_rate + silent
            cells.append(f"{100 * total:6.1f}%({100 * silent:4.1f})")
        lines.append(f"  {GROUP_DISPLAY[group]:18s}" + "".join(f"{c:>15s}" for c in cells))
    lines.append("")
    lines.append("  cell = abort+restart+estimated-silent% (silent component)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------


def _format_table(rows: list[list[str]], title: str = "") -> str:
    widths = [
        max(len(row[column]) for row in rows) for column in range(len(rows[0]))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for index, row in enumerate(rows):
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)
