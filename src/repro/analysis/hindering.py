"""Hindering-failure estimation (the CRASH scale's fifth class).

"Hindering failures report an incorrect error indication such as the
wrong error reporting code. ... Silent failures and Hindering failures
currently can be detected in only some situations, and require manual
analysis." (paper, section 2)

This reproduction extends the paper's cross-variant comparison idea from
Silent to Hindering failures, with one important twist.  A naive
majority vote fails here: the three 9x variants share a code base, so
their *shared* wrong error code outvotes NT/2000's correct one and the
estimator blames the healthy family.  (We keep that observation as a
documented pitfall -- it is exactly the "common-mode" blind spot the
paper notes for its Silent estimator.)  Instead, error codes are
compared against a **reference implementation** -- by default Windows
2000, the newest of the paper's variants: when both the subject and the
reference report an error for the identical test case but with different
codes, the subject is charged a Hindering-failure candidate.

The canonical catch: the 9x family reports ``ERROR_PATH_NOT_FOUND`` (3)
for a plain missing file where NT-family kernels report
``ERROR_FILE_NOT_FOUND`` (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.groups import ALL_GROUPS
from repro.analysis.rates import _mean, select_results
from repro.analysis.silent import DESKTOP_KEYS
from repro.core.crash_scale import CaseCode
from repro.core.results import ResultSet

_PASS_ERROR = int(CaseCode.PASS_ERROR)


@dataclass
class HinderingEstimate:
    """Reference-relative Hindering failure rates for one variant."""

    variant: str
    reference: str
    #: per (api, mut_name) -> estimated hindering rate
    per_mut: dict[tuple[str, str], float] = field(default_factory=dict)
    mut_groups: dict[tuple[str, str], str] = field(default_factory=dict)
    #: (mut key, case index, subject code, reference code) examples.
    examples: list[tuple[tuple[str, str], int, int, int]] = field(
        default_factory=list
    )

    def group_rate(self, group: str) -> float:
        return _mean(
            [
                rate
                for key, rate in self.per_mut.items()
                if self.mut_groups.get(key) == group
            ]
        )

    def group_rates(self) -> dict[str, float]:
        return {group: self.group_rate(group) for group in ALL_GROUPS}

    def overall_rate(self) -> float:
        return _mean(list(self.per_mut.values()))


def estimate_hindering_rates(
    results: ResultSet,
    variants: tuple[str, ...] = DESKTOP_KEYS,
    reference: str = "win2000",
    max_examples: int = 50,
) -> dict[str, HinderingEstimate]:
    """Compare each variant's per-case error codes against ``reference``.

    A case participates for a (variant, MuT) when *both* the variant and
    the reference executed it and reported ``PASS_ERROR``; a differing
    code is a Hindering-failure candidate.  Cases where either side
    aborted, crashed, or silently passed are already covered by the
    other CRASH classes and are excluded here.
    """
    present = [v for v in variants if v in results.variants()]
    if reference not in present:
        raise ValueError(
            f"reference variant {reference!r} has no results; present: {present}"
        )
    subjects = [v for v in present if v != reference]
    if not subjects:
        raise ValueError("need at least one non-reference variant")

    reference_rows = {
        (r.api, r.mut_name): r
        for r in select_results(results, reference, "both")
    }
    estimates = {
        v: HinderingEstimate(v, reference) for v in present
    }
    estimates[reference].per_mut = {}  # reference is 0 by construction

    for variant in subjects:
        estimate = estimates[variant]
        for row in select_results(results, variant, "both"):
            key = (row.api, row.mut_name)
            ref = reference_rows.get(key)
            if ref is None:
                continue
            comparable = min(len(row.codes), len(ref.codes))
            disagreements = 0
            voted = 0
            for index in range(comparable):
                if (
                    row.codes[index] != _PASS_ERROR
                    or ref.codes[index] != _PASS_ERROR
                ):
                    continue
                voted += 1
                if row.error_codes[index] != ref.error_codes[index]:
                    disagreements += 1
                    if len(estimate.examples) < max_examples:
                        estimate.examples.append(
                            (
                                key,
                                index,
                                row.error_codes[index],
                                ref.error_codes[index],
                            )
                        )
            estimate.per_mut[key] = disagreements / voted if voted else 0.0
            estimate.mut_groups[key] = row.group
    return estimates


def render_hindering(results: ResultSet, reference: str = "win2000") -> str:
    """A compact Hindering-failure report (the paper's 'requires manual
    analysis' class, automated by reference comparison)."""
    estimates = estimate_hindering_rates(results, reference=reference)
    lines = [
        "Hindering failures (wrong error code), estimated against the "
        f"{reference} error codes",
        "",
        f"  {'variant':10s} {'overall':>9s}   worst offenders",
    ]
    for variant, estimate in estimates.items():
        if variant == reference:
            continue
        worst = sorted(
            (
                (rate, key)
                for key, rate in estimate.per_mut.items()
                if rate > 0
            ),
            reverse=True,
        )[:4]
        detail = ", ".join(f"{key[1]} ({100 * rate:.0f}%)" for rate, key in worst)
        lines.append(
            f"  {variant:10s} {100 * estimate.overall_rate():8.2f}%   {detail or '-'}"
        )
    lines.append("")
    lines.append(
        "  note: a same-code-base family can share a wrong code; like the"
    )
    lines.append(
        "  paper's Silent estimator, common-mode mistakes are invisible."
    )
    return "\n".join(lines)
