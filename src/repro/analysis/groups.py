"""The twelve functional groupings (paper section 3.3, Table 2, Figure 1).

"Normalization is performed by computing the robustness failure rate on
a per-MuT basis ... Then, the MuTs are grouped into comparable classes
by functionality ... The individual failure rates within each such group
are averaged with uniform weights to provide a group failure rate,
permitting relative comparisons among groups for all OS
implementations."
"""

from __future__ import annotations

#: System-call groups (shared names across the Win32 and POSIX APIs, so
#: e.g. POSIX {close dup ...} and Win32 {CloseHandle DuplicateHandle ...}
#: land in the same "I/O Primitives" bucket).
SYSCALL_GROUPS: tuple[str, ...] = (
    "Memory Management",
    "File/Directory Access",
    "I/O Primitives",
    "Process Primitives",
    "Process Environment",
)

#: C library groups (identical functions on every OS).
C_GROUPS: tuple[str, ...] = (
    "C char",
    "C file I/O management",
    "C memory management",
    "C stream I/O",
    "C string",
    "C math",
    "C time",
)

#: All twelve groups, system calls first then C library (the reporting
#: order of Table 2 / Figure 1).
ALL_GROUPS: tuple[str, ...] = SYSCALL_GROUPS + C_GROUPS

#: Canonical group key -> short display label used in figures.
GROUP_DISPLAY: dict[str, str] = {
    "Memory Management": "Memory Mgmt",
    "File/Directory Access": "File/Dir Access",
    "I/O Primitives": "I/O Primitives",
    "Process Primitives": "Process Prims",
    "Process Environment": "Process Env",
    "C char": "C char",
    "C file I/O management": "C file I/O",
    "C memory management": "C memory",
    "C stream I/O": "C stream I/O",
    "C string": "C string",
    "C math": "C math",
    "C time": "C time",
}

#: Reporting order for Table 2 (system calls first, then C library).
TABLE2_ORDER: tuple[str, ...] = (
    "Memory Management",
    "File/Directory Access",
    "I/O Primitives",
    "Process Primitives",
    "Process Environment",
    "C char",
    "C file I/O management",
    "C memory management",
    "C stream I/O",
    "C string",
    "C math",
    "C time",
)
