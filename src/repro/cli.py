"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro [--cap N] [--jobs N] [--variants win98,winnt,...]
                    [--tables table1,table2,figure1,table3,figure2]
    python -m repro --mode sequence [--sequences N] [--sequence-length K]
                    [--dirty-machine] [--fault-families alloc,handles,disk]
    python -m repro lint [...]        # static analysis (repro.lint.cli)
    python -m repro stats EVENTS      # telemetry report (repro.obs)
    python -m repro serve [...]       # multi-tenant campaign service
    python -m repro submit [...]      # submit a campaign to a service
    python -m repro leaks [...]       # resource-leakage audit
    python -m repro minimize [...]    # ddmin a crashed sequence row

With no arguments this runs the full seven-variant campaign at the
``BALLISTA_CAP`` cap (default 300) and prints every table and figure the
paper reports.  ``--cap 5000`` reproduces the paper's full scale (slow);
variants fan out across ``--jobs`` worker processes (default: one per
variant, capped at the core count) with output byte-identical to
``--jobs 1``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import ALL_VARIANTS, Campaign, CampaignConfig, ParallelCampaign
from repro.analysis.hindering import render_hindering
from repro.analysis.tables import (
    render_figure1,
    render_figure2,
    render_sequence_table,
    render_table1,
    render_table2,
    render_table3,
)
from repro.core.campaign import default_cap
from repro.core.parallel import default_jobs, default_shards
from repro.core.supervisor import (
    SupervisedCampaign,
    SupervisorPolicy,
    default_max_mut_retries,
    default_max_restarts,
    default_mut_deadline,
)

RENDERERS = {
    "table1": render_table1,
    "table2": render_table2,
    "figure1": render_figure1,
    "table3": render_table3,
    "figure2": render_figure2,
    "hindering": render_hindering,
    "sequences": render_sequence_table,
}

#: Default outputs per campaign mode: the paper's tables for per-case
#: campaigns, the attribution table for sequence campaigns (whose rows
#: the per-MuT tables deliberately exclude).
_DEFAULT_TABLES = {
    "case": "table1,table2,figure1,table3,figure2,hindering",
    "sequence": "sequences",
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["lint"]:
        # `python -m repro lint ...`: the static-analysis subcommand.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["stats"]:
        # `python -m repro stats events.jsonl`: telemetry report.
        from repro.obs.stats_cli import main as stats_main

        return stats_main(argv[1:])
    if argv[:1] == ["serve"]:
        # `python -m repro serve --data DIR`: the campaign service.
        from repro.service.service_cli import serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["submit"]:
        # `python -m repro submit --port P --variants ...`.
        from repro.service.service_cli import submit_main

        return submit_main(argv[1:])
    if argv[:1] == ["leaks"]:
        # `python -m repro leaks [--variant V]`: resource-leak audit.
        return _leaks_main(argv[1:])
    if argv[:1] == ["minimize"]:
        # `python -m repro minimize RESULTS --variant V --sequence S`.
        return _minimize_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Robustness Testing of the Microsoft Win32 API' "
            "(DSN 2000): run the Ballista campaign over the simulated OS "
            "variants and print the paper's tables and figures."
        ),
    )
    parser.add_argument(
        "--cap",
        type=int,
        default=None,
        help="test cases per MuT (paper: 5000; default: BALLISTA_CAP or 300)",
    )
    parser.add_argument(
        "--mode",
        choices=("case", "sequence"),
        default="case",
        help=(
            "campaign unit of work: 'case' (the paper's one call per "
            "fresh process) or 'sequence' (k-call sequences sharing one "
            "process, with fault injection and crash attribution)"
        ),
    )
    parser.add_argument(
        "--sequences",
        type=int,
        default=50,
        metavar="N",
        help="sequences per variant in --mode sequence (default: 50)",
    )
    parser.add_argument(
        "--sequence-length",
        type=int,
        default=6,
        metavar="K",
        help="calls per sequence in --mode sequence (default: 6)",
    )
    parser.add_argument(
        "--sequence-seed",
        type=int,
        default=0,
        metavar="SEED",
        help=(
            "campaign-level sequence seed; equal seeds plan identical "
            "sequences (default: 0)"
        ),
    )
    parser.add_argument(
        "--dirty-machine",
        action="store_true",
        help=(
            "skip the between-sequence reboot so sequences start on "
            "accumulated wear (the long-uptime regime)"
        ),
    )
    parser.add_argument(
        "--fault-families",
        default=None,
        metavar="FAMILIES",
        help=(
            "comma-separated exhaustion families eligible for injection "
            "in --mode sequence (default: alloc,handles,disk; empty "
            "disables injection)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "concurrent worker processes (default: one per variant "
            "shard slice -- variants x --shards -- capped at the core "
            "count; 1 = serial)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "contiguous plan slices per variant feeding one work-"
            "stealing pool, so parallelism is no longer capped at the "
            "variant count (default: BALLISTA_SHARDS or 1; output is "
            "byte-identical to --shards 1)"
        ),
    )
    parser.add_argument(
        "--wear-atlas",
        metavar="PATH",
        help=(
            "wear-atlas file memoizing shard seam wear between runs: "
            "read for speculative slice bases, updated after a "
            "successful run (purely an accelerator; a stale atlas is "
            "detected and replayed, never wrong)"
        ),
    )
    parser.add_argument(
        "--variants",
        default=",".join(p.key for p in ALL_VARIANTS),
        help="comma-separated variant keys (default: all seven)",
    )
    parser.add_argument(
        "--tables",
        default=None,
        help=(
            "comma-separated outputs to print (default: the paper "
            "tables in --mode case, 'sequences' in --mode sequence)"
        ),
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        help="save the campaign result set to a JSON file",
    )
    parser.add_argument(
        "--load",
        metavar="PATH",
        help="load a previously saved result set instead of running",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help=(
            "periodically write a restartable campaign checkpoint to PATH "
            "(atomic; safe to kill the run at any point)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=25,
        metavar="N",
        help="checkpoint after every N completed MuTs (default: 25)",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        help=(
            "resume an interrupted campaign from the checkpoint at PATH, "
            "skipping already-completed MuTs (keeps checkpointing to the "
            "same file unless --checkpoint overrides it)"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also write table1.csv / table2.csv into DIR",
    )
    parser.add_argument(
        "--mut-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock heartbeat deadline before the supervisor kills "
            "and restarts a hung worker (0 disables the watchdog; "
            "default: BALLISTA_MUT_DEADLINE or 300)"
        ),
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker restarts allowed per variant before the campaign "
            "fails (default: BALLISTA_MAX_RESTARTS or 5)"
        ),
    )
    parser.add_argument(
        "--max-mut-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker deaths one MuT may cause before it is quarantined "
            "(default: BALLISTA_MAX_MUT_RETRIES or 1)"
        ),
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help=(
            "run parallel workers without the self-healing supervisor "
            "(a dead or hung worker then fails the whole campaign)"
        ),
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        help=(
            "stream structured run telemetry (JSON lines) to PATH; "
            "render it later with `python -m repro stats PATH`"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    args = parser.parse_args(argv)

    if args.cap is None:
        try:
            args.cap = default_cap()
        except ValueError as exc:
            # A malformed BALLISTA_CAP must not escape as a traceback.
            parser.error(str(exc))
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.shards is None:
        try:
            args.shards = default_shards()
        except ValueError as exc:
            parser.error(str(exc))
    elif args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.mut_deadline is None:
        try:
            args.mut_deadline = default_mut_deadline()
        except ValueError as exc:
            parser.error(str(exc))
    elif args.mut_deadline < 0:
        parser.error(f"--mut-deadline must be >= 0, got {args.mut_deadline}")
    elif args.mut_deadline == 0:
        args.mut_deadline = None  # 0 = watchdog off, as in the env var
    if args.max_restarts is None:
        try:
            args.max_restarts = default_max_restarts()
        except ValueError as exc:
            parser.error(str(exc))
    elif args.max_restarts < 0:
        parser.error(f"--max-restarts must be >= 0, got {args.max_restarts}")
    if args.max_mut_retries is None:
        try:
            args.max_mut_retries = default_max_mut_retries()
        except ValueError as exc:
            parser.error(str(exc))
    elif args.max_mut_retries < 0:
        parser.error(
            f"--max-mut-retries must be >= 0, got {args.max_mut_retries}"
        )

    if args.sequences < 1:
        parser.error(f"--sequences must be >= 1, got {args.sequences}")
    if args.sequence_length < 1:
        parser.error(
            f"--sequence-length must be >= 1, got {args.sequence_length}"
        )
    from repro.sim.faults import FAULT_FAMILIES

    if args.fault_families is None:
        fault_families = FAULT_FAMILIES
    else:
        fault_families = tuple(
            name.strip()
            for name in args.fault_families.split(",")
            if name.strip()
        )
        unknown_families = [
            f for f in fault_families if f not in FAULT_FAMILIES
        ]
        if unknown_families:
            parser.error(
                f"unknown fault families: {unknown_families}; choose "
                f"from {sorted(FAULT_FAMILIES)}"
            )

    tables_defaulted = args.tables is None
    if args.tables is None:
        args.tables = _DEFAULT_TABLES[args.mode]
    wanted = [name.strip() for name in args.tables.split(",") if name.strip()]
    unknown = [name for name in wanted if name not in RENDERERS]
    if unknown:
        parser.error(f"unknown tables: {unknown}; choose from {sorted(RENDERERS)}")

    by_key = {p.key: p for p in ALL_VARIANTS}
    keys = [key.strip() for key in args.variants.split(",") if key.strip()]
    missing = [key for key in keys if key not in by_key]
    if missing:
        parser.error(f"unknown variants: {missing}; choose from {sorted(by_key)}")
    variants = [by_key[key] for key in keys]

    if "figure2" in wanted or "hindering" in wanted:
        desktop = {"win95", "win98", "win98se", "winnt", "win2000"}
        if len(desktop & set(keys)) < 2:
            parser.error(
                "figure2 (Silent voting) needs at least two desktop "
                "Windows variants"
            )

    # One status line per variant: a single \r-rewritten line garbles as
    # soon as --jobs > 1 interleaves updates from several variants.
    from repro.obs.progress import ProgressRenderer

    renderer = ProgressRenderer() if not args.quiet else None
    progress = renderer.update if renderer is not None else None

    if args.load:
        from repro.core.results_io import ResultFormatError, load_results

        try:
            results = load_results(args.load)
        except (OSError, ResultFormatError) as exc:
            parser.error(f"--load {args.load}: {exc}")
    else:
        resume = None
        if args.resume:
            from repro.core.results_io import ResultFormatError, load_checkpoint

            try:
                resume = load_checkpoint(args.resume)
            except (OSError, ResultFormatError) as exc:
                parser.error(f"--resume {args.resume}: {exc}")
            if resume.cap and resume.cap != args.cap:
                # The case sequences are a function of the cap: resuming
                # under a different cap would splice incompatible plans.
                if not args.quiet:
                    sys.stderr.write(
                        f"resuming at the checkpoint's cap "
                        f"({resume.cap}), not {args.cap}\n"
                    )
                args.cap = resume.cap
            if resume.variants is not None and set(resume.variants) != {
                p.key for p in variants
            }:
                # The checkpoint knows which variants its run covered;
                # adopting them beats silently re-running all seven.
                if not args.quiet:
                    sys.stderr.write(
                        "resuming the checkpoint's variants "
                        f"({','.join(resume.variants)})\n"
                    )
                unknown_keys = [k for k in resume.variants if k not in by_key]
                if unknown_keys:
                    parser.error(
                        f"checkpoint names unknown variants: {unknown_keys}"
                    )
                variants = [by_key[key] for key in resume.variants]
                keys = [p.key for p in variants]
            if resume.plan is not None:
                # The checkpoint records the plan-defining sequence
                # parameters; like the cap, the resumed run adopts them
                # (resuming under different ones would splice
                # incompatible plans).
                plan = resume.plan
                if args.mode != plan.get("mode") and not args.quiet:
                    sys.stderr.write(
                        f"resuming the checkpoint's campaign mode "
                        f"({plan.get('mode')})\n"
                    )
                args.mode = str(plan.get("mode", args.mode))
                args.sequences = int(plan.get("sequences", args.sequences))
                args.sequence_length = int(
                    plan.get("sequence_length", args.sequence_length)
                )
                args.sequence_seed = int(
                    plan.get("sequence_seed", args.sequence_seed)
                )
                args.dirty_machine = bool(
                    plan.get("dirty_machine", args.dirty_machine)
                )
                fault_families = tuple(
                    str(f) for f in plan.get("fault_families", fault_families)
                )
                if tables_defaulted:
                    args.tables = _DEFAULT_TABLES[args.mode]
                    wanted = [
                        name.strip()
                        for name in args.tables.split(",")
                        if name.strip()
                    ]
            elif args.mode == "sequence":
                parser.error(
                    f"--resume {args.resume}: the checkpoint records a "
                    "per-case campaign; it cannot resume under "
                    "--mode sequence"
                )
        checkpoint_path = args.checkpoint or args.resume
        started = time.monotonic()
        # Default parallelism covers every schedulable slice, not just
        # every variant: the old min(variants, cores) silently idled
        # all cores past seven.
        total_shards = len(variants) * args.shards
        jobs = (
            args.jobs
            if args.jobs is not None
            else default_jobs(total_shards)
        )
        if args.jobs is not None and args.jobs > total_shards and not args.quiet:
            sys.stderr.write(
                f"--jobs {args.jobs} exceeds the {total_shards} "
                f"schedulable slice(s) ({len(variants)} variant(s) x "
                f"{args.shards} shard(s)); extra workers will idle -- "
                f"raise --shards to use them\n"
            )
        config = CampaignConfig(
            cap=args.cap,
            mode=args.mode,
            sequences=args.sequences,
            sequence_length=args.sequence_length,
            sequence_seed=args.sequence_seed,
            dirty_machine=args.dirty_machine,
            fault_families=fault_families,
        )
        if jobs > 1 and not args.no_supervise:
            campaign = SupervisedCampaign(
                variants,
                config=config,
                jobs=jobs,
                shards=args.shards,
                atlas_path=args.wear_atlas,
                policy=SupervisorPolicy(
                    mut_deadline=args.mut_deadline,
                    max_restarts=args.max_restarts,
                    max_mut_retries=args.max_mut_retries,
                ),
            )
        elif jobs > 1:
            campaign = ParallelCampaign(
                variants,
                config=config,
                jobs=jobs,
                shards=args.shards,
                atlas_path=args.wear_atlas,
            )
        else:
            campaign = Campaign(variants, config=config)
        recorder = None
        if args.events:
            from repro.obs.recorder import JsonlRecorder

            try:
                recorder = JsonlRecorder(args.events)
            except OSError as exc:
                parser.error(f"--events {args.events}: {exc}")
        try:
            results = campaign.run(
                progress=progress,
                checkpoint_path=checkpoint_path,
                checkpoint_every=args.checkpoint_every,
                resume=resume,
                recorder=recorder,
            )
        finally:
            if renderer is not None:
                renderer.close()
            if recorder is not None:
                recorder.close()
        if not args.quiet:
            elapsed = time.monotonic() - started
            workers = f", {jobs} workers" if jobs > 1 else ""
            sys.stderr.write(
                f"campaign: {results.total_cases()} test cases across "
                f"{len(variants)} variants in {elapsed:.1f}s{workers}\n\n"
            )
            for entry in getattr(campaign, "supervision_log", []):
                detail = ", ".join(
                    f"{k}={v}"
                    for k, v in entry.items()
                    if k not in ("event", "variant")
                )
                sys.stderr.write(
                    f"supervisor: {entry['event']} [{entry['variant']}]"
                    f"{' ' + detail if detail else ''}\n"
                )
            if getattr(campaign, "supervision_log", []):
                sys.stderr.write("\n")
    if args.save:
        from repro.core.results_io import save_results

        save_results(results, args.save)
    if args.csv:
        from repro.analysis.export import write_csv

        for path in write_csv(results, args.csv):
            if not args.quiet:
                sys.stderr.write(f"wrote {path}\n")

    for name in wanted:
        print(RENDERERS[name](results))
        print()
    return 0


def _leaks_main(argv: list[str]) -> int:
    """``python -m repro leaks [--variant V]``: the resource-leakage
    audit (the failure mode the paper explicitly did not target)."""
    parser = argparse.ArgumentParser(
        prog="repro leaks",
        description=(
            "Audit each MuT for machine-global residue (leaked files, "
            "shared-arena corruption) that survives per-case teardown."
        ),
    )
    by_key = {p.key: p for p in ALL_VARIANTS}
    parser.add_argument(
        "--variant",
        default="win98",
        choices=sorted(by_key),
        help="OS variant to audit (default: win98)",
    )
    parser.add_argument(
        "--cap",
        type=int,
        default=60,
        metavar="N",
        help="test cases per MuT (default: 60)",
    )
    parser.add_argument(
        "--muts",
        default=None,
        metavar="NAMES",
        help="comma-separated MuT names to audit (default: all)",
    )
    args = parser.parse_args(argv)
    if args.cap < 1:
        parser.error(f"--cap must be >= 1, got {args.cap}")
    from repro.triage.leaks import audit_leaks

    mut_names = None
    if args.muts is not None:
        mut_names = [n.strip() for n in args.muts.split(",") if n.strip()]
    report = audit_leaks(by_key[args.variant], mut_names, cap=args.cap)
    print(report.render())
    return 0


def _minimize_main(argv: list[str]) -> int:
    """``python -m repro minimize RESULTS --variant V --sequence S``:
    ddmin a crashed sequence row from saved campaign output down to a
    1-minimal standalone reproducer."""
    parser = argparse.ArgumentParser(
        prog="repro minimize",
        description=(
            "Minimise a Catastrophic sequence from a saved --mode "
            "sequence result set (ddmin under the campaign's own "
            "execution regime) and print the repro program."
        ),
    )
    by_key = {p.key: p for p in ALL_VARIANTS}
    parser.add_argument(
        "results", metavar="RESULTS", help="result set saved with --save"
    )
    parser.add_argument(
        "--variant",
        required=True,
        choices=sorted(by_key),
        help="OS variant the sequence crashed on",
    )
    parser.add_argument(
        "--sequence",
        default=None,
        metavar="NAME",
        help=(
            "sequence row to minimise (e.g. seq00042; default: the "
            "first crashed sequence of the variant)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    args = parser.parse_args(argv)
    from repro.core.results_io import ResultFormatError, load_results
    from repro.core.sequences import SEQUENCE_API
    from repro.triage.minimize import (
        minimize_from_sequence_record,
        render_repro_program,
    )

    try:
        results = load_results(args.results)
    except (OSError, ResultFormatError) as exc:
        parser.error(f"{args.results}: {exc}")
    if args.sequence is not None:
        try:
            row = results.get(args.variant, args.sequence, api=SEQUENCE_API)
        except KeyError:
            parser.error(
                f"no sequence row {args.sequence!r} for {args.variant}"
            )
    else:
        crashed = [
            r
            for r in results.for_variant(args.variant)
            if r.api == SEQUENCE_API and r.catastrophic
        ]
        if not crashed:
            parser.error(f"no crashed sequences recorded for {args.variant}")
        row = crashed[0]
    if row.sequence is None or row.sequence.get("crash_step") is None:
        parser.error(f"{row.mut_name} on {args.variant} did not crash")

    def progress(replays: int, length: int) -> None:
        sys.stderr.write(f"\rreplay {replays}: {length} step(s)   ")
        sys.stderr.flush()

    minimal = minimize_from_sequence_record(
        by_key[args.variant],
        row.sequence,
        progress=None if args.quiet else progress,
    )
    if not args.quiet:
        sys.stderr.write("\n")
    print(
        f"{row.mut_name} on {args.variant}: "
        f"{row.sequence['crash_step'] + 1} step(s) -> {len(minimal)} "
        "minimal step(s)"
    )
    for step in minimal:
        print(f"  {step.describe()}")
    print()
    print(render_repro_program(by_key[args.variant], minimal))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
