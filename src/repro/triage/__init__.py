"""Crash triage: the paper's stated future work, implemented.

"Future work on Windows testing will include looking for dependability
problems caused by heavy load conditions, as well as state- and
sequence-dependent failures.  In particular, we will attempt to find
ways to reproduce the elusive crashes that we have observed to occur in
both Windows and Linux outside of the current robustness testing
framework." (paper, section 5)

* :mod:`repro.triage.sequence` -- deterministic replay of explicit test
  case *sequences* on one persistent machine (state-dependent testing).
* :mod:`repro.triage.minimize` -- delta debugging (ddmin) over a
  crashing campaign prefix, reducing thousands of test cases to the
  minimal sequence that still reproduces a ``*`` crash, and rendering
  it as a standalone repro program -- the "way to reproduce the elusive
  crashes outside of the testing framework".
* :mod:`repro.triage.leaks` -- the resource-leakage audit the paper
  explicitly did not target ("we did not specifically target that type
  of failure mode for testing").
* :mod:`repro.triage.load_test` -- heavy-load comparison runs: the same
  deterministic cases on an idle machine and on one whose disk is full
  and whose shared arena carries long-uptime residue; plus
  :func:`~repro.triage.load_test.run_service_load`, a multi-tenant load
  generator that drives concurrent clients against a running campaign
  service and verifies each streamed result set against a serial run.
"""

from repro.triage.leaks import LeakReport, audit_leaks
from repro.triage.load_test import (
    LoadDelta,
    LoadReport,
    ServiceLoadReport,
    TenantOutcome,
    run_load_comparison,
    run_service_load,
)
from repro.triage.minimize import (
    capture_crash_prefix,
    minimize_crash_sequence,
    minimize_from_sequence_record,
    render_repro_program,
    steps_from_sequence_record,
)
from repro.triage.sequence import SequenceOutcome, SequenceStep, replay_sequence

__all__ = [
    "LeakReport",
    "LoadDelta",
    "LoadReport",
    "SequenceOutcome",
    "SequenceStep",
    "ServiceLoadReport",
    "TenantOutcome",
    "audit_leaks",
    "capture_crash_prefix",
    "minimize_crash_sequence",
    "minimize_from_sequence_record",
    "render_repro_program",
    "replay_sequence",
    "steps_from_sequence_record",
    "run_load_comparison",
    "run_service_load",
]
