"""Resource-leakage auditing.

"Although we did not detect any obvious resource 'leakage' during
testing, we did not specifically target that type of failure mode for
testing." (paper, section 4)

This module targets it: it runs each MuT's deterministic case sequence
on one machine, snapshots machine-global resources (filesystem entries,
shared-arena corruption) around every case, and charges any residue that
survives the per-case teardown to the MuT -- separating *harness*
hygiene problems (test values that create files without cleanup) from
*API* hygiene problems (calls that create state their error paths never
release).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.crash_scale import CaseCode
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator
from repro.core.mut import MuTRegistry, default_registry
from repro.core.types import TypeRegistry, default_types
from repro.sim.machine import Machine
from repro.sim.personality import Personality


@dataclass
class MuTLeak:
    """Residue one MuT left behind after all its cases were torn down."""

    mut_name: str
    api: str
    cases: int
    leaked_files: list[str] = field(default_factory=list)
    corruption_added: int = 0

    @property
    def leaks(self) -> bool:
        return bool(self.leaked_files) or self.corruption_added > 0


@dataclass
class LeakReport:
    """All leaks found for one variant."""

    variant: str
    per_mut: list[MuTLeak] = field(default_factory=list)

    def leaking_muts(self) -> list[MuTLeak]:
        return [entry for entry in self.per_mut if entry.leaks]

    def total_leaked_files(self) -> int:
        return sum(len(entry.leaked_files) for entry in self.per_mut)

    def render(self) -> str:
        lines = [
            f"Resource-leak audit for {self.variant}: "
            f"{len(self.leaking_muts())} of {len(self.per_mut)} MuTs leave "
            "residue",
            "",
        ]
        for entry in self.leaking_muts():
            what = []
            if entry.leaked_files:
                sample = ", ".join(entry.leaked_files[:3])
                more = (
                    f" (+{len(entry.leaked_files) - 3} more)"
                    if len(entry.leaked_files) > 3
                    else ""
                )
                what.append(f"files: {sample}{more}")
            if entry.corruption_added:
                what.append(f"arena corruption: +{entry.corruption_added}")
            lines.append(f"  {entry.mut_name:28s} {'; '.join(what)}")
        return "\n".join(lines)


def _file_snapshot(machine: Machine) -> set[str]:
    return {path for path, _ in machine.fs.iter_files()}


def audit_leaks(
    personality: Personality,
    mut_names: list[str] | None = None,
    cap: int = 60,
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
) -> LeakReport:
    """Run each MuT's cases and report machine-global residue.

    A fresh machine is booted per MuT so leaks cannot be blamed on a
    neighbour; a crash ends that MuT's audit (the machine's state is
    lost to the reboot anyway).
    """
    registry = registry or default_registry()
    types = types or default_types()
    generator = CaseGenerator(types, cap=cap)
    muts = registry.for_variant(personality)
    if mut_names is not None:
        wanted = set(mut_names)
        muts = [m for m in muts if m.name in wanted]
    report = LeakReport(personality.key)

    for mut in muts:
        machine = Machine(personality)
        executor = Executor(machine, generator)
        baseline = _file_snapshot(machine)
        corruption_before = machine.corruption_level
        cases = 0
        for case in generator.cases(mut):
            outcome = executor.run_case(mut, case)
            cases += 1
            if outcome.code is CaseCode.CATASTROPHIC:
                break
        if machine.crashed:
            report.per_mut.append(MuTLeak(mut.name, mut.api, cases))
            continue
        leaked = sorted(_file_snapshot(machine) - baseline)
        report.per_mut.append(
            MuTLeak(
                mut.name,
                mut.api,
                cases,
                leaked_files=leaked,
                corruption_added=machine.corruption_level - corruption_before,
            )
        )
    return report
