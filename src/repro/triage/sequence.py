"""Sequence-dependent testing: replay explicit test-case sequences.

Where a campaign generates cases per MuT, a *sequence* interleaves cases
from any MuTs on one persistent machine -- the setting in which the
paper's ``*`` crashes live.  The replay is completely deterministic, so
a sequence is a portable crash reproducer.

Two replay regimes are supported:

* the historical default (``shared_process=False``) runs each step in a
  fresh process, the per-case campaign's isolation level -- only
  *machine* wear carries between steps;
* ``shared_process=True`` mirrors a ``--mode sequence`` campaign: every
  step runs inside one persistent process (handles and streams stay
  live across steps), per-step fault families arm
  (:attr:`~repro.core.sequences.SequenceStep.fault_family`), and the
  replay stops at the first failure of any kind, exactly like the
  campaign's sequence runner.

``base_wear`` replays a dirty-machine crash: the wear image a campaign
recorded as the sequence's starting state is restored before step 0, so
crashes that only reproduce on a worn machine stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.crash_scale import CaseCode
from repro.core.executor import CaseOutcome, Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuTRegistry, default_registry
from repro.core.sequences import SequenceStep
from repro.core.types import TypeRegistry, default_types
from repro.sim.errors import MachineCrashed, SimFault, SystemCrash
from repro.sim.machine import Machine
from repro.sim.personality import Personality

__all__ = ["SequenceStep", "SequenceOutcome", "replay_sequence"]


@dataclass
class SequenceOutcome:
    """Result of replaying a sequence on one fresh machine."""

    steps: list[SequenceStep]
    outcomes: list[CaseOutcome] = field(default_factory=list)
    #: Virtual-clock reading after each executed step.  List position
    #: alone cannot order steps across replays once minimisation drops
    #: steps; the sim-tick stamps survive and keep minimized
    #: reproducers stable.
    step_ticks: list[int] = field(default_factory=list)
    crashed: bool = False
    #: Index of the step whose execution took the machine down.
    crash_step: int | None = None
    #: Machine corruption level when the replay ended.
    corruption_level: int = 0

    @property
    def executed(self) -> int:
        return len(self.outcomes)


def replay_sequence(
    personality: Personality,
    steps: list[SequenceStep],
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
    shared_process: bool = False,
    base_wear: dict | None = None,
) -> SequenceOutcome:
    """Replay ``steps`` in order on one freshly booted machine.

    By default each step runs in a fresh process (exactly the per-case
    campaign's isolation level) and the replay stops at the first
    Catastrophic outcome; machine state -- filesystem, shared arena,
    corruption -- persists between steps either way.  With
    ``shared_process=True`` the whole sequence shares one process and
    the replay stops at the first failing step, mirroring a sequence
    campaign.  ``base_wear`` (a :meth:`~repro.sim.machine.Machine.wear_state`
    image) is restored before the first step.
    """
    registry = registry or default_registry()
    types = types or default_types()
    machine = Machine(personality)
    if base_wear:
        machine.restore_wear(base_wear)
    executor = Executor(machine, CaseGenerator(types))
    result = SequenceOutcome(steps=list(steps))
    if shared_process:
        _replay_shared(machine, executor, registry, steps, result)
    else:
        _replay_isolated(machine, executor, registry, steps, result)
    result.corruption_level = (
        machine.corruption_level
        if not machine.crashed
        else personality.corruption_tolerance + 1
    )
    return result


def _replay_isolated(
    machine: Machine,
    executor: Executor,
    registry: MuTRegistry,
    steps: list[SequenceStep],
    result: SequenceOutcome,
) -> None:
    for index, step in enumerate(steps):
        mut = registry.get(step.api, step.mut_name)
        case = TestCase(mut.name, index, step.value_names)
        outcome = executor.run_case(mut, case)
        result.outcomes.append(outcome)
        result.step_ticks.append(machine.clock.ticks)
        if outcome.code is CaseCode.CATASTROPHIC:
            result.crashed = True
            result.crash_step = index
            break


def _replay_shared(
    machine: Machine,
    executor: Executor,
    registry: MuTRegistry,
    steps: list[SequenceStep],
    result: SequenceOutcome,
) -> None:
    from repro.core.context import TestContext

    try:
        ctx = TestContext(machine, machine.spawn_process())
    except (SystemCrash, MachineCrashed) as exc:
        # A heavily worn base image can go down spawning the process;
        # the crash belongs to step 0, as in the campaign runner.
        result.outcomes.append(
            CaseOutcome(CaseCode.CATASTROPHIC, str(exc), False, ())
        )
        result.step_ticks.append(machine.clock.ticks)
        result.crashed = True
        result.crash_step = 0
        return
    for index, step in enumerate(steps):
        mut = registry.get(step.api, step.mut_name)
        case = TestCase(mut.name, index, step.value_names)
        inject = step.fault_family is not None
        if inject:
            machine.faults.arm(step.fault_family)
        try:
            outcome = executor.run_step(ctx, mut, case, inject_fault=inject)
        finally:
            if inject:
                machine.faults.disarm()
        result.outcomes.append(outcome)
        result.step_ticks.append(machine.clock.ticks)
        if outcome.code is CaseCode.CATASTROPHIC:
            result.crashed = True
            result.crash_step = index
        if outcome.code.is_failure:
            break
    if not machine.crashed:
        ctx.run_cleanups()
        try:
            ctx.process.terminate()
        except (SimFault, MachineCrashed):  # pragma: no cover - defensive
            pass
