"""Sequence-dependent testing: replay explicit test-case sequences.

Where a campaign generates cases per MuT, a *sequence* interleaves cases
from any MuTs on one persistent machine -- the setting in which the
paper's ``*`` crashes live.  The replay is completely deterministic, so
a sequence is a portable crash reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.crash_scale import CaseCode
from repro.core.executor import CaseOutcome, Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuTRegistry, default_registry
from repro.core.types import TypeRegistry, default_types
from repro.sim.machine import Machine
from repro.sim.personality import Personality


@dataclass(frozen=True)
class SequenceStep:
    """One call in a sequence: a MuT plus concrete test-value names."""

    api: str
    mut_name: str
    value_names: tuple[str, ...]

    def describe(self) -> str:
        return f"{self.mut_name}({', '.join(self.value_names)})"


@dataclass
class SequenceOutcome:
    """Result of replaying a sequence on one fresh machine."""

    steps: list[SequenceStep]
    outcomes: list[CaseOutcome] = field(default_factory=list)
    crashed: bool = False
    #: Index of the step whose execution took the machine down.
    crash_step: int | None = None
    #: Machine corruption level when the replay ended.
    corruption_level: int = 0

    @property
    def executed(self) -> int:
        return len(self.outcomes)


def replay_sequence(
    personality: Personality,
    steps: list[SequenceStep],
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
) -> SequenceOutcome:
    """Replay ``steps`` in order on one freshly booted machine.

    Each step runs in a fresh process (exactly the campaign's isolation
    level); machine state -- filesystem, shared arena, corruption --
    persists between steps.  The replay stops at the first Catastrophic
    outcome.
    """
    registry = registry or default_registry()
    types = types or default_types()
    machine = Machine(personality)
    executor = Executor(machine, CaseGenerator(types))
    result = SequenceOutcome(steps=list(steps))
    for index, step in enumerate(steps):
        mut = registry.get(step.api, step.mut_name)
        case = TestCase(mut.name, index, step.value_names)
        outcome = executor.run_case(mut, case)
        result.outcomes.append(outcome)
        if outcome.code is CaseCode.CATASTROPHIC:
            result.crashed = True
            result.crash_step = index
            break
    result.corruption_level = machine.corruption_level if not machine.crashed else (
        personality.corruption_tolerance + 1
    )
    return result
