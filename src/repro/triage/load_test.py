"""Heavy-load robustness testing (the paper's other future-work item).

"Future work on Windows testing will include looking for dependability
problems caused by heavy load conditions..." (paper, section 5).  Also:
"nor did we test the systems under heavy loading conditions" (section 4).

The load model is mechanistic: before the campaign runs, *load
processes* fill machine-global resources -- they populate the filesystem
up to a small headroom below its capacity and pre-stress the shared
system arena on 9x/CE personalities.  The same deterministic MuT case
sequences then run twice, unloaded and loaded, and the report compares
per-class outcome rates:

* error-return rates rise under load (calls now hit ``ENOSPC`` /
  ``ERROR_DISK_FULL`` paths -- robust handling of these paths is itself
  being measured);
* on shared-arena personalities, corrupting (``*``) functions cross the
  machine's corruption tolerance **earlier**, so crashes that need
  thousands of unloaded cases appear within a handful -- the mechanism
  behind "load makes flaky machines flakier".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.crash_scale import CaseCode
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator
from repro.core.mut import MuTRegistry, default_registry
from repro.core.types import TypeRegistry, default_types
from repro.sim.machine import Machine
from repro.sim.personality import Personality

#: Filesystem capacity used for loaded runs.
DEFAULT_DISK_CAPACITY = 64
#: Files left free below capacity when pre-filling.
DISK_HEADROOM = 4


@dataclass
class LoadDelta:
    """Outcome-rate comparison for one MuT, unloaded vs loaded."""

    mut_name: str
    api: str
    unloaded: dict[str, float] = field(default_factory=dict)
    loaded: dict[str, float] = field(default_factory=dict)
    crashed_unloaded: bool = False
    crashed_loaded: bool = False
    crash_case_unloaded: int | None = None
    crash_case_loaded: int | None = None

    @property
    def crash_appeared_under_load(self) -> bool:
        return self.crashed_loaded and not self.crashed_unloaded

    @property
    def crash_accelerated(self) -> bool:
        return (
            self.crashed_loaded
            and self.crashed_unloaded
            and (self.crash_case_loaded or 0) < (self.crash_case_unloaded or 0)
        )


@dataclass
class LoadReport:
    """Full loaded-vs-unloaded comparison for one variant."""

    variant: str
    capacity: int
    deltas: list[LoadDelta] = field(default_factory=list)

    def new_crashes(self) -> list[LoadDelta]:
        return [d for d in self.deltas if d.crash_appeared_under_load]

    def accelerated_crashes(self) -> list[LoadDelta]:
        return [d for d in self.deltas if d.crash_accelerated]

    def render(self) -> str:
        lines = [
            f"Heavy-load comparison on {self.variant} "
            f"(disk capacity {self.capacity} files)",
            "",
            f"  {'MuT':28s} {'err% idle':>10s} {'err% load':>10s}  crash",
        ]
        for delta in self.deltas:
            idle_err = 100 * delta.unloaded.get("pass_error", 0.0)
            load_err = 100 * delta.loaded.get("pass_error", 0.0)
            crash = ""
            if delta.crash_appeared_under_load:
                crash = "NEW under load"
            elif delta.crash_accelerated:
                crash = (
                    f"case {delta.crash_case_unloaded} -> "
                    f"{delta.crash_case_loaded}"
                )
            elif delta.crashed_loaded:
                crash = "crashes both"
            lines.append(
                f"  {delta.mut_name:28s} {idle_err:9.1f}% {load_err:9.1f}%  {crash}"
            )
        return "\n".join(lines)


def _apply_load(machine: Machine) -> None:
    """The load processes: fill the disk to near capacity and stress the
    shared arena the way long-running 9x desktops did."""
    capacity = machine.fs.max_files or DEFAULT_DISK_CAPACITY
    target = max(capacity - DISK_HEADROOM, 0)
    index = 0
    while machine.fs._file_count < target:
        # Deliberate out-of-band wear: the load study *is* the disk
        # pressure, applied before any seam snapshot exists.
        machine.fs.create_file(  # lint: allow(wear-escape)
            f"/tmp/load_{index:05d}.dat", b"x" * 32
        )
        index += 1
    if machine.shared_region is not None:
        # Long-uptime residue: the arena has already absorbed most of
        # the corruption the machine can take.  Deliberate out-of-band
        # wear, same as above.
        for _ in range(max(machine.personality.corruption_tolerance - 1, 0)):
            machine.note_corruption("<background load>")  # lint: allow(wear-escape)


def _rates(codes: list[int]) -> dict[str, float]:
    executed = [c for c in codes if CaseCode(c).counts_as_executed]
    if not executed:
        return {}
    total = len(executed)
    return {
        "pass_no_error": executed.count(int(CaseCode.PASS_NO_ERROR)) / total,
        "pass_error": executed.count(int(CaseCode.PASS_ERROR)) / total,
        "abort": executed.count(int(CaseCode.ABORT)) / total,
        "restart": executed.count(int(CaseCode.RESTART)) / total,
    }


def run_load_comparison(
    personality: Personality,
    mut_names: list[str],
    cap: int = 80,
    capacity: int = DEFAULT_DISK_CAPACITY,
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
) -> LoadReport:
    """Run the same deterministic cases unloaded and loaded, per MuT.

    Each MuT gets a fresh machine in both modes so results are
    attributable; the loaded machine is pre-filled by :func:`_apply_load`
    before its first case.
    """
    registry = registry or default_registry()
    types = types or default_types()
    generator = CaseGenerator(types, cap=cap)
    wanted = set(mut_names)
    muts = [m for m in registry.for_variant(personality) if m.name in wanted]
    report = LoadReport(personality.key, capacity)

    for mut in muts:
        delta = LoadDelta(mut.name, mut.api)
        for loaded in (False, True):
            machine = Machine(
                personality, fs_max_files=capacity if loaded else None
            )
            if loaded:
                _apply_load(machine)
            executor = Executor(machine, generator)
            codes: list[int] = []
            crash_case = None
            for case in generator.cases(mut):
                outcome = executor.run_case(mut, case)
                codes.append(int(outcome.code))
                if outcome.code is CaseCode.CATASTROPHIC:
                    crash_case = case.index
                    break
            if loaded:
                delta.loaded = _rates(codes)
                delta.crashed_loaded = crash_case is not None
                delta.crash_case_loaded = crash_case
            else:
                delta.unloaded = _rates(codes)
                delta.crashed_unloaded = crash_case is not None
                delta.crash_case_unloaded = crash_case
        report.deltas.append(delta)
    return report


# ----------------------------------------------------------------------
# Service-level load: many concurrent tenants against one service
# ----------------------------------------------------------------------

#: Default per-tenant variant rotation for :func:`run_service_load`.
SERVICE_LOAD_VARIANTS = ("winnt", "win98", "linux", "wince", "win2000")
#: Default MuT subset: one representative per plausibility class keeps
#: each tenant campaign small enough to run dozens concurrently.
SERVICE_LOAD_MUTS = (
    "GetThreadContext",
    "CloseHandle",
    "strcpy",
    "isalpha",
    "fclose",
)


@dataclass
class TenantOutcome:
    """One tenant's submit-and-stream round trip."""

    tenant: str
    variants: tuple[str, ...]
    job_id: str | None = None
    cases: int = 0
    elapsed_s: float = 0.0
    #: ``None`` when verification was skipped, else whether the streamed
    #: result set equals the same campaign run serially in-process.
    verified: bool | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.verified is not False


@dataclass
class ServiceLoadReport:
    """Multi-tenant load run against one campaign service."""

    host: str
    port: int
    cap: int
    outcomes: list[TenantOutcome] = field(default_factory=list)

    def failures(self) -> list[TenantOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failures()

    def render(self) -> str:
        lines = [
            f"Service load: {len(self.outcomes)} tenants against "
            f"{self.host}:{self.port} (cap {self.cap})",
            "",
            f"  {'tenant':12s} {'variants':20s} {'cases':>7s} "
            f"{'elapsed':>8s}  status",
        ]
        for o in self.outcomes:
            if o.error is not None:
                status = f"ERROR: {o.error}"
            elif o.verified is False:
                status = "MISMATCH vs serial"
            elif o.verified:
                status = "ok, verified"
            else:
                status = "ok"
            lines.append(
                f"  {o.tenant:12s} {','.join(o.variants):20s} "
                f"{o.cases:7d} {o.elapsed_s:7.2f}s  {status}"
            )
        return "\n".join(lines)


def run_service_load(
    host: str,
    port: int,
    tenants: int = 4,
    cap: int = 30,
    muts: tuple[str, ...] = SERVICE_LOAD_MUTS,
    variants: tuple[str, ...] = SERVICE_LOAD_VARIANTS,
    timeout: float = 300.0,
    verify: bool = True,
) -> ServiceLoadReport:
    """Drive ``tenants`` concurrent clients against a running service.

    Each tenant thread submits a deterministic spec (variant drawn by
    rotation from ``variants``, so concurrent tenants exercise distinct
    shards) and streams its results to completion.  With ``verify`` the
    streamed result set is compared against the same campaign run
    serially in-process -- the service's central robustness contract,
    checked under load.
    """
    import threading

    from repro.core.results_io import results_to_dict
    from repro.service.client import ServiceClient

    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    report = ServiceLoadReport(host, port, cap)
    outcomes = [
        TenantOutcome(
            tenant=f"tenant-{index:02d}",
            variants=(variants[index % len(variants)],),
        )
        for index in range(tenants)
    ]

    # Serial references, computed once per distinct variant (not per
    # tenant -- identical specs resolve to the same document).
    references: dict[tuple[str, ...], dict] = {}
    if verify:
        from repro import ALL_VARIANTS
        from repro.core.campaign import Campaign, CampaignConfig

        by_key = {p.key: p for p in ALL_VARIANTS}
        for outcome in outcomes:
            if outcome.variants in references:
                continue
            serial = Campaign(
                [by_key[k] for k in outcome.variants],
                config=CampaignConfig(cap=cap),
                muts=list(muts),
            ).run()
            references[outcome.variants] = results_to_dict(serial)

    def run_tenant(outcome: TenantOutcome) -> None:
        started = time.monotonic()
        try:
            client = ServiceClient.connect(host, port)
            try:
                outcome.job_id, _ = client.submit(
                    list(outcome.variants),
                    cap=cap,
                    muts=list(muts),
                    tenant=outcome.tenant,
                )
                results = client.stream(outcome.job_id, timeout=timeout)
            finally:
                client.close()
            outcome.cases = results.total_cases()
            if verify:
                outcome.verified = (
                    results_to_dict(results) == references[outcome.variants]
                )
        except Exception as exc:  # noqa: BLE001 - reported per tenant
            outcome.error = f"{type(exc).__name__}: {exc}"
        finally:
            outcome.elapsed_s = time.monotonic() - started

    threads = [
        threading.Thread(target=run_tenant, args=(outcome,))
        for outcome in outcomes
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.outcomes.extend(outcomes)
    return report
