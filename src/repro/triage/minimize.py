"""Delta-debugging minimisation of interference crashes.

The paper's ``*`` crashes "could not be reproduced outside of the test
harness" because they need the residue of earlier test cases.  This
module automates what the authors proposed as future work:

1. :func:`capture_crash_prefix` re-runs a MuT's deterministic campaign
   sequence on a fresh machine and captures every case up to and
   including the crash;
2. :func:`minimize_crash_sequence` applies ddmin (Zeller & Hildebrandt's
   delta debugging) to that prefix, shrinking it to a *1-minimal*
   sequence -- removing any single step no longer crashes;
3. :func:`render_repro_program` prints the minimal sequence as a
   standalone C-style program, the paper-Listing-1-shaped artefact an
   engineer can file in a bug report.
"""

from __future__ import annotations

from typing import Callable

from repro.core.generator import CaseGenerator
from repro.core.mut import MuTRegistry, default_registry
from repro.core.types import TypeRegistry, default_types
from repro.sim.personality import Personality
from repro.triage.sequence import SequenceStep, replay_sequence


def capture_crash_prefix(
    personality: Personality,
    mut_name: str,
    cap: int = 300,
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
    api: str | None = None,
) -> list[SequenceStep] | None:
    """The campaign case sequence for ``mut_name`` up to its crash, or
    ``None`` if the MuT does not crash within ``cap`` cases."""
    registry = registry or default_registry()
    types = types or default_types()
    mut = registry.get(api, mut_name) if api else registry.find(mut_name)
    generator = CaseGenerator(types, cap=cap)
    steps = [
        SequenceStep(mut.api, mut.name, case.value_names)
        for case in generator.cases(mut)
    ]
    outcome = replay_sequence(personality, steps, registry, types)
    if not outcome.crashed:
        return None
    return steps[: outcome.crash_step + 1]


def minimize_crash_sequence(
    personality: Personality,
    steps: list[SequenceStep],
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
    progress: Callable[[int, int], None] | None = None,
    **replay_options,
) -> list[SequenceStep]:
    """ddmin: shrink ``steps`` to a 1-minimal crashing sequence.

    Every candidate is validated by full deterministic replay on a fresh
    machine, so the result is a genuine standalone reproducer (not an
    artefact of leftover state).  Raises ``ValueError`` if ``steps`` does
    not crash to begin with.  ``replay_options`` pass through to
    :func:`~repro.triage.sequence.replay_sequence` (``shared_process``
    for sequence-campaign crashes, ``base_wear`` for dirty-machine
    crashes), so the candidate replays happen under the same regime the
    crash was observed in.
    """
    registry = registry or default_registry()
    types = types or default_types()
    replays = 0

    def crashes(candidate: list[SequenceStep]) -> bool:
        nonlocal replays
        replays += 1
        if progress is not None:
            progress(replays, len(candidate))
        return replay_sequence(
            personality, candidate, registry, types, **replay_options
        ).crashed

    if not crashes(steps):
        raise ValueError("the given sequence does not crash; nothing to minimise")

    current = list(steps)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and crashes(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # restart the scan on the reduced sequence
                start = 0
                chunk = max(1, len(current) // granularity)
                continue
            start += chunk
        if not reduced:
            if granularity >= len(current):
                break  # 1-minimal
            granularity = min(len(current), granularity * 2)
    return current


def steps_from_sequence_record(record: dict) -> list[SequenceStep]:
    """Rebuild the replayable steps from a campaign's sequence record
    (the ``sequence`` field of a ``--mode sequence`` result row).

    The fault decision is re-attached to the armed step itself so it
    survives minimisation (see
    :attr:`~repro.core.sequences.SequenceStep.fault_family`).
    """
    fault = record.get("fault") or {}
    fault_step = fault.get("step")
    return [
        SequenceStep(
            step["api"],
            step["mut"],
            tuple(step["values"]),
            fault_family=(
                fault["family"] if index == fault_step else None
            ),
        )
        for index, step in enumerate(record.get("steps", []))
    ]


def minimize_from_sequence_record(
    personality: Personality,
    record: dict,
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list[SequenceStep]:
    """The campaign-output repro path: minimise a crashed sequence row.

    Takes the ``sequence`` record of a Catastrophic ``--mode sequence``
    result row, truncates the plan to its crashing prefix, and runs
    ddmin under the campaign's own execution regime -- one shared
    process, and (for dirty-machine crashes) the recorded starting wear.
    Raises ``ValueError`` when the record holds no crash.
    """
    crash_step = record.get("crash_step")
    if crash_step is None:
        raise ValueError("sequence record holds no Catastrophic step")
    steps = steps_from_sequence_record(record)[: crash_step + 1]
    return minimize_crash_sequence(
        personality,
        steps,
        registry,
        types,
        progress=progress,
        shared_process=True,
        base_wear=record.get("base_wear"),
    )


#: C renderings for the common test-value names (enough to print
#: readable repro programs; unknown names fall back to the pool name).
_VALUE_AS_C = {
    "PTR_NULL": "NULL",
    "PTR_ONE": "(void *) 1",
    "PTR_NEG_ONE": "(void *) -1",
    "PTR_FREED": "freed_buffer",
    "PTR_READONLY": "readonly_page",
    "PTR_ODD": "buffer + 1",
    "PTR_SMALL16": "small_buffer",
    "PTR_PAGE": "page_buffer",
    "PTR_SHARED_ARENA": "(void *) 0x80000800",
    "PTR_CODE": "(void *) &main",
    "TH_CURRENT": "GetCurrentThread()",
    "PH_CURRENT": "GetCurrentProcess()",
    "H_NULL": "(HANDLE) NULL",
    "H_INVALID": "INVALID_HANDLE_VALUE",
    "FILE_NULL": "(FILE *) NULL",
    "FILE_WILD_BUFFER": "(FILE *) string_buffer",
    "STR_SHORT": "\"ballista\"",
    "STR_EMPTY": "\"\"",
    "SIZE_MAX": "(size_t) -1",
    "SIZE_INT_MAX": "0x7fffffff",
    "TO_INFINITE": "INFINITE",
}


def render_repro_program(
    personality: Personality, steps: list[SequenceStep]
) -> str:
    """Render a minimal crashing sequence as a standalone C-style repro
    program (the shape of the paper's Listing 1)."""
    lines = [
        "/*",
        f" * Standalone reproduction for a Catastrophic failure on "
        f"{personality.name}.",
        f" * Replaying these {len(steps)} call(s) in order crashes the "
        "machine;",
        " * removing any single call no longer does (ddmin 1-minimal).",
        " */",
        "int main(void) {",
    ]
    for step in steps:
        rendered = ", ".join(
            _VALUE_AS_C.get(name, name.lower()) for name in step.value_names
        )
        lines.append(f"    {step.mut_name}({rendered});")
    lines += ["    return 0;   /* never reached */", "}"]
    return "\n".join(lines)
