"""The ``repro lint`` subcommand.

Usage::

    python -m repro lint                      # text report, exit 1 on findings
    python -m repro lint --json               # JSON report on stdout
    python -m repro lint --fail-on-new        # fail only on non-baselined findings
    python -m repro lint --report lint.json   # also write the JSON report to a file
    python -m repro lint --write-baseline     # accept current findings
    python -m repro lint --explain <rule>     # print a rule's rationale
    python -m repro lint --list-rules         # enumerate registered rules
    python -m repro lint --diff HEAD~1        # only findings in changed files
    python -m repro lint --graph-json g.json  # dump the call graph (CI artifact)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    BaselineFormatError,
    load_baseline,
    split_new,
    write_baseline,
)
from repro.lint.framework import (
    Project,
    all_checkers,
    checker_names,
    get_checker,
    run_lint,
)
from repro.lint.report import render_text, report_to_dict

#: Default on-disk home of the interprocedural engine's per-file
#: summary cache (content-hash keyed; see repro/lint/graph.py).
DEFAULT_CACHE = ".lint-cache.json"


def _changed_files(base: str) -> set[str] | None:
    """Paths changed since ``base`` (``git diff --name-only``),
    normalized to the finding convention (relative to the source root,
    so ``src/repro/core/x.py`` -> ``repro/core/x.py``).  Returns None
    when git fails."""
    proc = subprocess.run(
        ["git", "diff", "--name-only", base, "--"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    changed: set[str] = set()
    for raw in proc.stdout.splitlines():
        raw = raw.strip()
        if not raw.endswith(".py"):
            continue
        path = pathlib.PurePosixPath(raw).as_posix()
        if "repro/" in path:
            changed.add("repro/" + path.split("repro/", 1)[1])
        else:
            changed.add(path)
    return changed


def _explain(rule: str) -> str:
    if rule == "all":
        chunks = [_explain(name) for name in checker_names()]
        return "\n\n".join(chunks)
    checker = get_checker(rule)
    header = f"{checker.name} -- {checker.title}"
    return f"{header}\n{'=' * len(header)}\n{checker.rationale}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis for the Ballista reproduction: registry "
            "contracts, determinism (per-file and propagated through "
            "the call graph), sim isolation, serialization versioning, "
            "exception discipline, cross-thread concurrency contracts, "
            "spawn pickle-safety, and machine wear-escape."
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write the JSON report to PATH (the CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=(
            "baseline of accepted finding fingerprints "
            f"(default: {DEFAULT_BASELINE}; a missing file is an empty "
            "baseline)"
        ),
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        help=(
            "exit nonzero only for findings absent from the baseline "
            "(without this flag, any finding fails the run)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--checkers",
        metavar="LIST",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help=(
            "source root containing the repro package (default: the "
            "tree the importable repro package lives in)"
        ),
    )
    parser.add_argument(
        "--diff",
        metavar="BASE",
        help=(
            "report only findings in files changed since the git ref "
            "BASE (the call graph is still built whole-project, so "
            "interprocedural findings in changed files stay accurate); "
            "fast pre-commit mode, see `make lint-fast`"
        ),
    )
    parser.add_argument(
        "--graph-json",
        metavar="PATH",
        help="also write the resolved call graph as JSON to PATH "
        "(the CI artifact)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=DEFAULT_CACHE,
        help=(
            "content-hash summary cache for the interprocedural engine "
            f"(default: {DEFAULT_CACHE}); warm runs skip the per-file "
            "summary walk for unchanged files"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="build the call graph in memory without touching the cache",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print the rule's rationale (with the paper requirement it "
        "protects) and exit; 'all' explains every rule",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.name:24s} {checker.title}")
        return 0
    if args.explain:
        try:
            print(_explain(args.explain))
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        return 0

    checkers = None
    if args.checkers:
        wanted = [n.strip() for n in args.checkers.split(",") if n.strip()]
        try:
            checkers = [get_checker(name) for name in wanted]
        except KeyError as exc:
            parser.error(str(exc.args[0]))

    try:
        baseline = load_baseline(args.baseline)
    except BaselineFormatError as exc:
        parser.error(str(exc))

    changed: set[str] | None = None
    if args.diff:
        changed = _changed_files(args.diff)
        if changed is None:
            parser.error(
                f"--diff {args.diff}: git diff failed (not a git "
                "checkout, or an unknown ref)"
            )

    project = Project(
        root=args.root, cache_path=None if args.no_cache else args.cache
    )
    result = run_lint(project, checkers=checkers)

    if changed is not None:
        # Registry-level findings (path == "") always survive the
        # filter: they have no home file to be "unchanged".
        result.findings = [
            f for f in result.findings if not f.path or f.path in changed
        ]
        result.suppressed = [
            f for f in result.suppressed if not f.path or f.path in changed
        ]

    if args.graph_json:
        with open(args.graph_json, "w", encoding="utf-8") as fh:
            json.dump(project.graph().to_json(), fh, indent=2)
            fh.write("\n")

    if args.write_baseline:
        write_baseline(result.findings, args.baseline)
        print(
            f"baselined {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"into {args.baseline}"
        )
        return 0

    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report_to_dict(result, baseline), fh, indent=2)
            fh.write("\n")
    if args.json:
        print(json.dumps(report_to_dict(result, baseline), indent=2))
    else:
        print(render_text(result, baseline))

    new, _ = split_new(result.findings, baseline)
    failing = new if args.fail_on_new else result.findings
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover - exercised via `repro lint`
    sys.exit(main())
