"""Fixpoint property propagation over the lint call graph.

Two lattice shapes cover every interprocedural checker so far:

* :func:`propagate_union` -- a **may** analysis.  The lattice element is
  a set of facts, the transfer function is set union, and facts flow
  from callee to caller ("anything my callee may do, I may do").  Used
  by determinism-propagation (the facts are impurity origins like
  ``"time.time() at repro/service/x.py:12"``) and pickle-safety (the
  facts are unsafe-attribute reasons flowing up the containment graph).
  Monotone over a finite lattice, so the worklist terminates; cycles in
  the call graph simply converge.

* :func:`entry_must_locks` -- a **must** analysis.  The lattice element
  is the set of locks guaranteed held at function entry, the transfer
  function along a call edge is ``entry(caller) | locks_at_call_site``,
  and the join over multiple callers is set *intersection* (a lock is
  only guaranteed if every path holds it).  Used by the concurrency
  checker to accept ``_handle_message`` mutating shared state without a
  lexical ``with self._lock`` -- every caller provably holds the lock.

Both operate on plain dicts so unit tests can drive them without
building a real project graph.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping


def propagate_union(
    seeds: Mapping[str, Iterable[Hashable]],
    callers: Mapping[str, Iterable[str]],
) -> dict[str, set]:
    """Union facts from callee to caller until fixpoint.

    :param seeds: node -> facts the node generates itself.
    :param callers: node -> nodes that call it (reverse call edges).
    :returns: node -> every fact the node may transitively reach.  Nodes
        with no facts are absent from the result.
    """
    props: dict[str, set] = {
        node: set(facts) for node, facts in seeds.items() if facts
    }
    work = deque(props)
    while work:
        node = work.popleft()
        facts = props.get(node)
        if not facts:
            continue
        for caller in callers.get(node, ()):
            current = props.setdefault(caller, set())
            before = len(current)
            current |= facts
            if len(current) != before:
                work.append(caller)
    return {node: facts for node, facts in props.items() if facts}


def entry_must_locks(
    roots: Iterable[str],
    edges: Mapping[str, Iterable[tuple[str, frozenset]]],
) -> dict[str, frozenset]:
    """Locks guaranteed held at entry of every function reachable from
    ``roots``.

    :param roots: entry points (thread run loops); their entry set is
        empty -- nothing is held when a thread starts.
    :param edges: caller -> ``(callee, locks_held_at_call_site)`` pairs.
    :returns: function -> the intersection over all reaching call paths
        of the locks held when it is entered.  Functions unreachable
        from ``roots`` are absent (they cannot run on these threads).
    """
    entry: dict[str, frozenset] = {root: frozenset() for root in roots}
    work = deque(entry)
    while work:
        caller = work.popleft()
        held = entry[caller]
        for callee, site_locks in edges.get(caller, ()):
            candidate = held | site_locks
            previous = entry.get(callee)
            if previous is None:
                entry[callee] = frozenset(candidate)
                work.append(callee)
            else:
                narrowed = previous & candidate
                if narrowed != previous:
                    entry[callee] = narrowed
                    work.append(callee)
    return entry
