"""Core machinery for ``repro lint``: findings, checkers, the project model.

The lint pass combines two kinds of analysis:

* **AST checks** walk the source tree under ``src/repro`` and flag
  syntactic contract violations (a ``time.time()`` call in a
  determinism-critical package, a real ``open()`` inside a simulated
  MuT implementation, a bare ``except:``).
* **Introspection checks** import the live registries
  (:func:`repro.core.mut.default_registry`,
  :func:`repro.core.types.default_types`) and serialized dataclasses and
  compare them against the checked-in manifests in
  :mod:`repro.lint.manifests` -- the paper's platform matrix and the
  pinned serialization field lists.

Checkers are pluggable: subclass :class:`Checker`, decorate with
:func:`register_checker`, and ``repro lint`` picks the new rule up
automatically (see docs/EXTENDING.md).

Deliberate exceptions are annotated in source with an inline pragma::

    deadline = time.time() + budget  # lint: allow(determinism)

A pragma suppresses findings of the named rule(s) on its own line and on
the immediately following line (so it can sit on a comment line above a
long statement).
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mut import MuTRegistry
    from repro.core.types import TypeRegistry

#: ``# lint: allow(rule)`` / ``# lint: allow(rule-a, rule-b)``
_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\(\s*([A-Za-z0-9_\-, ]+?)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    :param rule: checker name (``"determinism"``); the unit pragmas,
        baselines and ``--explain`` operate on.
    :param code: machine-readable sub-rule (``"DET-WALLCLOCK"``).
    :param message: human-readable description of the violation.
    :param path: source path relative to the scanned root, ``""`` for
        registry-level findings with no single home file.
    :param line: 1-based source line, 0 when not file-anchored.
    """

    rule: str
    code: str
    message: str
    path: str = ""
    line: int = 0

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baselines: deliberately excludes the
        line number so unrelated edits above a baselined violation do
        not make it look new."""
        return f"{self.rule}:{self.code}:{self.path}:{self.message}"

    @property
    def location(self) -> str:
        if not self.path:
            return "<registry>"
        return f"{self.path}:{self.line}" if self.line else self.path

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.code, self.message)


class SourceFile:
    """One parsed source file plus its pragma annotations."""

    def __init__(self, root: pathlib.Path, path: pathlib.Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self._tree: ast.Module | None = None
        self.allowed: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                rules = frozenset(
                    r.strip() for r in match.group(1).split(",") if r.strip()
                )
                self.allowed[lineno] = rules

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.rel)
        return self._tree

    def allows(self, line: int, rule: str) -> bool:
        """True when a ``# lint: allow(rule)`` pragma covers ``line``."""
        for pragma_line in (line, line - 1):
            rules = self.allowed.get(pragma_line)
            if rules and (rule in rules or "*" in rules):
                return True
        return False

    @property
    def package(self) -> str:
        """Top-level package segment under the scanned root, e.g.
        ``"core"`` for ``repro/core/campaign.py``."""
        parts = pathlib.PurePosixPath(self.rel).parts
        # parts[0] == "repro" for in-tree files; a file directly under
        # repro/ (cli.py) reports package "".
        if len(parts) >= 3 and parts[0] == "repro":
            return parts[1]
        return ""


class Project:
    """The lint target: a source root plus the live registries.

    :param root: directory containing the ``repro`` package (the ``src``
        dir).  Defaults to the tree the importable :mod:`repro` package
        lives in, so running lint against a different checkout is just a
        matter of ``PYTHONPATH``.
    :param registry: injectable MuT registry (tests pass doctored ones);
        defaults to :func:`repro.core.mut.default_registry`.
    :param types: injectable type registry; defaults to
        :func:`repro.core.types.default_types`.
    :param cache_path: where the interprocedural engine persists its
        per-file summaries, keyed by content hash (see
        :mod:`repro.lint.graph`).  ``None`` (the default) builds the
        graph in memory only; the CLI passes ``.lint-cache.json`` so
        warm runs skip the summary extraction walk.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        registry: "MuTRegistry | None" = None,
        types: "TypeRegistry | None" = None,
        cache_path: str | pathlib.Path | None = None,
    ) -> None:
        if root is None:
            import repro

            root = pathlib.Path(repro.__file__).resolve().parent.parent
        self.root = pathlib.Path(root)
        self._registry = registry
        self._types = types
        self._files: dict[pathlib.Path, SourceFile] = {}
        self.cache_path = cache_path
        self._graph = None

    # -- sources -------------------------------------------------------

    def source_files(self, *packages: str) -> list[SourceFile]:
        """Parsed sources under ``repro/<package>`` for each requested
        package (all packages when none given), in stable path order."""
        base = self.root / "repro"
        roots = (
            [base] if not packages else [base / package for package in packages]
        )
        files: list[SourceFile] = []
        for package_root in roots:
            if not package_root.exists():
                continue
            paths = (
                [package_root]
                if package_root.is_file()
                else sorted(package_root.rglob("*.py"))
            )
            for path in paths:
                if path not in self._files:
                    self._files[path] = SourceFile(self.root, path)
                files.append(self._files[path])
        return files

    # -- interprocedural graph ----------------------------------------

    def graph(self):
        """The project-wide symbol table + call graph
        (:class:`repro.lint.graph.ProjectGraph`), built lazily and
        shared by every interprocedural checker in the run."""
        if self._graph is None:
            from repro.lint.graph import ProjectGraph

            self._graph = ProjectGraph.build(self, cache_path=self.cache_path)
        return self._graph

    # -- live registries ----------------------------------------------

    def registry(self) -> "MuTRegistry":
        if self._registry is None:
            from repro.core.mut import default_registry

            self._registry = default_registry()
        return self._registry

    def types(self) -> "TypeRegistry":
        if self._types is None:
            from repro.core.types import default_types

            self._types = default_types()
        return self._types


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`name` (the rule id used by pragmas, baselines
    and ``--explain``), :attr:`title`, and :attr:`rationale` (shown by
    ``repro lint --explain <rule>``, including the paper requirement the
    rule protects), and implement :meth:`run`.
    """

    name: str = ""
    title: str = ""
    rationale: str = ""

    def run(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, code: str, message: str, path: str = "", line: int = 0
    ) -> Finding:
        return Finding(self.name, code, message, path, line)


_CHECKERS: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global rule registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} must set a rule name")
    if cls.name in _CHECKERS:
        raise ValueError(f"checker {cls.name!r} already registered")
    _CHECKERS[cls.name] = cls
    return cls


def all_checkers() -> list[Checker]:
    """Instances of every registered checker, in stable name order."""
    import repro.lint.checkers  # noqa: F401  (registration side effect)

    return [_CHECKERS[name]() for name in sorted(_CHECKERS)]


def checker_names() -> list[str]:
    import repro.lint.checkers  # noqa: F401

    return sorted(_CHECKERS)


def get_checker(name: str) -> Checker:
    import repro.lint.checkers  # noqa: F401

    try:
        return _CHECKERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown lint rule {name!r}; choose from {sorted(_CHECKERS)}"
        ) from None


@dataclass
class LintResult:
    """Everything one lint pass produced."""

    findings: list[Finding] = field(default_factory=list)
    #: Violations silenced by an inline ``# lint: allow(...)`` pragma.
    suppressed: list[Finding] = field(default_factory=list)
    checkers: list[str] = field(default_factory=list)


def run_lint(
    project: Project | None = None, checkers: Iterable[Checker] | None = None
) -> LintResult:
    """Run every (or the given) checker over ``project``.

    Pragma suppression is applied here, centrally: a file-anchored
    finding whose line carries (or follows) a matching
    ``# lint: allow(rule)`` pragma moves to :attr:`LintResult.suppressed`
    instead of failing the run.
    """
    project = project or Project()
    active = list(checkers) if checkers is not None else all_checkers()
    result = LintResult(checkers=[c.name for c in active])
    by_rel = {f.rel: f for f in project.source_files()}
    for checker in active:
        for finding in checker.run(project):
            source = by_rel.get(finding.path)
            if (
                source is not None
                and finding.line
                and source.allows(finding.line, finding.rule)
            ):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)
    return result


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
