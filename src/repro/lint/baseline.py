"""Lint baselines: the committed set of accepted findings.

``repro lint --fail-on-new`` only fails on findings whose fingerprint is
absent from the baseline, so a genuinely unavoidable violation can be
accepted once (``repro lint --write-baseline``) instead of blocking CI
forever -- while anything *new* still fails.  The repo's committed
baseline (``lint-baseline.json``) is empty: real violations get fixed,
and deliberate exceptions are annotated in source with an inline
``# lint: allow(<rule>)`` pragma where the justification can live next
to the code.  Baselines are the escape hatch of last resort for
violations that cannot carry a pragma (registry-level findings).

Fingerprints exclude line numbers, so editing code above a baselined
violation does not make it look new.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.lint.framework import Finding

BASELINE_FORMAT = "ballista-lint-baseline"
BASELINE_VERSION = 1

#: Default committed baseline location, relative to the working dir.
DEFAULT_BASELINE = "lint-baseline.json"


class BaselineFormatError(ValueError):
    """The document is not a recognisable lint baseline."""


def load_baseline(path: str | pathlib.Path | None) -> set[str]:
    """Accepted fingerprints; a missing file is an empty baseline."""
    if path is None:
        return set()
    path = pathlib.Path(path)
    if not path.exists():
        return set()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineFormatError(f"{path}: not valid JSON: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("format") != BASELINE_FORMAT
    ):
        raise BaselineFormatError(f"{path}: not a lint baseline document")
    if document.get("version") != BASELINE_VERSION:
        raise BaselineFormatError(
            f"{path}: unsupported baseline version "
            f"{document.get('version')!r}"
        )
    fingerprints = document.get("fingerprints", [])
    if not isinstance(fingerprints, list):
        raise BaselineFormatError(f"{path}: fingerprints must be a list")
    return {str(fp) for fp in fingerprints}


def write_baseline(
    findings: Iterable[Finding], path: str | pathlib.Path
) -> None:
    """Write the given findings as the new accepted baseline."""
    document = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "fingerprints": sorted({f.fingerprint for f in findings}),
    }
    pathlib.Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def split_new(
    findings: Iterable[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined)."""
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in findings:
        (accepted if finding.fingerprint in baseline else new).append(finding)
    return new, accepted
