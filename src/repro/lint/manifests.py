"""Checked-in contracts the lint pass enforces.

Two manifests live here, deliberately as reviewable source rather than
derived state:

* :data:`PLATFORM_MATRIX` -- the paper's Table 1 platform matrix: how
  many system calls and C library functions each OS variant must expose
  through the MuT registry.  The registry-contract checker recomputes
  the per-variant counts from the live registry and fails on any drift,
  so an accidental edit to a registration table cannot silently change
  the population the reported failure rates are computed over.
* :data:`WALLCLOCK_ALLOWANCES` -- the package-scoped exceptions to the
  determinism checker's wall-clock rule.  The telemetry layer
  (:mod:`repro.obs`) exists to timestamp operational events, so its
  recorders legitimately read ``time.perf_counter``; nothing else may.
  Scoping the allowance here, per package and per call, keeps the rule
  reviewable: widening it is a manifest diff, not a silent pragma.
* :data:`POOL_PURITY` -- the memoized plan/value-pool layer and the
  machine-layer imports it must never take on.  Materialised case plans
  and type pools are shared across variants, shards, and sequences; the
  determinism checker keeps that layer machine-independent so the
  sharing stays sound.
* :data:`SERIALIZATION_PINS` -- the field lists of every dataclass the
  :mod:`repro.core.results_io` formats serialize, pinned together with
  the format version they were pinned at.  Changing a serialized field
  list without bumping the corresponding format version breaks the
  byte-identity guarantees the parallel/supervised runners prove
  against serial runs (PRs 2 and 5), so the serialization-version
  checker makes that an error.  The legitimate workflow when a format
  evolves: bump the version constant, teach the loader about both
  versions, and re-pin the entry here in the same commit.
"""

from __future__ import annotations

from dataclasses import dataclass

#: variant key -> required registry population, straight from the
#: paper's platform matrix ("133 syscalls + 94 C" for Windows 95,
#: "143 + 94" for 98/98SE/NT4/2000, "71 + 82" for CE, "91 + 94" for
#: RedHat Linux 6.0).  ``unicode_twins`` is the paper's "(108)"
#: parenthetical: the 26 wide-character twins tested only on Windows CE.
PLATFORM_MATRIX: dict[str, dict[str, int]] = {
    "win95": {"syscalls": 133, "c_functions": 94, "unicode_twins": 0},
    "win98": {"syscalls": 143, "c_functions": 94, "unicode_twins": 0},
    "win98se": {"syscalls": 143, "c_functions": 94, "unicode_twins": 0},
    "winnt": {"syscalls": 143, "c_functions": 94, "unicode_twins": 0},
    "win2000": {"syscalls": 143, "c_functions": 94, "unicode_twins": 0},
    "wince": {"syscalls": 71, "c_functions": 82, "unicode_twins": 26},
    "linux": {"syscalls": 91, "c_functions": 94, "unicode_twins": 0},
}

#: Number of CE wide-character twins ("18 functions (27 counting ASCII
#: and UNICODE separately)" implies the full 26-twin population).
CE_UNICODE_TWIN_COUNT = 26

#: package -> wall-clock calls that package may make despite the
#: determinism rule.  Telemetry recorders stamp a wall ``t`` on each
#: emitted record; the stamp never feeds results or checkpoints (event
#: *contents* carry simulated ticks), so the byte-identity guarantee is
#: untouched.  Monotonic perf_counter only -- absolute time.time stays
#: banned even in obs/ so event files never leak calendar timestamps.
WALLCLOCK_ALLOWANCES: dict[str, tuple[str, ...]] = {
    "obs": ("time.perf_counter", "time.perf_counter_ns"),
}

#: The sanctioned surface through which simulated-machine state may
#: change, enforced by the wear-escape checker.  Everything here is a
#: reviewable contract: widening the surface is a manifest diff.
#:
#: * ``sanctioned_files`` -- the test-execution layer.  The executor
#:   advances the simulated clock per call, the test context and value
#:   pools materialize fixture files; these *are* the machine's
#:   legitimate driver, and every effect they produce is part of the
#:   deterministic per-case trajectory the wear model accounts for.
#: * ``machine_methods`` -- the snapshot/lifecycle API on Machine
#:   itself.  Wear moves through these verbs by design.
#: * ``subobject_prefixes`` -- sub-objects that are themselves a
#:   sanctioned control plane (fault injection) or read-only config.
#: * ``wear_objects`` + ``readonly_calls`` -- wear-carrying sub-objects
#:   (filesystem, shared arena, simulated clock) on which only the
#:   listed read-only probes are allowed from orchestration code.
WEAR_API: dict[str, tuple[str, ...]] = {
    "sanctioned_files": (
        "repro/core/executor.py",
        "repro/core/context.py",
        "repro/core/values.py",
        # The CE target agent is the paper's device-side execution
        # layer: its result-file protocol (write outcome record, host
        # reads + deletes it) is part of the deterministic per-case
        # trajectory, exactly like the value pool's fixture files.
        "repro/service/ce_client.py",
    ),
    "machine_methods": (
        "wear_state",
        "restore_wear",
        "wear_residue",
        "reboot",
        # The copy-on-write snapshot verb: observable state identical to
        # a cold ``Machine(personality)`` rebuild, restored by reverting
        # wear against the pristine boot image instead of
        # reconstructing.  ``machine_per_case`` isolation runs through
        # it, so it is part of the sanctioned lifecycle surface.
        "revert",
        "spawn_process",
        "check_alive",
    ),
    "subobject_prefixes": ("faults", "personality"),
    "wear_objects": ("fs", "shared_region", "clock"),
    "readonly_calls": (
        "iter_files",
        "exists",
        "stat",
        "lookup",
        "tick_count",
        "unix_seconds",
    ),
}


#: The pool/plan layer the hot path memoizes: per-MuT case plans,
#: resolved value lists, and type-pool lookup tables are built once and
#: shared across *every* variant, shard slice, and sequence of a
#: campaign (their determinism contract: a pure function of MuT name,
#: pools, and cap).  That sharing is only sound while the layer stays
#: machine-independent, so the determinism checker bans these modules
#: from importing the machine, process, or API-personality layers --
#: a pool keyed (even accidentally) on machine or variant state would
#: poison the cross-variant reuse byte-identity relies on.  Simulation
#: *data structures* (memory layout constants, pipes, filesystem nodes)
#: remain fair game -- value constructors legitimately build those; the
#: ban targets the machine/personality layer and the per-variant API
#: facades.
POOL_PURITY: dict[str, tuple[str, ...]] = {
    "files": (
        "repro/core/generator.py",
        "repro/core/types.py",
        "repro/core/values.py",
    ),
    "banned_imports": (
        "repro.sim.machine",
        "repro.win32",
        "repro.posix",
        "repro.libc",
    ),
}


@dataclass(frozen=True)
class SerializationPin:
    """One serialized dataclass and the format version it is pinned at.

    :param cls: dotted path of the dataclass.
    :param version_const: dotted path of the format-version constant
        guarding its wire format.
    :param version: the value ``version_const`` had when ``fields`` was
        pinned.
    :param fields: ``dataclasses.fields`` names, in declaration order.
    """

    cls: str
    version_const: str
    version: int
    fields: tuple[str, ...]


SERIALIZATION_PINS: tuple[SerializationPin, ...] = (
    SerializationPin(
        cls="repro.core.results.MuTResult",
        version_const="repro.core.results_io.FORMAT_VERSION",
        version=3,
        fields=(
            "variant",
            "mut_name",
            "api",
            "group",
            "codes",
            "exceptional",
            "error_codes",
            "details",
            "failing_cases",
            "catastrophic",
            "interference_crash",
            "planned_cases",
            "capped",
            "sequence",
        ),
    ),
    SerializationPin(
        cls="repro.core.results.QuarantineRecord",
        version_const="repro.core.results_io.FORMAT_VERSION",
        version=3,
        fields=("variant", "api", "mut_name", "reason"),
    ),
    SerializationPin(
        cls="repro.core.results_io.CampaignCheckpoint",
        version_const="repro.core.results_io.CHECKPOINT_VERSION",
        version=3,
        fields=(
            "results",
            "cursors",
            "machine_wear",
            "cap",
            "variants",
            "complete",
            "supervision",
            "shard",
            "plan",
        ),
    ),
    SerializationPin(
        cls="repro.service.queue.JobSpec",
        version_const="repro.service.queue.QUEUE_VERSION",
        version=2,
        fields=(
            "tenant",
            "job_key",
            "variants",
            "cap",
            "muts",
            "checkpoint_every",
            "shards",
        ),
    ),
    SerializationPin(
        cls="repro.core.atlas.WearAtlas",
        version_const="repro.core.atlas.ATLAS_VERSION",
        version=1,
        fields=("plans", "seams"),
    ),
)
