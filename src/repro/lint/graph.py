"""Project-wide symbol table and call graph for interprocedural lint.

The per-file checkers in :mod:`repro.lint.checkers` see one AST at a
time, so a "clean" wrapper around a dirty helper, a field mutated from
two threads via three call hops, or a lambda smuggled into a spawn
payload are all invisible to them.  This module gives checkers a whole-
program view in three layers:

* **Summaries** -- :func:`extract_summary` walks each file's AST once
  and reduces it to a JSON-serializable fact table: functions with
  their outgoing calls (and the ``with self.<lock>`` context each call
  sits in), direct impurity (wall-clock / unseeded-RNG calls),
  ``self.<attr>`` reads and writes, module-global rebinds,
  ``Machine``-rooted operations, and ``threading.Thread`` /
  ``multiprocessing.Process`` spawn sites; classes with their bases,
  ``self.x = ...`` attribute initializers (described as resolved call
  text, ``"<lambda>"``, ``"<dict>"`` ...), and ``__reduce__`` /
  ``__getstate__`` markers.
* **Cache** -- summaries are pure functions of file *content*, so they
  are cached on disk keyed by a sha256 of the text.  A warm ``repro
  lint`` skips the summary walk entirely (only edited files re-parse),
  which is what keeps the interprocedural pass inside the existing <5s
  bench pin.  :attr:`ProjectGraph.cache_stats` reports hits/misses so
  tests and CI can prove the cache is live.
* **Graph** -- :class:`ProjectGraph` indexes every summary and resolves
  call text to fully-qualified targets: local defs, imports (absolute
  and relative), ``self.method()`` through base classes,
  ``ClassName(...)`` constructors, and one level of typed-attribute
  dispatch (``self.queue.submit()`` resolves through the recorded
  ``self.queue = JobQueue(...)`` initializer).  Anything dynamic --
  ``handler(...)`` through a variable, ``getattr`` -- stays unresolved,
  and checkers treat unresolved conservatively.  Bound-method
  *references* (``{"SUBMIT": self._on_submit}`` dispatch tables) become
  ``kind="ref"`` edges so reachability survives dispatch-by-dict.

Fixpoint propagation over the graph lives in :mod:`repro.lint.dataflow`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
from typing import TYPE_CHECKING, Iterable

from repro.lint.framework import SourceFile, dotted_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.framework import Project

#: Bump when the summary format changes; stale cache entries are
#: discarded wholesale rather than migrated.
SUMMARY_VERSION = 1

#: Method names that mutate their receiver in place.  A call
#: ``self.x.append(...)`` counts as a *write* to ``self.x`` even though
#: no assignment statement appears.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

_WALLCLOCK_IMPURITY = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy read",
    "uuid.uuid4": "OS entropy read",
}


def module_name(rel: str) -> str:
    """``repro/core/parallel.py`` -> ``repro.core.parallel``."""
    parts = list(pathlib.PurePosixPath(rel).parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``a.b[k].c`` -> ``["a", "b", "c"]`` (subscripts pass through)."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


def _describe_init(value: ast.expr) -> str:
    """A compact, cache-stable description of a ``self.x = <expr>``
    right-hand side, used for attribute type tagging."""
    if isinstance(value, ast.Lambda):
        return "<lambda>"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name if name else "<call>"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "<dict>"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "<list>"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "<set>"
    if isinstance(value, ast.Tuple):
        return "<tuple>"
    if isinstance(value, ast.Constant):
        return "<const>"
    if isinstance(value, ast.Name):
        return f"<name:{value.id}>"
    return "<expr>"


class _FunctionScanner(ast.NodeVisitor):
    """One pass over a single function body, collecting the fact table.

    Nested ``def``s get their own records (and a ``kind="ref"`` edge
    from the enclosing function, since defining a closure is how it
    escapes); lambdas are folded into the enclosing function.
    """

    def __init__(
        self,
        extractor: "_ModuleExtractor",
        qual: str,
        cls: str | None,
        node: ast.AST,
    ) -> None:
        self.extractor = extractor
        self.qual = qual
        self.cls = cls
        self.held: tuple[str, ...] = ()
        self.machine_vars: set[str] = {"machine"}
        self.local_defs: dict[str, str] = {}
        self.record: dict = {
            "name": qual.rsplit(".", 1)[-1],
            "cls": cls,
            "line": getattr(node, "lineno", 0),
            "calls": [],
            "impure": [],
            "reads": [],
            "writes": [],
            "attr_inits": [],
            "globals": [],
            "machine": [],
            "threads": [],
            "procs": [],
            "ctor_locals": {},
            "local_defs": self.local_defs,
        }
        args = getattr(node, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            ):
                if arg.annotation is not None:
                    try:
                        text = ast.unparse(arg.annotation)
                    except Exception:  # pragma: no cover - malformed ast
                        text = ""
                    if "Machine" in text:
                        self.machine_vars.add(arg.arg)

    # -- scope plumbing ------------------------------------------------

    def _scan_nested(self, node: ast.FunctionDef) -> None:
        qual = f"{self.qual}.{node.name}"
        self.local_defs[node.name] = qual
        self.record["calls"].append(
            {"name": node.name, "line": node.lineno, "locked": list(self.held), "kind": "ref"}
        )
        self.extractor.scan_function(node, qual, self.cls)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scan_nested(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Function-local classes are rare and out of scope; their bodies
        # still get scanned as part of this function (conservative).
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        held_before = self.held
        acquired = []
        for item in node.items:
            text = dotted_name(item.context_expr)
            if text and text.startswith("self.") and text.count(".") == 1:
                acquired.append(text.split(".", 1)[1])
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for item in node.items:
            self.visit(item.context_expr)
        self.held = tuple(dict.fromkeys(list(held_before) + acquired))
        for stmt in node.body:
            self.visit(stmt)
        self.held = held_before

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.record["globals"].append({"name": name, "line": node.lineno})

    # -- calls ---------------------------------------------------------

    def _keyword(self, node: ast.Call, name: str) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _arg_descriptor(self, node: ast.expr) -> dict:
        if isinstance(node, ast.Lambda):
            return {"kind": "lambda"}
        text = dotted_name(node)
        if text is None:
            return {"kind": "other"}
        parts = text.split(".")
        if parts[0] == "self" and len(parts) == 2:
            return {"kind": "self_attr", "attr": parts[1]}
        if len(parts) == 1:
            return {"kind": "name", "name": text}
        return {"kind": "other"}

    def _resolved(self, text: str) -> str:
        """Resolve the head segment through the module import map, so
        ``from time import time`` still reads as ``time.time``."""
        parts = text.split(".")
        mapped = self.extractor.imports.get(parts[0])
        if mapped is None:
            return text
        return ".".join([mapped] + parts[1:])

    def _check_impurity(self, text: str, node: ast.Call) -> None:
        for candidate in dict.fromkeys((text, self._resolved(text))):
            if candidate in _WALLCLOCK_IMPURITY:
                self.record["impure"].append(
                    {
                        "call": candidate,
                        "desc": _WALLCLOCK_IMPURITY[candidate],
                        "line": node.lineno,
                    }
                )
                return
        resolved = self._resolved(text)
        if resolved.startswith("random."):
            attr = resolved.split(".", 1)[1]
            if attr == "Random":
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if not unseeded:
                    return
            elif attr.startswith("_") or attr == "Random":
                return
            self.record["impure"].append(
                {
                    "call": resolved,
                    "desc": "unseeded RNG",
                    "line": node.lineno,
                }
            )

    def visit_Call(self, node: ast.Call) -> None:
        text = dotted_name(node.func)
        if text is not None:
            resolved = self._resolved(text)
            if resolved == "threading.Thread" or text.endswith(".Thread"):
                target = self._keyword(node, "target")
                target_text = (
                    "<lambda>"
                    if isinstance(target, ast.Lambda)
                    else (dotted_name(target) if target is not None else None)
                )
                if target_text:
                    self.record["threads"].append(
                        {"target": target_text, "line": node.lineno}
                    )
            elif resolved == "multiprocessing.Process" or text.endswith(
                ".Process"
            ):
                target = self._keyword(node, "target")
                args = self._keyword(node, "args")
                arg_list: list[dict] = []
                if isinstance(args, (ast.Tuple, ast.List)):
                    arg_list = [self._arg_descriptor(el) for el in args.elts]
                target_desc = (
                    "<lambda>"
                    if isinstance(target, ast.Lambda)
                    else (dotted_name(target) if target is not None else None)
                )
                self.record["procs"].append(
                    {
                        "target": target_desc,
                        "args": arg_list,
                        "line": node.lineno,
                    }
                )
            else:
                self._check_impurity(text, node)
                self.record["calls"].append(
                    {
                        "name": text,
                        "line": node.lineno,
                        "locked": list(self.held),
                        "kind": "call",
                    }
                )
            chain = text.split(".")
            rest = self._machine_rest(chain)
            if rest:
                self.record["machine"].append(
                    {
                        "kind": "call",
                        "rest": rest,
                        "expr": text,
                        "line": node.lineno,
                    }
                )
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        if text is None:
            self.visit(node.func)

    # -- attribute traffic ---------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            chain = _attr_chain(node)
            if chain and chain[0] == "self" and len(chain) >= 2:
                self.record["reads"].append(
                    {
                        "attr": chain[1],
                        "line": node.lineno,
                        "locked": list(self.held),
                    }
                )
        self.generic_visit(node)

    def _record_ref(self, text: str, line: int) -> None:
        # Bound-method reference taken without a call: dispatch tables,
        # callbacks.  Recorded as a "ref" pseudo-call so reachability
        # survives dispatch-by-dict; the lock context is deliberately
        # empty because the *call* can happen far from the reference.
        self.record["calls"].append(
            {"name": text, "line": line, "locked": [], "kind": "ref"}
        )

    def visit_Dict(self, node: ast.Dict) -> None:
        for value in node.values:
            if value is not None and isinstance(value, ast.Attribute):
                text = dotted_name(value)
                if text and text.startswith("self.") and text.count(".") == 1:
                    self._record_ref(text, value.lineno)
        self.generic_visit(node)

    def _target_chains(self, target: ast.expr) -> Iterable[list[str]]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                yield from self._target_chains(el)
            return
        if isinstance(target, ast.Starred):
            yield from self._target_chains(target.value)
            return
        chain = _attr_chain(target)
        if chain is not None and len(chain) >= 2:
            yield chain

    def _record_store(self, chain: list[str], line: int) -> None:
        if chain[0] == "self":
            self.record["writes"].append(
                {"attr": chain[1], "line": line, "locked": list(self.held)}
            )
        rest = self._machine_rest(chain)
        if rest:
            self.record["machine"].append(
                {
                    "kind": "store",
                    "rest": rest,
                    "expr": ".".join(chain),
                    "line": line,
                }
            )

    def _machine_rest(self, chain: list[str]) -> list[str] | None:
        if not chain or len(chain) < 2:
            return None
        if chain[0] in self.machine_vars:
            return chain[1:]
        for index, segment in enumerate(chain[:-1]):
            if segment == "machine":
                return chain[index + 1 :]
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for chain in self._target_chains(target):
                if chain[0] == "self" and len(chain) == 2:
                    self.record["attr_inits"].append(
                        {
                            "attr": chain[1],
                            "init": _describe_init(node.value),
                            "line": node.lineno,
                        }
                    )
                self._record_store(chain, node.lineno)
            if isinstance(target, ast.Name) and isinstance(
                node.value, ast.Call
            ):
                text = dotted_name(node.value.func)
                if text:
                    self.record["ctor_locals"][target.id] = text
                    resolved = self._resolved(text)
                    if resolved == "Machine" or resolved.endswith(".Machine"):
                        self.machine_vars.add(target.id)
        for target in node.targets:
            self.visit(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        for chain in self._target_chains(node.target):
            if chain[0] == "self" and len(chain) == 2 and node.value is not None:
                self.record["attr_inits"].append(
                    {
                        "attr": chain[1],
                        "init": _describe_init(node.value),
                        "line": node.lineno,
                    }
                )
            self._record_store(chain, node.lineno)
        self.visit(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for chain in self._target_chains(node.target):
            self._record_store(chain, node.lineno)
        self.visit(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            for chain in self._target_chains(target):
                self._record_store(chain, node.lineno)
            self.visit(target)


class _ModuleExtractor:
    """Reduces one parsed module to its JSON summary."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.module = module_name(source.rel)
        self.imports: dict[str, str] = {}
        self.functions: dict[str, dict] = {}
        self.classes: dict[str, dict] = {}

    def extract(self) -> dict:
        tree = self.source.tree
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports.setdefault(bound, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports.setdefault(bound, f"{base}.{alias.name}")
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan_function(stmt, f"{self.module}.{stmt.name}", None)
            elif isinstance(stmt, ast.ClassDef):
                self._scan_class(stmt)
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.source.rel,
            "package": self.source.package,
            "imports": self.imports,
            "functions": self.functions,
            "classes": self.classes,
        }

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        package_parts = self.module.split(".")
        if not self.source.rel.endswith("__init__.py"):
            package_parts = package_parts[:-1]
        strip = node.level - 1
        if strip:
            package_parts = package_parts[: len(package_parts) - strip]
        if not package_parts:
            return node.module
        base = ".".join(package_parts)
        return f"{base}.{node.module}" if node.module else base

    def scan_function(
        self, node, qual: str, cls: str | None
    ) -> None:
        scanner = _FunctionScanner(self, qual, cls, node)
        for stmt in node.body:
            scanner.visit(stmt)
        self.functions[qual] = scanner.record

    def _scan_class(self, node: ast.ClassDef) -> None:
        cls_qual = f"{self.module}.{node.name}"
        bases = [dotted_name(b) for b in node.bases]
        methods: list[str] = []
        method_nodes: list = []
        attrs: dict[str, dict] = {}
        has_reduce = False
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                method_nodes.append(stmt)
                if stmt.name in ("__reduce__", "__getstate__"):
                    has_reduce = True
        # __init__ first so its initializers win the first-writer rule.
        method_nodes.sort(key=lambda n: (n.name != "__init__",))
        for stmt in method_nodes:
            qual = f"{cls_qual}.{stmt.name}"
            self.scan_function(stmt, qual, cls_qual)
            for init in self.functions[qual]["attr_inits"]:
                attrs.setdefault(init["attr"], init)
        self.classes[cls_qual] = {
            "name": node.name,
            "line": node.lineno,
            "bases": [b for b in bases if b],
            "methods": methods,
            "attrs": attrs,
            "has_reduce": has_reduce,
        }


def extract_summary(source: SourceFile) -> dict:
    return _ModuleExtractor(source).extract()


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ProjectGraph:
    """Indexed summaries plus the resolved call graph."""

    def __init__(
        self, summaries: dict[str, dict], cache_stats: dict[str, int]
    ) -> None:
        self.summaries = summaries
        self.cache_stats = cache_stats
        self.modules: dict[str, dict] = {}
        self.functions: dict[str, dict] = {}
        self.classes: dict[str, dict] = {}
        self._funcs_by_module: dict[str, dict[str, str]] = {}
        self._classes_by_module: dict[str, dict[str, str]] = {}
        for rel, summary in summaries.items():
            mod = summary["module"]
            self.modules[mod] = summary
            funcs_by_name: dict[str, str] = {}
            classes_by_name: dict[str, str] = {}
            for qual, rec in summary["functions"].items():
                rec = dict(rec)
                rec["qual"] = qual
                rec["path"] = rel
                rec["module"] = mod
                rec["package"] = summary["package"]
                self.functions[qual] = rec
                if rec["cls"] is None and "." not in qual[len(mod) + 1 :]:
                    funcs_by_name[rec["name"]] = qual
            for qual, rec in summary["classes"].items():
                rec = dict(rec)
                rec["qual"] = qual
                rec["path"] = rel
                rec["module"] = mod
                self.classes[qual] = rec
                classes_by_name[rec["name"]] = qual
            self._funcs_by_module[mod] = funcs_by_name
            self._classes_by_module[mod] = classes_by_name
        self.edges: dict[str, list[dict]] = {}
        self.callers: dict[str, list[str]] = {}
        self._build_edges()

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        project: "Project",
        cache_path: str | pathlib.Path | None = None,
    ) -> "ProjectGraph":
        sources = project.source_files()
        cache_file = pathlib.Path(cache_path) if cache_path else None
        cached: dict[str, dict] = {}
        if cache_file is not None and cache_file.exists():
            try:
                raw = json.loads(cache_file.read_text(encoding="utf-8"))
                if raw.get("version") == SUMMARY_VERSION:
                    cached = raw.get("files", {})
            except (OSError, ValueError):
                cached = {}
        summaries: dict[str, dict] = {}
        entries: dict[str, dict] = {}
        stats = {"hits": 0, "misses": 0}
        for source in sources:
            digest = content_hash(source.text)
            entry = cached.get(source.rel)
            if entry is not None and entry.get("hash") == digest:
                stats["hits"] += 1
                summary = entry["summary"]
            else:
                stats["misses"] += 1
                summary = extract_summary(source)
            summaries[source.rel] = summary
            entries[source.rel] = {"hash": digest, "summary": summary}
        if cache_file is not None and (
            stats["misses"] or set(entries) != set(cached)
        ):
            payload = {"version": SUMMARY_VERSION, "files": entries}
            tmp = cache_file.with_suffix(cache_file.suffix + ".tmp")
            try:
                tmp.write_text(
                    json.dumps(payload, sort_keys=True), encoding="utf-8"
                )
                tmp.replace(cache_file)
            except OSError:  # pragma: no cover - read-only checkout
                pass
        return cls(summaries, stats)

    def _build_edges(self) -> None:
        for qual, rec in self.functions.items():
            out: list[dict] = []
            for call in rec["calls"]:
                callee = self.resolve(
                    call["name"],
                    rec["module"],
                    rec["cls"],
                    rec.get("local_defs"),
                )
                if callee is None or callee not in self.functions:
                    continue
                out.append(
                    {
                        "callee": callee,
                        "name": call["name"],
                        "line": call["line"],
                        "locked": tuple(call["locked"]),
                        "kind": call["kind"],
                    }
                )
            if out:
                self.edges[qual] = out
                for edge in out:
                    self.callers.setdefault(edge["callee"], []).append(qual)

    # -- resolution ----------------------------------------------------

    def method(self, cls_qual: str, name: str, depth: int = 0) -> str | None:
        """Resolve a method through ``cls_qual`` and its project bases."""
        if depth > 5:
            return None
        rec = self.classes.get(cls_qual)
        if rec is None:
            return None
        if name in rec["methods"]:
            return f"{cls_qual}.{name}"
        for base in rec["bases"]:
            base_qual = self.resolve_class(base, rec["module"])
            if base_qual:
                found = self.method(base_qual, name, depth + 1)
                if found:
                    return found
        return None

    def attr_init(self, cls_qual: str, attr: str, depth: int = 0) -> str | None:
        """The recorded initializer text for ``self.<attr>``, walking
        project base classes."""
        if depth > 5:
            return None
        rec = self.classes.get(cls_qual)
        if rec is None:
            return None
        init = rec["attrs"].get(attr)
        if init is not None:
            return init["init"]
        for base in rec["bases"]:
            base_qual = self.resolve_class(base, rec["module"])
            if base_qual:
                found = self.attr_init(base_qual, attr, depth + 1)
                if found:
                    return found
        return None

    def attr_class(self, cls_qual: str, attr: str) -> str | None:
        """Project class an attribute holds, via its initializer."""
        init = self.attr_init(cls_qual, attr)
        if init is None or init.startswith("<"):
            return None
        rec = self.classes.get(cls_qual)
        module = rec["module"] if rec else ""
        return self.resolve_class(init, module)

    def resolve_class(self, text: str, module: str) -> str | None:
        if text in self.classes:
            return text
        parts = text.split(".")
        by_name = self._classes_by_module.get(module, {})
        if len(parts) == 1 and parts[0] in by_name:
            return by_name[parts[0]]
        imports = self.modules.get(module, {}).get("imports", {})
        if parts[0] in imports:
            full = ".".join([imports[parts[0]]] + parts[1:])
            if full in self.classes:
                return full
        return None

    def resolve(
        self,
        text: str,
        module: str,
        cls_qual: str | None = None,
        local_defs: dict[str, str] | None = None,
    ) -> str | None:
        if local_defs and text in local_defs:
            return local_defs[text]
        parts = text.split(".")
        head = parts[0]
        if head in ("self", "cls") and cls_qual is not None:
            if len(parts) == 2:
                return self.method(cls_qual, parts[1])
            if len(parts) == 3:
                held = self.attr_class(cls_qual, parts[1])
                if held:
                    return self.method(held, parts[2])
            return None
        funcs = self._funcs_by_module.get(module, {})
        classes = self._classes_by_module.get(module, {})
        if len(parts) == 1:
            if head in funcs:
                return funcs[head]
            if head in classes:
                return self.method(classes[head], "__init__")
            # fall through to imports
        elif len(parts) == 2 and head in classes:
            return self.method(classes[head], parts[1])
        imports = self.modules.get(module, {}).get("imports", {})
        if head in imports:
            full = ".".join([imports[head]] + parts[1:])
            return self._resolve_absolute(full)
        return None

    def _resolve_absolute(self, full: str) -> str | None:
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix not in self.modules:
                continue
            rest = parts[cut:]
            funcs = self._funcs_by_module[prefix]
            classes = self._classes_by_module[prefix]
            if len(rest) == 1:
                if rest[0] in funcs:
                    return funcs[rest[0]]
                if rest[0] in classes:
                    return self.method(classes[rest[0]], "__init__")
            elif len(rest) == 2 and rest[0] in classes:
                return self.method(classes[rest[0]], rest[1])
            return None
        return None

    # -- derived facts -------------------------------------------------

    def thread_roots(self, cls_qual: str) -> dict[str, dict]:
        """``method qual -> spawn site`` for every ``threading.Thread``
        whose target is a ``self.<method>`` of this class."""
        roots: dict[str, dict] = {}
        rec = self.classes.get(cls_qual)
        if rec is None:
            return roots
        for name in rec["methods"]:
            fn = self.functions.get(f"{cls_qual}.{name}")
            if fn is None:
                continue
            for spawn in fn["threads"]:
                target = spawn["target"]
                if target.startswith("self.") and target.count(".") == 1:
                    method = self.method(cls_qual, target.split(".", 1)[1])
                    if method:
                        roots[method] = spawn
        return roots

    def process_targets(self) -> list[tuple[str, dict, dict]]:
        """``(spawn site function, spawn record, resolved target rec)``
        for every ``Process(target=...)`` whose target resolves to a
        project function."""
        sites: list[tuple[str, dict, dict]] = []
        for qual, rec in self.functions.items():
            for proc in rec["procs"]:
                target = proc.get("target")
                if not target or target == "<lambda>":
                    continue
                resolved = self.resolve(
                    target, rec["module"], rec["cls"], rec.get("local_defs")
                )
                if resolved and resolved in self.functions:
                    sites.append((qual, proc, self.functions[resolved]))
        return sites

    def reachable(self, roots: Iterable[str]) -> set[str]:
        seen = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for edge in self.edges.get(qual, ()):
                if edge["callee"] not in seen:
                    stack.append(edge["callee"])
        return seen

    def is_internally_locked(self, cls_qual: str) -> bool:
        """True when the class owns a threading lock attribute -- the
        convention for self-synchronizing components (JobQueue)."""
        rec = self.classes.get(cls_qual)
        if rec is None:
            return False
        for init in rec["attrs"].values():
            text = init["init"]
            if text.endswith((".Lock", ".RLock")) or text in ("Lock", "RLock"):
                return True
        return False

    # -- export --------------------------------------------------------

    def to_json(self) -> dict:
        nodes = [
            {
                "qual": qual,
                "path": rec["path"],
                "line": rec["line"],
                "package": rec["package"],
                "cls": rec["cls"],
            }
            for qual, rec in sorted(self.functions.items())
        ]
        edges = [
            {
                "caller": qual,
                "callee": edge["callee"],
                "line": edge["line"],
                "kind": edge["kind"],
            }
            for qual, out in sorted(self.edges.items())
            for edge in out
        ]
        return {
            "format": "ballista-lint-callgraph",
            "version": 1,
            "cache": dict(self.cache_stats),
            "counts": {
                "modules": len(self.modules),
                "functions": len(self.functions),
                "classes": len(self.classes),
                "edges": len(edges),
            },
            "nodes": nodes,
            "edges": edges,
        }
