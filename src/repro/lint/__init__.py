"""repro.lint -- Ballista-aware static analysis for the reproduction.

The ``repro lint`` subcommand enforces mechanically what earlier PRs
enforced only by convention: the MuT registry mirrors the paper's
platform matrix, campaign outcomes are bit-for-bit deterministic, MuT
implementations never escape the simulated machine, serialized formats
cannot drift without a version bump, and fault reporting stays inside
the SimFault taxonomy.

Public surface:

* :func:`repro.lint.framework.run_lint` / :class:`~repro.lint.framework.Project`
  -- run the pass programmatically.
* :class:`~repro.lint.framework.Checker` /
  :func:`~repro.lint.framework.register_checker` -- add rules
  (docs/EXTENDING.md has a recipe).
* :mod:`repro.lint.cli` -- the ``repro lint`` entry point.
* :mod:`repro.lint.manifests` -- the checked-in platform matrix and
  serialization pins.
* :mod:`repro.lint.graph` / :mod:`repro.lint.dataflow` -- the
  interprocedural engine: project-wide symbol table + call graph with a
  content-hash summary cache, and fixpoint property propagation over
  it (``Project.graph()`` is the entry point).
"""

from repro.lint.dataflow import entry_must_locks, propagate_union
from repro.lint.framework import (
    Checker,
    Finding,
    LintResult,
    Project,
    all_checkers,
    checker_names,
    get_checker,
    register_checker,
    run_lint,
)
from repro.lint.graph import ProjectGraph, extract_summary

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "Project",
    "ProjectGraph",
    "all_checkers",
    "checker_names",
    "entry_must_locks",
    "extract_summary",
    "get_checker",
    "propagate_union",
    "register_checker",
    "run_lint",
]
