"""Checker 9: machine wear only moves through the sanctioned API.

The exact-base shard seam model (PR 8) and sequence ``base_wear``
attribution (PR 10) both assume the *only* way simulated-machine state
changes between snapshots is the sanctioned surface: the wear snapshot
API (``wear_state``/``restore_wear``/``wear_residue``), the lifecycle
verbs (``reboot``, ``spawn_process``), the fault-injection plane
(``machine.faults.*``), and the test-execution layer itself
(executor/context/value pools, which *are* the machine's legitimate
driver).  Any other code poking ``machine.fs``, ``machine.clock`` or
``machine.shared_region`` mutates wear out of band: the wear
fingerprint recorded at the seam no longer describes the machine the
next shard boots from, and crash attribution silently shifts.

The project graph records every attribute store and call rooted at a
``Machine`` receiver (parameters annotated ``Machine``, locals assigned
``Machine(...)``, ``self.machine``/``ctx.machine`` chains); this
checker flags the ones outside the sanctioned surface declared in
:data:`repro.lint.manifests.WEAR_API`.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.framework import Checker, Finding, Project, register_checker
from repro.lint.manifests import WEAR_API

#: Packages where machine state may only move through the wear API.
#: sim/ is excluded -- it *implements* the machine -- and so are the
#: simulated OS layers (win32/posix/libc), which are the machine's own
#: syscall surface.
_SCOPED_PACKAGES = ("core", "service", "analysis", "triage", "obs")


@register_checker
class WearEscapeChecker(Checker):
    name = "wear-escape"
    title = "machine state mutates only through the sanctioned wear API"
    rationale = (
        "Intra-variant sharding proves shard N+1 boots from exactly the\n"
        "wear shard N recorded (the exact-base seam check), and sequence\n"
        "campaigns attribute crashes against a recorded base_wear.  Both\n"
        "proofs die silently if any orchestration code mutates machine\n"
        "state out of band -- a stray machine.clock.ticks = 0 or\n"
        "machine.fs.create_file() between snapshots makes the recorded\n"
        "wear fingerprint a lie.  The project graph tracks every store\n"
        "and call rooted at a Machine receiver; outside the sanctioned\n"
        "surface (wear_state/restore_wear/wear_residue/reboot/\n"
        "spawn_process/check_alive, the machine.faults.* injection\n"
        "plane, read-only probes, and the test-execution layer in\n"
        "executor/context/values, which is the machine's legitimate\n"
        "driver) every such operation is a finding.  Worked example:\n"
        "\n"
        "    def warm_up(machine: Machine) -> None:\n"
        "        machine.clock.ticks = 0            # WEAR-ESCAPE\n"
        "        machine.fs.create_file('/t', b'')  # WEAR-ESCAPE\n"
        "        machine.restore_wear(base)         # sanctioned\n"
        "\n"
        "Deliberate out-of-band wear (triage's load studies prime the\n"
        "disk on purpose) carries `# lint: allow(wear-escape)` pragmas\n"
        "with a justification, keeping each exception reviewable."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project.graph()
        sanctioned_files = set(WEAR_API["sanctioned_files"])
        methods = set(WEAR_API["machine_methods"])
        subobjects = set(WEAR_API["subobject_prefixes"])
        wear_objects = set(WEAR_API["wear_objects"])
        readonly = set(WEAR_API["readonly_calls"])
        emitted: set[tuple[str, int, str]] = set()
        for qual, rec in sorted(graph.functions.items()):
            if rec["package"] not in _SCOPED_PACKAGES:
                continue
            if rec["path"] in sanctioned_files:
                continue
            for op in rec["machine"]:
                rest = op["rest"]
                if not rest:
                    continue
                if op["kind"] == "call":
                    if len(rest) == 1 and rest[0] in methods:
                        continue
                    if rest[0] in subobjects:
                        continue
                    if rest[0] in wear_objects and rest[-1] in readonly:
                        continue
                    what = f"call {op['expr']}()"
                else:
                    what = f"store to {op['expr']}"
                key = (rec["path"], op["line"], op["expr"])
                if key in emitted:
                    continue
                emitted.add(key)
                yield self.finding(
                    "WEAR-ESCAPE",
                    f"{what} mutates simulated-machine state outside "
                    "the sanctioned wear API (wear_state/restore_wear/"
                    "reboot/wear_residue/faults.*); out-of-band wear "
                    "breaks exact-base shard seams and sequence "
                    "base_wear attribution",
                    path=rec["path"],
                    line=op["line"],
                )
