"""Checker 4: serialized dataclass shapes cannot drift without a
format-version bump."""

from __future__ import annotations

import dataclasses
import importlib
from typing import Iterator

from repro.lint.framework import Checker, Finding, Project, register_checker
from repro.lint.manifests import SERIALIZATION_PINS


def _resolve(dotted: str):
    module_name, _, attr = dotted.rpartition(".")
    return getattr(importlib.import_module(module_name), attr)


def _module_path(dotted: str) -> str:
    """Best-effort repo-relative path for the module holding ``dotted``."""
    module_name = dotted.rpartition(".")[0]
    return module_name.replace(".", "/") + ".py"


@register_checker
class SerializationVersionChecker(Checker):
    name = "serialization-version"
    title = "serialized field lists are pinned to a format version"
    rationale = (
        "Result sets and campaign checkpoints are versioned documents\n"
        "(results_io: FORMAT_VERSION, CHECKPOINT_VERSION) with an\n"
        "explicit compatibility promise -- \"Version 2 adds the\n"
        "partial-variant flags; version-1 documents still load\" -- and\n"
        "the parallel/supervised runners prove shard merges are\n"
        "byte-identical to serial documents.  Zaki & Cadar's C-library\n"
        "study (PAPERS.md) found signature/usage drift to be the\n"
        "dominant failure mode in API test suites; the serialization\n"
        "analogue is adding or renaming a dataclass field without\n"
        "bumping the format version, which silently changes the wire\n"
        "format old checkpoints are parsed against.  This rule pins the\n"
        "dataclasses.fields of every serialized class in\n"
        "repro/lint/manifests.py; drift at an unchanged version is an\n"
        "error.  When a format legitimately evolves: bump the version\n"
        "constant, keep the loader backward-compatible, and re-pin the\n"
        "manifest entry in the same commit."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for pin in SERIALIZATION_PINS:
            path = _module_path(pin.cls)
            try:
                cls = _resolve(pin.cls)
                version = _resolve(pin.version_const)
            except (ImportError, AttributeError) as exc:
                yield self.finding(
                    "SER-MANIFEST",
                    f"manifest pin {pin.cls} does not resolve: {exc}",
                    path=path,
                )
                continue
            if not dataclasses.is_dataclass(cls):
                yield self.finding(
                    "SER-MANIFEST",
                    f"manifest pin {pin.cls} is not a dataclass",
                    path=path,
                )
                continue
            actual = tuple(f.name for f in dataclasses.fields(cls))
            if actual == pin.fields and version == pin.version:
                continue
            if actual != pin.fields and version == pin.version:
                added = sorted(set(actual) - set(pin.fields))
                removed = sorted(set(pin.fields) - set(actual))
                delta = "; ".join(
                    part
                    for part in (
                        f"added {added}" if added else "",
                        f"removed {removed}" if removed else "",
                        ""
                        if added or removed
                        else f"reordered to {list(actual)}",
                    )
                    if part
                )
                yield self.finding(
                    "SER-DRIFT",
                    f"{pin.cls} fields changed ({delta}) without bumping "
                    f"{pin.version_const} (still {version}); bump the "
                    "format version, keep the loader "
                    "backward-compatible, and re-pin the manifest",
                    path=path,
                )
            else:
                yield self.finding(
                    "SER-REPIN",
                    f"{pin.version_const} is {version} but the manifest "
                    f"pins {pin.cls} at version {pin.version}; re-pin "
                    "the entry in repro/lint/manifests.py to match the "
                    "new format",
                    path=path,
                )
