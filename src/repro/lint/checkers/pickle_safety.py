"""Checker 8: spawn payloads must survive pickling.

``multiprocessing``'s spawn context pickles the target and every
argument into the child.  An object that transitively holds a lambda,
an open socket, a selector, a live thread, or a thread lock raises
``TypeError: cannot pickle`` at spawn time -- in production that is a
worker that dies *after* the lease was granted.  This checker turns the
runtime crash into a lint finding: class attribute initializers recorded
in the project graph give every class a pickle-safety verdict
(transitive through held project classes, short-circuited by a custom
``__reduce__``/``__getstate__``), and every ``Process(target=...,
args=...)`` site is audited against it.  Unresolved argument types pass
silently -- conservative in the "no false alarms" direction, with the
injection drills proving the resolvable cases stay caught.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.dataflow import propagate_union
from repro.lint.framework import Checker, Finding, Project, register_checker
from repro.lint.graph import ProjectGraph

#: initializer text (from the summary's attr tagging) -> why it cannot
#: cross a spawn boundary.
_UNSAFE_INITS: tuple[tuple[str, str], ...] = (
    ("<lambda>", "a lambda"),
    ("threading.Lock", "a thread lock"),
    ("threading.RLock", "a thread lock"),
    ("threading.Condition", "a thread condition"),
    ("threading.Event", "a threading.Event"),
    ("threading.Semaphore", "a thread semaphore"),
    ("threading.Thread", "a live thread"),
    ("socket.socket", "an open socket"),
    ("socket.create_connection", "an open socket"),
    ("open", "an open file handle"),
)
_UNSAFE_PREFIXES: tuple[tuple[str, str], ...] = (
    ("selectors.", "a selector"),
)


def _init_reason(init: str) -> str | None:
    for exact, reason in _UNSAFE_INITS:
        if init == exact:
            return reason
    for prefix, reason in _UNSAFE_PREFIXES:
        if init.startswith(prefix):
            return reason
    return None


def unsafe_classes(graph: ProjectGraph) -> dict[str, str]:
    """class qual -> human-readable reason it cannot be pickled.

    Computed as a union fixpoint over the *containment* graph: a class
    holding an unsafe attribute is unsafe, and a class holding an
    unsafe class is unsafe too.  Classes with ``__reduce__`` or
    ``__getstate__`` opt out -- they control their own wire form.
    """
    seeds: dict[str, set] = {}
    holders: dict[str, list[str]] = {}
    for cls_qual, rec in graph.classes.items():
        if rec["has_reduce"]:
            continue
        facts = set()
        for attr, init in rec["attrs"].items():
            reason = _init_reason(init["init"])
            if reason is not None:
                facts.add(f"attr '{attr}' holds {reason}")
            held = graph.attr_class(cls_qual, attr)
            if held is not None:
                holders.setdefault(held, []).append(cls_qual)
        if facts:
            seeds[cls_qual] = facts
    # propagate_union flows facts from "callee" to "caller"; here the
    # roles are held-class to holder-class.
    props = propagate_union(seeds, holders)
    return {
        cls_qual: sorted(facts)[0]
        for cls_qual, facts in props.items()
        if graph.classes.get(cls_qual, {}).get("has_reduce") is False
    }


@register_checker
class PickleSafetyChecker(Checker):
    name = "pickle-safety"
    title = "Process spawn payloads survive pickling"
    rationale = (
        "Parallel campaigns, the supervisor, and the campaign service\n"
        "all cross process boundaries with multiprocessing's spawn\n"
        "context, which pickles Process targets and args into the\n"
        "child.  A payload transitively holding a lambda, open socket,\n"
        "selector, live thread, or thread lock raises 'cannot pickle'\n"
        "at spawn time -- in service terms, a worker that dies after\n"
        "its lease was granted, burning a restart attempt on a bug the\n"
        "parent wrote.  This rule gives every project class a pickle\n"
        "verdict from its recorded attribute initializers (transitive\n"
        "through held project classes; __reduce__/__getstate__ opt\n"
        "out) and audits every Process(target=..., args=...) site.\n"
        "Worked example:\n"
        "\n"
        "    class Tracker:\n"
        "        def __init__(self):\n"
        "            self.on_done = lambda: None   # unpicklable attr\n"
        "\n"
        "    t = Tracker()\n"
        "    ctx.Process(target=run, args=(t,))    # PICKLE-UNSAFE here\n"
        "    ctx.Process(target=lambda: 0)         # PICKLE-UNSAFE too\n"
        "\n"
        "Argument types the graph cannot resolve pass silently; the\n"
        "rule is conservative in the no-false-alarm direction."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project.graph()
        verdicts = unsafe_classes(graph)
        for qual, rec in sorted(graph.functions.items()):
            for proc in rec["procs"]:
                yield from self._check_site(graph, verdicts, rec, proc)

    def _check_site(
        self,
        graph: ProjectGraph,
        verdicts: dict[str, str],
        rec: dict,
        proc: dict,
    ) -> Iterator[Finding]:
        line = proc["line"]
        target = proc.get("target")
        if target == "<lambda>":
            yield self.finding(
                "PICKLE-UNSAFE",
                "Process target is a lambda; the spawn context pickles "
                "the target and lambdas cannot be pickled",
                path=rec["path"],
                line=line,
            )
        elif target and target.startswith("self.") and rec["cls"]:
            reason = verdicts.get(rec["cls"])
            if reason is not None:
                yield self.finding(
                    "PICKLE-UNSAFE",
                    f"Process target {target} is a bound method, so the "
                    f"whole {rec['cls']} instance is pickled -- but "
                    f"{reason}",
                    path=rec["path"],
                    line=line,
                )
        for arg in proc["args"]:
            yield from self._check_arg(graph, verdicts, rec, arg, line)

    def _check_arg(
        self,
        graph: ProjectGraph,
        verdicts: dict[str, str],
        rec: dict,
        arg: dict,
        line: int,
    ) -> Iterator[Finding]:
        if arg["kind"] == "lambda":
            yield self.finding(
                "PICKLE-UNSAFE",
                "Process args contain a lambda; spawn pickles every "
                "argument and lambdas cannot be pickled",
                path=rec["path"],
                line=line,
            )
            return
        cls_qual: str | None = None
        described = ""
        if arg["kind"] == "self_attr" and rec["cls"]:
            init = graph.attr_init(rec["cls"], arg["attr"])
            if init is None:
                return
            reason = _init_reason(init)
            if reason is not None:
                yield self.finding(
                    "PICKLE-UNSAFE",
                    f"Process args contain self.{arg['attr']}, which "
                    f"holds {reason}; it cannot cross the spawn pickle "
                    "boundary",
                    path=rec["path"],
                    line=line,
                )
                return
            cls_qual = graph.attr_class(rec["cls"], arg["attr"])
            described = f"self.{arg['attr']}"
        elif arg["kind"] == "name":
            init = rec["ctor_locals"].get(arg["name"])
            if init is None:
                return
            cls_qual = graph.resolve_class(init, rec["module"])
            described = arg["name"]
        if cls_qual is not None and cls_qual in verdicts:
            yield self.finding(
                "PICKLE-UNSAFE",
                f"Process args contain {described} "
                f"({cls_qual}), which is not pickle-safe: "
                f"{verdicts[cls_qual]}",
                path=rec["path"],
                line=line,
            )
