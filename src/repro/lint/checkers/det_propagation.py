"""Checker 6: impurity propagates through the call graph.

The per-file determinism checker flags a ``time.time()`` call *where it
appears*.  It cannot see that ``core/`` calls a helper in ``service/``
that reads the wall clock two hops down -- the helper is legal in its
own package, but the core caller just made campaign outcomes depend on
real time.  This checker closes that hole: every function's direct
impurity (wall-clock reads, unseeded RNG) becomes a seed fact carrying
its origin, facts flow callee -> caller to fixpoint, and any *call* made
from the deterministic packages into a transitively-impure callee is a
finding anchored at the call site.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.dataflow import propagate_union
from repro.lint.framework import Checker, Finding, Project, register_checker
from repro.lint.manifests import WALLCLOCK_ALLOWANCES

#: Packages whose *callers* are flagged.  obs/ is excluded here -- its
#: direct wall-clock use is already governed by WALLCLOCK_ALLOWANCES and
#: its recorders are leaf code nothing deterministic calls back into.
_FLAGGED_PACKAGES = ("core", "sim", "analysis")


@register_checker
class DeterminismPropagationChecker(Checker):
    name = "determinism-propagation"
    title = "wrappers inherit the nondeterminism of their callees"
    rationale = (
        "The determinism rule flags time.time()/unseeded RNG where the\n"
        "call appears, but byte-identity breaks just as hard when core/\n"
        "reaches a wall clock through three hops of helpers.  This rule\n"
        "builds the project call graph (lint/graph.py), seeds every\n"
        "function with its direct impurity, propagates impurity from\n"
        "callee to caller to fixpoint (lint/dataflow.py), and flags any\n"
        "call made from core/, sim/ or analysis/ into a transitively\n"
        "impure function.  Worked example:\n"
        "\n"
        "    # repro/service/helpers.py -- legal: service may read walls\n"
        "    def stamp():\n"
        "        return time.time()\n"
        "\n"
        "    # repro/core/campaign.py -- DET-PROPAGATED at the call site:\n"
        "    # stamp() transitively reaches time.time()\n"
        "    def label_run():\n"
        "        return f'run-{stamp()}'\n"
        "\n"
        "Seeds honor the WALLCLOCK_ALLOWANCES manifest (obs recorders'\n"
        "perf_counter stamps never poison callers) and `# lint:\n"
        "allow(determinism)` pragmas at the origin (a deliberately\n"
        "allowed wall read is deliberate for callers too).  Conservative\n"
        "on dynamic dispatch: calls the graph cannot resolve propagate\n"
        "nothing, so the per-file determinism rule remains the backstop."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project.graph()
        by_rel = {f.rel: f for f in project.source_files()}
        seeds: dict[str, set] = {}
        for qual, rec in graph.functions.items():
            allowances = WALLCLOCK_ALLOWANCES.get(rec["package"], ())
            source = by_rel.get(rec["path"])
            facts = set()
            for fact in rec["impure"]:
                if fact["call"] in allowances:
                    continue
                if source is not None and (
                    source.allows(fact["line"], "determinism")
                    or source.allows(fact["line"], self.name)
                ):
                    continue
                facts.add(
                    f"{fact['call']} ({fact['desc']}) at "
                    f"{rec['path']}:{fact['line']}"
                )
            if facts:
                seeds[qual] = facts
        props = propagate_union(seeds, graph.callers)
        emitted: set[tuple[str, int, str]] = set()
        for qual, rec in sorted(graph.functions.items()):
            if rec["package"] not in _FLAGGED_PACKAGES:
                continue
            for edge in graph.edges.get(qual, ()):
                callee_facts = props.get(edge["callee"])
                if not callee_facts:
                    continue
                key = (rec["path"], edge["line"], edge["callee"])
                if key in emitted:
                    continue
                emitted.add(key)
                origin = sorted(callee_facts)[0]
                yield self.finding(
                    "DET-PROPAGATED",
                    f"call into {edge['callee']} transitively reaches "
                    f"{origin}; outcomes here must be reproducible, and "
                    "a wrapper inherits its callee's nondeterminism",
                    path=rec["path"],
                    line=edge["line"],
                )
