"""The shipped lint checkers.

Importing this package registers every builtin rule with the framework's
checker registry; :func:`repro.lint.framework.all_checkers` does so
lazily.  Third-party checkers register the same way: define a module
that subclasses :class:`~repro.lint.framework.Checker`, decorate it with
:func:`~repro.lint.framework.register_checker`, and import it before
calling :func:`~repro.lint.framework.run_lint`.
"""

from repro.lint.checkers import (  # noqa: F401  (registration side effects)
    concurrency,
    det_propagation,
    determinism,
    exceptions,
    isolation,
    pickle_safety,
    registry_contract,
    serialization,
    wear_escape,
)
