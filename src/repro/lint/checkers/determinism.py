"""Checker 2: no nondeterminism in the packages checkpoint byte-identity
depends on."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    Checker,
    Finding,
    Project,
    SourceFile,
    dotted_name,
    register_checker,
)
from repro.lint.manifests import POOL_PURITY, WALLCLOCK_ALLOWANCES

#: Packages whose behaviour feeds serialized results/checkpoints: runs
#: must be bit-for-bit reproducible here (time.monotonic is allowed --
#: the supervisor's real-time watchdog needs it -- because it never
#: flows into recorded outcomes).  obs/ is strict too: telemetry event
#: *contents* must replay identically between serial and parallel runs;
#: only the recorder's ``t`` stamp may read a wall clock, via the
#: :data:`~repro.lint.manifests.WALLCLOCK_ALLOWANCES` manifest.
_DETERMINISTIC_PACKAGES = ("core", "sim", "analysis", "obs")
#: Packages additionally scanned for unseeded-randomness rules only
#: (service timing is real wall-clock by design, but its retry jitter
#: must still be reproducible under a seed).
_SEEDED_PACKAGES = ("core", "sim", "analysis", "obs", "service")

_WALLCLOCK_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy read",
    "uuid.uuid4": "OS entropy read",
}


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, checker: "DeterminismChecker", source: SourceFile) -> None:
        self.checker = checker
        self.source = source
        self.strict = source.package in _DETERMINISTIC_PACKAGES
        self.pool_pure = source.rel in POOL_PURITY["files"]
        self.findings: list[Finding] = []

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            self.checker.finding(
                code, message, path=self.source.rel, line=node.lineno
            )
        )

    # -- forbidden calls ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            if (
                self.strict
                and name in _WALLCLOCK_CALLS
                and name
                not in WALLCLOCK_ALLOWANCES.get(self.source.package, ())
            ):
                self._emit(
                    "DET-WALLCLOCK",
                    f"{name}() is a {_WALLCLOCK_CALLS[name]}; outcomes "
                    "here must be reproducible (use the simulated clock "
                    "or an injected/seeded source)",
                    node,
                )
            elif name.startswith("random."):
                self._check_random(name, node)
        self.generic_visit(node)

    def _check_random(self, name: str, node: ast.Call) -> None:
        attr = name.split(".", 1)[1]
        if attr == "Random":
            unseeded = not node.args or (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded:
                self._emit(
                    "DET-RANDOM",
                    "random.Random() without a seed draws from OS "
                    "entropy; pass an explicit seed",
                    node,
                )
        elif attr == "SystemRandom":
            self._emit(
                "DET-RANDOM",
                "random.SystemRandom is nondeterministic by construction",
                node,
            )
        elif not attr.startswith("_"):
            self._emit(
                "DET-RANDOM",
                f"random.{attr}() uses the shared unseeded module RNG; "
                "use a random.Random(seed) instance",
                node,
            )

    # -- pool-layer machine independence ------------------------------

    def visit_If(self, node: ast.If) -> None:
        # ``if TYPE_CHECKING:`` blocks carry no runtime coupling, so the
        # pool-purity import ban does not apply inside them.
        test = node.test
        is_type_checking = (
            isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
        ) or dotted_name(test) == "typing.TYPE_CHECKING"
        if is_type_checking and self.pool_pure:
            was_pure = self.pool_pure
            self.pool_pure = False
            self.generic_visit(node)
            self.pool_pure = was_pure
            return
        self.generic_visit(node)

    def _check_pool_import(self, module: str, node: ast.AST) -> None:
        if not self.pool_pure:
            return
        for banned in POOL_PURITY["banned_imports"]:
            if module == banned or module.startswith(banned + "."):
                self._emit(
                    "DET-POOL-IMPORT",
                    f"import of {module} couples the memoized plan/value"
                    "-pool layer to machine or API-personality state; "
                    "pools are shared across variants and shards and "
                    "must stay machine-independent (see the POOL_PURITY "
                    "manifest)",
                    node,
                )
                return

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_pool_import(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None:
            self._check_pool_import(node.module, node)
        if node.module == "random":
            imported = {alias.name for alias in node.names}
            bad = sorted(imported - {"Random"})
            if bad:
                self._emit(
                    "DET-RANDOM",
                    f"from random import {', '.join(bad)} pulls in the "
                    "shared unseeded module RNG; import random.Random "
                    "and seed it",
                    node,
                )
        self.generic_visit(node)

    # -- seed-shaped defaults of None ---------------------------------

    def _check_defaults(self, args: ast.arguments, node: ast.AST) -> None:
        positional = args.posonlyargs + args.args
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            self._check_seed_default(arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._check_seed_default(arg.arg, default)

    def _check_seed_default(self, name: str, default: ast.expr) -> None:
        if (
            "seed" in name.lower()
            and isinstance(default, ast.Constant)
            and default.value is None
        ):
            self._emit(
                "DET-SEED",
                f"parameter {name!r} defaults to None (an unseeded RNG "
                "stream); default to a fixed seed so runs are "
                "reproducible",
                default,
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args, node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args, node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Dataclass fields: `jitter_seed: int | None = None`.
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None
            ):
                self._check_seed_default(stmt.target.id, stmt.value)
        self.generic_visit(node)

    # -- set iteration -------------------------------------------------

    def _check_iterable(self, iterable: ast.expr) -> None:
        if not self.strict:
            return
        is_set = isinstance(iterable, ast.Set) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if is_set:
            self._emit(
                "DET-SETITER",
                "iterating a set here depends on hash order; wrap it in "
                "sorted() so serialized output is stable",
                iterable,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    title = "campaign outcomes are bit-for-bit reproducible"
    rationale = (
        "The parallel and supervised runners (PRs 2 and 5) prove their\n"
        "fidelity by byte-comparing result sets and checkpoints against\n"
        "serial runs; CI does the same with cmp(1).  That proof only\n"
        "means anything if nothing in core/, sim/ or analysis/ reads\n"
        "wall clocks (time.time, datetime.now), OS entropy (os.urandom,\n"
        "unseeded random), or iterates sets into serialized output --\n"
        "one stray nondeterministic value and a restarted worker's shard\n"
        "diverges from the serial baseline it must merge byte-identical\n"
        "with.  service/ keeps real wall-clock timeouts (the network is\n"
        "real), but its RNG streams must still be seedable, so the\n"
        "unseeded-randomness rules apply there too.  time.monotonic is\n"
        "allowed: the supervisor's watchdog measures real elapsed time\n"
        "and never records it in results.  time.perf_counter is banned\n"
        "alongside the wall clocks except where the WALLCLOCK_ALLOWANCES\n"
        "manifest grants it (obs/ recorders stamping telemetry records);\n"
        "event contents themselves carry simulated ticks only."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for source in project.source_files(*_SEEDED_PACKAGES):
            visitor = _DeterminismVisitor(self, source)
            visitor.visit(source.tree)
            yield from visitor.findings
