"""Checker 5: fault reporting stays inside the SimFault taxonomy and the
harness never swallows exceptions blind."""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.lint.framework import (
    Checker,
    Finding,
    Project,
    SourceFile,
    register_checker,
)

#: Packages holding MuT implementations: abnormal events they raise are
#: *measurements* and must come from the SimFault family so the executor
#: can classify them on the CRASH scale.
_MUT_PACKAGES = ("win32", "posix", "libc")

#: Every builtin exception type name (ValueError, OSError, ...).
_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


class _RaiseVisitor(ast.NodeVisitor):
    def __init__(
        self, checker: "ExceptionDisciplineChecker", source: SourceFile
    ) -> None:
        self.checker = checker
        self.source = source
        self.findings: list[Finding] = []

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            self.findings.append(
                self.checker.finding(
                    "EXC-FAMILY",
                    f"MuT implementation raises builtin {name}; abnormal "
                    "events must be SimFault subclasses so the executor "
                    "can classify them on the CRASH scale",
                    path=self.source.rel,
                    line=node.lineno,
                )
            )
        self.generic_visit(node)


@register_checker
class ExceptionDisciplineChecker(Checker):
    name = "exception-discipline"
    title = "SimFault-only fault reporting, no bare except"
    rationale = (
        "Every abnormal event inside the simulated machine is modelled\n"
        "as an exception rooted at SimFault, and the executor maps that\n"
        "family onto the paper's CRASH severity scale: SystemCrash ->\n"
        "Catastrophic, TaskHang -> Restart, user-mode HardwareFault and\n"
        "unrecoverable ThrownException -> Abort (repro.sim.errors).  A\n"
        "MuT implementation that raises ValueError instead of a\n"
        "SimFault is not measuring the OS under test -- it is a harness\n"
        "bug that the classifier would misread as an Abort failure of\n"
        "the OS, inflating the very rates the paper compares.  The\n"
        "paper's harness was \"more than fair\", cataloguing every\n"
        "thrown exception deliberately; a bare `except:` anywhere in\n"
        "the harness does the opposite -- it can swallow a SystemCrash\n"
        "(or a KeyboardInterrupt) and turn a Catastrophic outcome into\n"
        "a silent pass.  Catch SimFault (or a concrete subclass)\n"
        "explicitly instead."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        # Bare `except:` is forbidden everywhere in the harness.
        for source in project.source_files():
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ExceptHandler) and node.type is None:
                    yield self.finding(
                        "EXC-BARE",
                        "bare `except:` can swallow SystemCrash / "
                        "KeyboardInterrupt; catch a concrete exception "
                        "type",
                        path=source.rel,
                        line=node.lineno,
                    )
        # Builtin-exception raises are forbidden in MuT implementations.
        for source in project.source_files(*_MUT_PACKAGES):
            visitor = _RaiseVisitor(self, source)
            visitor.visit(source.tree)
            yield from visitor.findings
