"""Checker 1: the MuT registry faithfully mirrors the paper's platform
matrix and every signature resolves against real value pools."""

from __future__ import annotations

from typing import Iterator

from repro.lint.framework import Checker, Finding, Project, register_checker
from repro.lint.manifests import CE_UNICODE_TWIN_COUNT, PLATFORM_MATRIX

#: api -> registration module, for file-anchored findings.
_REGISTRATION_PATHS = {
    "win32": "repro/win32/registration.py",
    "posix": "repro/posix/registration.py",
    "libc": "repro/libc/registration.py",
}


@register_checker
class RegistryContractChecker(Checker):
    name = "registry-contract"
    title = "MuT registry matches the paper's platform matrix"
    rationale = (
        "The paper's results are failure rates over a precisely fixed\n"
        "population: \"133 syscalls + 94 C\" functions on Windows 95,\n"
        "\"143 + 94\" on 98/98SE/NT4/2000, \"71 + 82\" on Windows CE\n"
        "(plus the 26 UNICODE twins of its \"(108)\" parenthetical), and\n"
        "\"91 + 94\" on RedHat Linux 6.0, each reporting under one of the\n"
        "twelve functional groups of Table 2/Figure 1.  Nicchi et al.\n"
        "(PAPERS.md) show how silently-wrong API metadata corrupts whole\n"
        "monitoring studies: one mistyped parameter or misplaced group\n"
        "quietly shifts every downstream rate.  This rule recomputes the\n"
        "per-variant populations from the live registry against the\n"
        "checked-in manifest (repro/lint/manifests.py), resolves every\n"
        "MuT signature against the TypeRegistry value pools, and checks\n"
        "the CE wide-character twin set is complete and bijective."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        try:
            registry = project.registry()
            types = project.types()
        except Exception as exc:  # registration itself failed
            yield self.finding(
                "RC-REGISTER", f"registry failed to build: {exc}"
            )
            return
        from repro.analysis.groups import ALL_GROUPS
        from repro.core.sequences import SEQUENCE_API
        from repro.libc.registration import UNICODE_TWIN_OF

        groups = set(ALL_GROUPS)
        seen: dict[tuple[str, str, str], str] = {}
        for mut in registry.all():
            path = _REGISTRATION_PATHS.get(mut.api, "")
            if mut.api == SEQUENCE_API:
                # Sequence campaigns store their result rows under the
                # reserved "seq" api; a real MuT there would collide
                # with a sequence row in every ResultSet.
                yield self.finding(
                    "RC-RESERVED",
                    f"MuT {mut.name!r} registers under the reserved "
                    f"sequence-row api namespace {SEQUENCE_API!r}",
                    path=path,
                )
            for param in mut.param_types:
                if param not in types:
                    yield self.finding(
                        "RC-TYPE",
                        f"{mut.api}:{mut.name} parameter type {param!r} "
                        "does not resolve in the TypeRegistry",
                        path=path,
                    )
            if mut.group not in groups:
                yield self.finding(
                    "RC-GROUP",
                    f"{mut.api}:{mut.name} group {mut.group!r} is not one "
                    "of the twelve analysis groups",
                    path=path,
                )
            key = (mut.api, mut.name, mut.charset)
            if key in seen:
                yield self.finding(
                    "RC-DUP",
                    f"duplicate registration of {mut.api}:{mut.name} "
                    f"({mut.charset})",
                    path=path,
                )
            seen[key] = path

        # -- CE UNICODE twin completeness ------------------------------
        libc_path = _REGISTRATION_PATHS["libc"]
        registered_twins = {
            mut.name for mut in registry.by_api("libc") if mut.charset == "unicode"
        }
        declared_twins = set(UNICODE_TWIN_OF)
        for name in sorted(declared_twins - registered_twins):
            yield self.finding(
                "RC-TWIN",
                f"UNICODE twin {name!r} is mapped in UNICODE_TWIN_OF but "
                "not registered with charset='unicode'",
                path=libc_path,
            )
        for name in sorted(registered_twins - declared_twins):
            yield self.finding(
                "RC-TWIN",
                f"UNICODE MuT {name!r} has no ASCII partner in "
                "UNICODE_TWIN_OF",
                path=libc_path,
            )
        ascii_names = {
            mut.name for mut in registry.by_api("libc") if mut.charset == "ascii"
        }
        for twin, partner in sorted(UNICODE_TWIN_OF.items()):
            if partner not in ascii_names:
                yield self.finding(
                    "RC-TWIN",
                    f"UNICODE twin {twin!r} shadows {partner!r}, which is "
                    "not a registered ASCII C function",
                    path=libc_path,
                )
        if len(registered_twins) != CE_UNICODE_TWIN_COUNT:
            yield self.finding(
                "RC-TWIN",
                f"expected {CE_UNICODE_TWIN_COUNT} CE UNICODE twins, "
                f"registry has {len(registered_twins)}",
                path=libc_path,
            )

        # -- the Table 1 platform matrix -------------------------------
        from repro import ALL_VARIANTS

        by_key = {p.key: p for p in ALL_VARIANTS}
        for variant, expected in sorted(PLATFORM_MATRIX.items()):
            personality = by_key.get(variant)
            if personality is None:
                yield self.finding(
                    "RC-MATRIX",
                    f"manifest names variant {variant!r} but no such "
                    "personality exists",
                )
                continue
            muts = registry.for_variant(personality)
            actual = {
                "syscalls": sum(1 for m in muts if m.api != "libc"),
                "c_functions": sum(
                    1 for m in muts if m.api == "libc" and m.charset == "ascii"
                ),
                "unicode_twins": sum(
                    1 for m in muts if m.api == "libc" and m.charset == "unicode"
                ),
            }
            for kind, want in sorted(expected.items()):
                got = actual[kind]
                if got != want:
                    yield self.finding(
                        "RC-MATRIX",
                        f"{variant}: {got} {kind} available, but the "
                        f"paper's platform matrix requires {want}",
                    )
        for variant in sorted(set(by_key) - set(PLATFORM_MATRIX)):
            yield self.finding(
                "RC-MATRIX",
                f"variant {variant!r} has no entry in the platform-matrix "
                "manifest",
            )
