"""Checker 3: MuT implementations never escape the simulated machine."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import (
    Checker,
    Finding,
    Project,
    SourceFile,
    dotted_name,
    register_checker,
)

#: The simulated OS and the three API packages: every effect in here
#: must route through Machine/TestContext, never the host OS.
_SIM_PACKAGES = ("sim", "win32", "posix", "libc")

#: Modules that reach the real OS; importing them inside the simulation
#: is the escape hatch this rule closes.
_FORBIDDEN_MODULES = {
    "os",
    "os.path",
    "subprocess",
    "socket",
    "shutil",
    "tempfile",
    "pathlib",
    "glob",
    "io",
    "signal",
    "multiprocessing",
    "threading",
}

#: Builtins that touch real-OS state (or defeat static analysis of it).
_FORBIDDEN_BUILTINS = {"open", "input", "__import__", "exec", "eval"}


class _IsolationVisitor(ast.NodeVisitor):
    def __init__(self, checker: "SimIsolationChecker", source: SourceFile) -> None:
        self.checker = checker
        self.source = source
        self.findings: list[Finding] = []

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            self.checker.finding(
                code, message, path=self.source.rel, line=node.lineno
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in _FORBIDDEN_MODULES:
                self._emit(
                    "ISO-IMPORT",
                    f"import {alias.name} reaches the real OS; simulated "
                    "code must route effects through Machine/TestContext",
                    node,
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in _FORBIDDEN_MODULES:
            self._emit(
                "ISO-IMPORT",
                f"from {node.module} import ... reaches the real OS; "
                "simulated code must route effects through "
                "Machine/TestContext",
                node,
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _FORBIDDEN_BUILTINS
        ):
            self._emit(
                "ISO-BUILTIN",
                f"builtin {node.func.id}() escapes to the real OS; use "
                "the simulated filesystem (ctx.fs / Machine)",
                node,
            )
        else:
            name = dotted_name(node.func)
            if name and name.split(".", 1)[0] in (
                "os",
                "subprocess",
                "socket",
                "shutil",
                "tempfile",
                "glob",
            ):
                self._emit(
                    "ISO-CALL",
                    f"{name}() is a real-OS call; simulated code must "
                    "stay inside the Machine",
                    node,
                )
        self.generic_visit(node)


@register_checker
class SimIsolationChecker(Checker):
    name = "sim-isolation"
    title = "no real-OS escapes inside the simulated machine"
    rationale = (
        "The reproduction substitutes real Windows/Linux hosts with a\n"
        "fully simulated machine: \"every unavailable artefact is\n"
        "replaced by a faithful executable simulation\" (PAPER.md par. 2),\n"
        "and Ballista's methodology requires each test case to start\n"
        "from a clean slate -- test values are built and released inside\n"
        "a fresh simulated process so \"state that must not leak into\n"
        "the next test case\" is torn down (the paper's state-cleanup\n"
        "requirement; repro.core.types).  A MuT implementation that\n"
        "calls real open()/os.*/subprocess/socket breaks both: outcomes\n"
        "start depending on the host machine, cleanup no longer bounds\n"
        "the test's effects, and a 'Catastrophic' verdict can leak real\n"
        "files.  All effects must route through Machine/TestContext."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        for source in project.source_files(*_SIM_PACKAGES):
            visitor = _IsolationVisitor(self, source)
            visitor.visit(source.tree)
            yield from visitor.findings
