"""Checker 7: shared state crossing thread/process boundaries is
mediated by a queue or a lock.

Two sub-rules:

* **CONC-CROSS-THREAD** -- for any class that spawns two or more
  threads targeting its own methods (``CampaignService``'s selector
  network thread and scheduler thread), every ``self.<attr>`` reachable
  from more than one thread root must be written only under mediation:
  a lexical ``with self._lock`` at the access, a *must-hold* proof that
  every call path into the enclosing method holds the lock
  (:func:`repro.lint.dataflow.entry_must_locks`), or an attribute type
  that mediates by construction (queues, events, locks themselves,
  project classes owning their own lock).
* **CONC-WORKER-GLOBAL** -- functions reachable from a
  ``Process(target=...)`` spawn run in a child process with its own
  copy of every module; rebinding a module global there silently
  diverges from the parent, so worker-reachable ``global`` writes are
  flagged.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.dataflow import entry_must_locks
from repro.lint.framework import Checker, Finding, Project, register_checker
from repro.lint.graph import MUTATOR_METHODS, ProjectGraph

#: Attribute initializers that mediate cross-thread traffic by
#: construction.  Queues serialize, events are atomic flags, locks and
#: spawn contexts are synchronization primitives themselves.
_MEDIATED_SUFFIXES = (
    ".Queue",
    ".SimpleQueue",
    ".JoinableQueue",
    ".LifoQueue",
    ".PriorityQueue",
    ".Event",
    ".Lock",
    ".RLock",
    ".Condition",
    ".Semaphore",
    ".BoundedSemaphore",
    ".get_context",
)
_MEDIATED_BARE = (
    "Queue",
    "SimpleQueue",
    "Event",
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
)
_LOCK_SUFFIXES = (".Lock", ".RLock")


def _is_lock_init(init: str) -> bool:
    return init.endswith(_LOCK_SUFFIXES) or init in ("Lock", "RLock")


def _is_mediated_init(graph: ProjectGraph, cls_qual: str, init: str) -> bool:
    if init.endswith(_MEDIATED_SUFFIXES) or init in _MEDIATED_BARE:
        return True
    if init.startswith("<"):
        return False
    cls_rec = graph.classes.get(cls_qual)
    module = cls_rec["module"] if cls_rec else ""
    held = graph.resolve_class(init, module)
    return held is not None and graph.is_internally_locked(held)


@register_checker
class ConcurrencyContractChecker(Checker):
    name = "concurrency-contract"
    title = "cross-thread and parent/worker state is queue- or lock-mediated"
    rationale = (
        "CampaignService runs a selector network thread and a scheduler\n"
        "thread over one object; ParallelCampaign and the supervisor\n"
        "spawn worker processes.  A field mutated from two threads\n"
        "without mediation is a data race that corrupts campaign\n"
        "bookkeeping nondeterministically -- exactly the class of bug\n"
        "the byte-identity proofs cannot catch, because it only fires\n"
        "under load.  This rule finds every class spawning >=2 threads\n"
        "at its own methods, computes which methods each thread can\n"
        "reach (dispatch tables count: bound-method references are\n"
        "conservative call edges), and demands each cross-thread field\n"
        "access be mediated: a lexical `with self._lock`, a must-hold\n"
        "proof that every caller path holds the lock, or a mediating\n"
        "type (mp.Queue, Event, a class owning its own lock).  Worked\n"
        "example:\n"
        "\n"
        "    class Service:\n"
        "        def start(self):\n"
        "            threading.Thread(target=self._net).start()\n"
        "            threading.Thread(target=self._sched).start()\n"
        "        def _net(self):   self.stats['rx'] += 1   # CONC-CROSS-THREAD\n"
        "        def _sched(self):\n"
        "            with self._lock: self.stats.clear()   # mediated\n"
        "\n"
        "CONC-WORKER-GLOBAL flags `global` rebinds reachable from\n"
        "Process(target=...): a spawned child mutates its own copy of\n"
        "the module, so parent and worker silently diverge."
    )

    def run(self, project: Project) -> Iterator[Finding]:
        graph = project.graph()
        yield from self._cross_thread(graph)
        yield from self._worker_globals(graph)

    # -- CONC-CROSS-THREAD ---------------------------------------------

    def _cross_thread(self, graph: ProjectGraph) -> Iterator[Finding]:
        for cls_qual, cls_rec in sorted(graph.classes.items()):
            roots = graph.thread_roots(cls_qual)
            if len(roots) < 2:
                continue
            yield from self._check_class(graph, cls_qual, cls_rec, roots)

    def _check_class(
        self,
        graph: ProjectGraph,
        cls_qual: str,
        cls_rec: dict,
        roots: dict[str, dict],
    ) -> Iterator[Finding]:
        lock_attrs = frozenset(
            attr
            for attr, init in cls_rec["attrs"].items()
            if _is_lock_init(init["init"])
        )
        reach = {root: graph.reachable([root]) for root in roots}
        edges = {
            qual: [
                (
                    edge["callee"],
                    frozenset(edge["locked"]) & lock_attrs
                    if edge["kind"] == "call"
                    else frozenset(),
                )
                for edge in graph.edges.get(qual, ())
            ]
            for qual in set().union(*reach.values())
        }
        entry = entry_must_locks(roots, edges)
        # attr -> root -> list of (is_write, method qual, line, mediated)
        accesses: dict[str, dict[str, list]] = {}
        for root, reachable in reach.items():
            for qual in reachable:
                rec = graph.functions.get(qual)
                if rec is None or rec["cls"] != cls_qual:
                    continue
                held_at_entry = entry.get(qual, frozenset())
                for access in self._method_accesses(graph, cls_qual, rec):
                    attr, is_write, line, site_locks = access
                    if attr not in cls_rec["attrs"]:
                        continue
                    init = cls_rec["attrs"][attr]["init"]
                    if _is_mediated_init(graph, cls_qual, init):
                        continue
                    mediated = bool(
                        (frozenset(site_locks) | held_at_entry) & lock_attrs
                    )
                    accesses.setdefault(attr, {}).setdefault(root, []).append(
                        (is_write, qual, line, mediated)
                    )
        emitted: set[tuple[str, int, str]] = set()
        for attr, by_root in sorted(accesses.items()):
            writers = [r for r, acc in by_root.items() if any(a[0] for a in acc)]
            if not writers or len(by_root) < 2:
                continue
            other_roots = [r for r in by_root if r not in writers]
            if not other_roots and len(writers) < 2:
                continue
            for root, acc_list in sorted(by_root.items()):
                for is_write, qual, line, mediated in acc_list:
                    if mediated:
                        continue
                    if not is_write and root in writers and len(by_root) < 2:
                        continue
                    rec = graph.functions[qual]
                    key = (rec["path"], line, attr)
                    if key in emitted:
                        continue
                    emitted.add(key)
                    peers = sorted(
                        r.rsplit(".", 1)[-1] for r in by_root if r != root
                    )
                    kind = "write to" if is_write else "read of"
                    yield self.finding(
                        "CONC-CROSS-THREAD",
                        f"unmediated {kind} field '{attr}' of "
                        f"{cls_rec['name']} on the "
                        f"{root.rsplit('.', 1)[-1]} thread; the field is "
                        f"also touched from thread root(s) "
                        f"{', '.join(peers)} -- guard it with the class "
                        "lock or route it through a queue",
                        path=rec["path"],
                        line=line,
                    )

    def _method_accesses(
        self, graph: ProjectGraph, cls_qual: str, rec: dict
    ) -> Iterator[tuple[str, bool, int, tuple]]:
        """``(attr, is_write, line, locks_held_at_site)`` for one
        method: direct reads/writes plus mutation through calls on a
        typed attribute (``self.leases.grant(...)``).  Writes come
        first so a write wins the per-line dedupe over the receiver
        read the same statement performs."""
        for write in rec["writes"]:
            yield write["attr"], True, write["line"], tuple(write["locked"])
        for read in rec["reads"]:
            yield read["attr"], False, read["line"], tuple(read["locked"])
        for call in rec["calls"]:
            parts = call["name"].split(".")
            if parts[0] != "self" or len(parts) != 3:
                continue
            attr, method = parts[1], parts[2]
            if method in MUTATOR_METHODS:
                yield attr, True, call["line"], tuple(call["locked"])
                continue
            held_cls = graph.attr_class(cls_qual, attr)
            if held_cls is None:
                continue
            target = graph.method(held_cls, method)
            target_rec = graph.functions.get(target) if target else None
            if target_rec is not None and target_rec["writes"]:
                yield attr, True, call["line"], tuple(call["locked"])

    # -- CONC-WORKER-GLOBAL --------------------------------------------

    def _worker_globals(self, graph: ProjectGraph) -> Iterator[Finding]:
        roots: dict[str, str] = {}
        for spawner, proc, target_rec in graph.process_targets():
            roots.setdefault(target_rec["qual"], spawner)
        if not roots:
            return
        reachable = graph.reachable(roots)
        emitted: set[tuple[str, int, str]] = set()
        for qual in sorted(reachable):
            rec = graph.functions[qual]
            for decl in rec["globals"]:
                key = (rec["path"], decl["line"], decl["name"])
                if key in emitted:
                    continue
                emitted.add(key)
                yield self.finding(
                    "CONC-WORKER-GLOBAL",
                    f"{qual} rebinds module global '{decl['name']}' and "
                    "is reachable from a Process(target=...) spawn; a "
                    "spawned worker mutates its own copy of the module, "
                    "so parent and worker state silently diverge",
                    path=rec["path"],
                    line=decl["line"],
                )
