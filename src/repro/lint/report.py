"""Rendering lint results as text and as a machine-readable report."""

from __future__ import annotations

from repro.lint.framework import LintResult

REPORT_FORMAT = "ballista-lint-report"
REPORT_VERSION = 1


def render_text(result: LintResult, baseline: set[str]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines: list[str] = []
    new_count = 0
    for finding in result.findings:
        is_new = finding.fingerprint not in baseline
        new_count += is_new
        marker = "" if is_new else " (baselined)"
        lines.append(
            f"{finding.location}: {finding.rule} [{finding.code}] "
            f"{finding.message}{marker}"
        )
    total = len(result.findings)
    if total:
        lines.append("")
    summary = (
        f"{total} finding{'s' if total != 1 else ''} "
        f"({new_count} new, {total - new_count} baselined, "
        f"{len(result.suppressed)} suppressed by pragmas) "
        f"across {len(result.checkers)} checkers"
    )
    lines.append(summary)
    return "\n".join(lines)


def report_to_dict(result: LintResult, baseline: set[str]) -> dict:
    """The JSON report published as a CI artifact."""
    findings = [
        {
            "rule": f.rule,
            "code": f.code,
            "path": f.path,
            "line": f.line,
            "message": f.message,
            "fingerprint": f.fingerprint,
            "new": f.fingerprint not in baseline,
        }
        for f in result.findings
    ]
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "checkers": list(result.checkers),
        "findings": findings,
        "suppressed": [
            {
                "rule": f.rule,
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in result.suppressed
        ],
        "summary": {
            "total": len(result.findings),
            "new": sum(1 for f in findings if f["new"]),
            "baselined": sum(1 for f in findings if not f["new"]),
            "suppressed": len(result.suppressed),
        },
    }
