"""POSIX File/Directory Access system calls (30 MuTs).

Pathnames are picked up by the kernel (:meth:`copy_path`), so bad
string pointers produce ``EFAULT`` error returns -- never aborts.
"""

from __future__ import annotations

from repro.libc import errno_codes as E
from repro.sim.filesystem import FileSystemError, OpenFile

_U32 = 0xFFFF_FFFF

O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000
_O_KNOWN = 0o7777

STAT_SIZE = 64


class FsCallsMixin:
    """open/stat/link and friends."""

    # ------------------------------------------------------------------
    # Open / create
    # ------------------------------------------------------------------

    def open(self, pathname: int, flags: int, mode: int) -> int:
        path = self.copy_path("open", pathname)
        if path is None:
            return self._err(E.EFAULT)
        if flags & ~_O_KNOWN & _U32:
            return self._err(E.EINVAL)
        accmode = flags & 0o3
        readable = accmode in (0, O_RDWR)
        writable = accmode in (O_WRONLY, O_RDWR)
        try:
            open_file = self.machine.fs.open(
                path,
                readable=readable,
                writable=writable,
                create=bool(flags & O_CREAT),
                truncate=bool(flags & O_TRUNC) and writable,
                exclusive=bool(flags & O_EXCL),
                append=bool(flags & O_APPEND),
            )
        except FileSystemError as exc:
            return self._fs_err(exc)
        return self.process.alloc_fd(open_file, lowest=3)

    def creat(self, pathname: int, mode: int) -> int:
        return self.open(pathname, O_CREAT | O_WRONLY | O_TRUNC, mode)

    # ------------------------------------------------------------------
    # Links and names
    # ------------------------------------------------------------------

    def unlink(self, pathname: int) -> int:
        path = self.copy_path("unlink", pathname)
        if path is None:
            return self._err(E.EFAULT)
        try:
            self.machine.fs.unlink(path)
            return 0
        except FileSystemError as exc:
            return self._fs_err(exc)

    def link(self, oldpath: int, newpath: int) -> int:
        old = self.copy_path("link", oldpath)
        new = self.copy_path("link", newpath)
        if old is None or new is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(old)
        if node is None:
            return self._err(E.ENOENT)
        if node.is_directory:
            return self._err(E.EPERM)
        if self.machine.fs.lookup(new) is not None:
            return self._err(E.EEXIST)
        try:
            parent, name = self.machine.fs._parent_of(new)
        except FileSystemError as exc:
            return self._fs_err(exc)
        parent.entries[name] = node
        parent._lower = None
        node.nlink += 1
        return 0

    def symlink(self, target: int, linkpath: int) -> int:
        target_path = self.copy_path("symlink", target)
        link_path = self.copy_path("symlink", linkpath)
        if target_path is None or link_path is None:
            return self._err(E.EFAULT)
        if self.machine.fs.lookup(link_path) is not None:
            return self._err(E.EEXIST)
        try:
            node = self.machine.fs.create_file(link_path, exclusive=True)
        except FileSystemError as exc:
            return self._fs_err(exc)
        node.symlink_target = target_path  # type: ignore[attr-defined]
        return 0

    def readlink(self, pathname: int, buf: int, bufsiz: int) -> int:
        path = self.copy_path("readlink", pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        target = getattr(node, "symlink_target", None)
        if target is None:
            return self._err(E.EINVAL)
        data = target.encode("latin-1")[: max(bufsiz & _U32, 0)]
        if data and not self.copy_out("readlink", buf, data):
            return self._err(E.EFAULT)
        return len(data)

    def rename(self, oldpath: int, newpath: int) -> int:
        old = self.copy_path("rename", oldpath)
        new = self.copy_path("rename", newpath)
        if old is None or new is None:
            return self._err(E.EFAULT)
        try:
            self.machine.fs.rename(old, new)
            return 0
        except FileSystemError as exc:
            return self._fs_err(exc)

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------

    def mkdir(self, pathname: int, mode: int) -> int:
        path = self.copy_path("mkdir", pathname)
        if path is None:
            return self._err(E.EFAULT)
        try:
            node = self.machine.fs.mkdir(path)
        except FileSystemError as exc:
            return self._fs_err(exc)
        node.mode = mode & 0o7777
        return 0

    def rmdir(self, pathname: int) -> int:
        path = self.copy_path("rmdir", pathname)
        if path is None:
            return self._err(E.EFAULT)
        try:
            self.machine.fs.rmdir(path)
            return 0
        except FileSystemError as exc:
            return self._fs_err(exc)

    def chdir(self, pathname: int) -> int:
        path = self.copy_path("chdir", pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        if not node.is_directory:
            return self._err(E.ENOTDIR)
        self.process.cwd = path
        return 0

    def fchdir(self, fd: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        return self._err(E.ENOTDIR)  # fds only reference regular files here

    def getcwd(self, buf: int, size: int) -> int:
        cwd = self.process.cwd.encode("latin-1") + b"\x00"
        if buf == 0 or (size & _U32) == 0:
            return self._err(E.EINVAL, ret=0)
        if (size & _U32) < len(cwd):
            return self._err(E.ERANGE, ret=0)
        if not self.copy_out("getcwd", buf, cwd):
            return self._err(E.EFAULT, ret=0)
        return buf

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    def _write_stat(self, func: str, node, statbuf: int) -> int:
        blob = bytearray(STAT_SIZE)
        blob[0:4] = (1).to_bytes(4, "little")  # st_dev
        mode = node.mode | (0o040000 if node.is_directory else 0o100000)
        blob[4:8] = mode.to_bytes(4, "little")
        blob[8:12] = getattr(node, "nlink", 1).to_bytes(4, "little")
        size = 0 if node.is_directory else node.size
        blob[12:16] = size.to_bytes(4, "little")
        blob[16:20] = ((node.accessed_at // 1000) & _U32).to_bytes(4, "little")
        blob[20:24] = ((node.modified_at // 1000) & _U32).to_bytes(4, "little")
        blob[24:28] = ((node.created_at // 1000) & _U32).to_bytes(4, "little")
        if not self.copy_out(func, statbuf, bytes(blob)):
            return self._err(E.EFAULT)
        return 0

    def stat(self, pathname: int, statbuf: int) -> int:
        path = self.copy_path("stat", pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        return self._write_stat("stat", node, statbuf)

    def lstat(self, pathname: int, statbuf: int) -> int:
        return self.stat(pathname, statbuf)

    def fstat(self, fd: int, statbuf: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        node = getattr(obj, "node", None)
        if node is None:
            return self._err(E.EINVAL)
        return self._write_stat("fstat", node, statbuf)

    def access(self, pathname: int, mode: int) -> int:
        path = self.copy_path("access", pathname)
        if path is None:
            return self._err(E.EFAULT)
        if mode & ~0o7 and mode != 0:
            return self._err(E.EINVAL)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        if mode & 0o2 and node.read_only:
            return self._err(E.EACCES)
        return 0

    def chmod(self, pathname: int, mode: int) -> int:
        path = self.copy_path("chmod", pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        node.mode = mode & 0o7777
        return 0

    def fchmod(self, fd: int, mode: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        node = getattr(obj, "node", None)
        if node is None:
            return self._err(E.EINVAL)
        node.mode = mode & 0o7777
        return 0

    def _chown_common(self, node, owner: int, group: int) -> int:
        if owner not in (-1, 0, self.process.uid) and owner > 0xFFFF:
            return self._err(E.EINVAL)
        if owner not in (-1, self.process.uid):
            return self._err(E.EPERM)  # unprivileged chown
        return 0

    def chown(self, pathname: int, owner: int, group: int) -> int:
        path = self.copy_path("chown", pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        return self._chown_common(node, owner, group)

    def lchown(self, pathname: int, owner: int, group: int) -> int:
        return self.chown(pathname, owner, group)

    def fchown(self, fd: int, owner: int, group: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        return self._chown_common(getattr(obj, "node", None), owner, group)

    def utime(self, pathname: int, times: int) -> int:
        path = self.copy_path("utime", pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        if times == 0:
            now = self.machine.clock.tick_count()
            node.accessed_at = node.modified_at = now
            return 0
        raw = self.copy_in("utime", times, 8)
        if raw is None:
            return self._err(E.EFAULT)
        node.accessed_at = int.from_bytes(raw[0:4], "little") * 1000
        node.modified_at = int.from_bytes(raw[4:8], "little") * 1000
        return 0

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    def truncate(self, pathname: int, length: int) -> int:
        path = self.copy_path("truncate", pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        if node.is_directory:
            return self._err(E.EISDIR)
        if length < 0:
            return self._err(E.EINVAL)
        handle = OpenFile(node, readable=True, writable=True)
        try:
            handle.truncate(min(length, 1 << 24))
        except FileSystemError as exc:
            return self._fs_err(exc)
        return 0

    def ftruncate(self, fd: int, length: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        if length < 0:
            return self._err(E.EINVAL)
        try:
            obj.truncate(min(length, 1 << 24))
        except (FileSystemError, AttributeError):
            return self._err(E.EINVAL)
        return 0

    # ------------------------------------------------------------------
    # Special files and limits
    # ------------------------------------------------------------------

    def umask(self, mask: int) -> int:
        previous = self.process.umask
        self.process.umask = mask & 0o777
        return previous

    def mknod(self, pathname: int, mode: int, dev: int) -> int:
        path = self.copy_path("mknod", pathname)
        if path is None:
            return self._err(E.EFAULT)
        if mode & 0o170000 not in (0, 0o100000, 0o010000):
            return self._err(E.EPERM)  # devices need privilege
        try:
            self.machine.fs.create_file(path, exclusive=True)
            return 0
        except FileSystemError as exc:
            return self._fs_err(exc)

    def mkfifo(self, pathname: int, mode: int) -> int:
        path = self.copy_path("mkfifo", pathname)
        if path is None:
            return self._err(E.EFAULT)
        try:
            node = self.machine.fs.create_file(path, exclusive=True)
        except FileSystemError as exc:
            return self._fs_err(exc)
        node.mode = (mode & 0o777) | 0o010000
        return 0

    def _write_statfs(self, func: str, buf: int) -> int:
        blob = bytearray(STAT_SIZE)
        blob[0:4] = (0xEF53).to_bytes(4, "little")  # ext2 magic
        blob[4:8] = (4096).to_bytes(4, "little")  # block size
        blob[8:12] = (0x20000).to_bytes(4, "little")  # blocks
        blob[12:16] = (0x10000).to_bytes(4, "little")  # free
        if not self.copy_out(func, buf, bytes(blob)):
            return self._err(E.EFAULT)
        return 0

    def statfs(self, pathname: int, buf: int) -> int:
        path = self.copy_path("statfs", pathname)
        if path is None:
            return self._err(E.EFAULT)
        if self.machine.fs.lookup(path) is None:
            return self._err(E.ENOENT)
        return self._write_statfs("statfs", buf)

    def fstatfs(self, fd: int, buf: int) -> int:
        if self._fd_object(fd) is None:
            return self._err(E.EBADF)
        return self._write_statfs("fstatfs", buf)

    def pathconf(self, pathname: int, name: int) -> int:
        path = self.copy_path("pathconf", pathname)
        if path is None:
            return self._err(E.EFAULT)
        if self.machine.fs.lookup(path) is None:
            return self._err(E.ENOENT)
        limits = {0: 255, 1: 255, 2: 4096, 3: 0x7FFF_FFFF, 4: 4096}
        if name not in limits:
            return self._err(E.EINVAL)
        return limits[name]
