"""MuT registration for the 91 POSIX system calls.

Group sizes: I/O Primitives is exactly the paper's 10-call list; the
other four groups mirror common POSIX.1 coverage (30 file/directory, 24
process-primitive, 12 memory-management, 15 process-environment calls),
totalling the 91 system calls the paper tested on Linux.
"""

from __future__ import annotations

from repro.core.mut import MuTRegistry

GROUP_MEMORY = "Memory Management"
GROUP_FILEDIR = "File/Directory Access"
GROUP_IO = "I/O Primitives"
GROUP_PROCESS = "Process Primitives"
GROUP_ENV = "Process Environment"

#: (name, group, parameter types) for all 91 POSIX system calls.
POSIX_CALLS: list[tuple[str, str, list[str]]] = [
    # -- I/O Primitives (10, the paper's exact list) ----------------------
    ("close", GROUP_IO, ["fd"]),
    ("dup", GROUP_IO, ["fd"]),
    ("dup2", GROUP_IO, ["fd", "fd"]),
    ("fcntl", GROUP_IO, ["fd", "int_val", "int_val"]),
    ("fdatasync", GROUP_IO, ["fd"]),
    ("fsync", GROUP_IO, ["fd"]),
    ("lseek", GROUP_IO, ["fd", "long_offset", "seek_whence"]),
    ("pipe", GROUP_IO, ["buffer"]),
    ("read", GROUP_IO, ["fd", "buffer", "size"]),
    ("write", GROUP_IO, ["fd", "buffer", "size"]),
    # -- Memory Management (12) --------------------------------------------
    (
        "mmap",
        GROUP_MEMORY,
        ["buffer", "size", "int_val", "int_val", "fd", "long_offset"],
    ),
    ("munmap", GROUP_MEMORY, ["buffer", "size"]),
    ("mprotect", GROUP_MEMORY, ["buffer", "size", "int_val"]),
    ("msync", GROUP_MEMORY, ["buffer", "size", "int_val"]),
    ("mlock", GROUP_MEMORY, ["buffer", "size"]),
    ("munlock", GROUP_MEMORY, ["buffer", "size"]),
    ("mlockall", GROUP_MEMORY, ["int_val"]),
    ("munlockall", GROUP_MEMORY, []),
    ("brk", GROUP_MEMORY, ["buffer"]),
    ("sbrk", GROUP_MEMORY, ["long_offset"]),
    ("shmget", GROUP_MEMORY, ["int_val", "size", "int_val"]),
    ("shmat", GROUP_MEMORY, ["int_val", "buffer", "int_val"]),
    # -- File/Directory Access (30) ------------------------------------------
    ("open", GROUP_FILEDIR, ["filename", "open_flags", "mode_t"]),
    ("creat", GROUP_FILEDIR, ["filename", "mode_t"]),
    ("unlink", GROUP_FILEDIR, ["filename"]),
    ("link", GROUP_FILEDIR, ["filename", "filename"]),
    ("symlink", GROUP_FILEDIR, ["filename", "filename"]),
    ("readlink", GROUP_FILEDIR, ["filename", "buffer", "size"]),
    ("rename", GROUP_FILEDIR, ["filename", "filename"]),
    ("mkdir", GROUP_FILEDIR, ["filename", "mode_t"]),
    ("rmdir", GROUP_FILEDIR, ["filename"]),
    ("stat", GROUP_FILEDIR, ["filename", "stat_buf"]),
    ("lstat", GROUP_FILEDIR, ["filename", "stat_buf"]),
    ("fstat", GROUP_FILEDIR, ["fd", "stat_buf"]),
    ("access", GROUP_FILEDIR, ["filename", "int_val"]),
    ("chmod", GROUP_FILEDIR, ["filename", "mode_t"]),
    ("fchmod", GROUP_FILEDIR, ["fd", "mode_t"]),
    ("chown", GROUP_FILEDIR, ["filename", "int_val", "int_val"]),
    ("fchown", GROUP_FILEDIR, ["fd", "int_val", "int_val"]),
    ("lchown", GROUP_FILEDIR, ["filename", "int_val", "int_val"]),
    ("utime", GROUP_FILEDIR, ["filename", "buffer"]),
    ("truncate", GROUP_FILEDIR, ["filename", "long_offset"]),
    ("ftruncate", GROUP_FILEDIR, ["fd", "long_offset"]),
    ("chdir", GROUP_FILEDIR, ["filename"]),
    ("fchdir", GROUP_FILEDIR, ["fd"]),
    ("getcwd", GROUP_FILEDIR, ["buffer", "size"]),
    ("umask", GROUP_FILEDIR, ["mode_t"]),
    ("mknod", GROUP_FILEDIR, ["filename", "mode_t", "int_val"]),
    ("mkfifo", GROUP_FILEDIR, ["filename", "mode_t"]),
    ("statfs", GROUP_FILEDIR, ["filename", "stat_buf"]),
    ("fstatfs", GROUP_FILEDIR, ["fd", "stat_buf"]),
    ("pathconf", GROUP_FILEDIR, ["filename", "int_val"]),
    # -- Process Primitives (24) ------------------------------------------------
    ("fork", GROUP_PROCESS, []),
    ("execve", GROUP_PROCESS, ["filename", "buffer", "buffer"]),
    ("execv", GROUP_PROCESS, ["filename", "buffer"]),
    ("wait", GROUP_PROCESS, ["buffer"]),
    ("waitpid", GROUP_PROCESS, ["pid_val", "buffer", "int_val"]),
    ("kill", GROUP_PROCESS, ["pid_val", "signal_num"]),
    ("signal", GROUP_PROCESS, ["signal_num", "buffer"]),
    ("sigaction", GROUP_PROCESS, ["signal_num", "buffer", "buffer"]),
    ("sigprocmask", GROUP_PROCESS, ["int_val", "buffer", "buffer"]),
    ("sigpending", GROUP_PROCESS, ["buffer"]),
    ("getpid", GROUP_PROCESS, []),
    ("getppid", GROUP_PROCESS, []),
    ("getpgrp", GROUP_PROCESS, []),
    ("setpgid", GROUP_PROCESS, ["pid_val", "pid_val"]),
    ("setsid", GROUP_PROCESS, []),
    ("nice", GROUP_PROCESS, ["int_val"]),
    ("getpriority", GROUP_PROCESS, ["int_val", "int_val"]),
    ("setpriority", GROUP_PROCESS, ["int_val", "int_val", "int_val"]),
    ("sched_yield", GROUP_PROCESS, []),
    ("alarm", GROUP_PROCESS, ["int_val"]),
    ("sleep", GROUP_PROCESS, ["int_val"]),
    ("usleep", GROUP_PROCESS, ["int_val"]),
    ("getitimer", GROUP_PROCESS, ["int_val", "buffer"]),
    ("setitimer", GROUP_PROCESS, ["int_val", "buffer", "buffer"]),
    # -- Process Environment (15) ----------------------------------------------
    ("getuid", GROUP_ENV, []),
    ("geteuid", GROUP_ENV, []),
    ("getgid", GROUP_ENV, []),
    ("getegid", GROUP_ENV, []),
    ("setuid", GROUP_ENV, ["int_val"]),
    ("setgid", GROUP_ENV, ["int_val"]),
    ("getgroups", GROUP_ENV, ["int_val", "buffer"]),
    ("setgroups", GROUP_ENV, ["size", "buffer"]),
    ("uname", GROUP_ENV, ["buffer"]),
    ("gethostname", GROUP_ENV, ["buffer", "size"]),
    ("sethostname", GROUP_ENV, ["cstring", "size"]),
    ("getrlimit", GROUP_ENV, ["int_val", "buffer"]),
    ("setrlimit", GROUP_ENV, ["int_val", "buffer"]),
    ("times", GROUP_ENV, ["buffer"]),
    ("sysconf", GROUP_ENV, ["int_val"]),
]


def register(registry: MuTRegistry) -> None:
    """Register the 91 POSIX system-call MuTs."""
    for name, group, params in POSIX_CALLS:
        registry.add(name, "posix", group, params)
