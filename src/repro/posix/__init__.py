"""The simulated POSIX API (91 system-call MuTs) and the Linux
personality.

The defining robustness property (paper section 4): Linux system calls
copy user data with ``copy_from_user``/``copy_to_user``, so a bad
pointer comes back as a graceful ``EFAULT`` instead of a fault -- the
mechanistic reason Linux "was significantly more graceful at handling
exceptions from system calls in a program-recoverable manner than
Windows NT and Windows 2000".
"""

from repro.posix.linux import LINUX
from repro.posix.registration import register
from repro.posix.system import PosixSystem

__all__ = ["LINUX", "PosixSystem", "register"]
