"""POSIX I/O Primitives (the paper's 10-call group):

``{close dup dup2 fcntl fdatasync fsync lseek pipe read write}``
"""

from __future__ import annotations

from repro.libc import errno_codes as E
from repro.sim.filesystem import FileSystemError, Pipe
from repro.sim.process import PipeEnd

_U32 = 0xFFFF_FFFF

F_DUPFD = 0
F_GETFD = 1
F_SETFD = 2
F_GETFL = 3
F_SETFL = 4


class IoCallsMixin:
    """read/write/seek and descriptor plumbing."""

    def close(self, fd: int) -> int:
        if isinstance(fd, int) and 0 <= fd <= 0xFFFF and self.process.close_fd(fd):
            return 0
        return self._err(E.EBADF)

    def dup(self, fd: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        return self.process.alloc_fd(obj)

    def dup2(self, oldfd: int, newfd: int) -> int:
        obj = self._fd_object(oldfd)
        if obj is None:
            return self._err(E.EBADF)
        if not isinstance(newfd, int) or newfd < 0 or newfd > 0xFFFF:
            return self._err(E.EBADF)
        if newfd == oldfd:
            return newfd
        self.process.close_fd(newfd)
        self.process.fds[newfd] = obj
        return newfd

    def fcntl(self, fd: int, cmd: int, arg: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        if cmd == F_DUPFD:
            if arg < 0 or arg > 0xFFFF:
                return self._err(E.EINVAL)
            return self.process.alloc_fd(obj, lowest=arg)
        if cmd in (F_GETFD, F_GETFL):
            return 0
        if cmd in (F_SETFD, F_SETFL):
            return 0
        return self._err(E.EINVAL)

    def fdatasync(self, fd: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        if isinstance(obj, PipeEnd):
            return self._err(E.EINVAL)
        return 0

    def fsync(self, fd: int) -> int:
        return self.fdatasync(fd)

    def lseek(self, fd: int, offset: int, whence: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        if whence not in (0, 1, 2):
            return self._err(E.EINVAL)
        try:
            return obj.seek(offset, whence)
        except FileSystemError as exc:
            return self._fs_err(exc)

    def pipe(self, fildes: int) -> int:
        pipe = Pipe()
        read_fd = self.process.alloc_fd(PipeEnd(pipe, readable=True), lowest=3)
        write_fd = self.process.alloc_fd(PipeEnd(pipe, readable=False), lowest=3)
        data = read_fd.to_bytes(4, "little") + write_fd.to_bytes(4, "little")
        if not self.copy_out("pipe", fildes, data):
            self.process.close_fd(read_fd)
            self.process.close_fd(write_fd)
            return self._err(E.EFAULT)
        return 0

    def read(self, fd: int, buf: int, count: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        try:
            data = obj.read(min(count & _U32, 1 << 20))
        except FileSystemError as exc:
            return self._fs_err(exc)
        if data and not self.copy_out("read", buf, data):
            return self._err(E.EFAULT)
        return len(data)

    def write(self, fd: int, buf: int, count: int) -> int:
        obj = self._fd_object(fd)
        if obj is None:
            return self._err(E.EBADF)
        data = self.copy_in("write", buf, min(count & _U32, 1 << 20))
        if data is None:
            return self._err(E.EFAULT)
        try:
            return obj.write(data)
        except FileSystemError as exc:
            return self._fs_err(exc)
