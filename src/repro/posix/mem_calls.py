"""POSIX Memory Management system calls (12 MuTs)."""

from __future__ import annotations

from repro.libc import errno_codes as E
from repro.sim.memory import Protection

_U32 = 0xFFFF_FFFF
MAP_FAILED = _U32

PROT_READ = 0x1
PROT_WRITE = 0x2
PROT_EXEC = 0x4
_PROT_KNOWN = 0x7

MAP_SHARED = 0x01
MAP_PRIVATE = 0x02
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20
_MAP_KNOWN = 0x33

MAX_MAP = 0x40_0000


def _prot_to_protection(prot: int) -> Protection:
    protection = Protection.NONE
    if prot & PROT_READ:
        protection |= Protection.READ
    if prot & PROT_WRITE:
        protection |= Protection.WRITE
    if prot & PROT_EXEC:
        protection |= Protection.EXECUTE
    return protection or Protection.READ


class MemCallsMixin:
    """mmap/brk/shm family."""

    def mmap(
        self, addr: int, length: int, prot: int, flags: int, fd: int, offset: int
    ) -> int:
        length &= _U32
        if length == 0 or prot & ~_PROT_KNOWN or flags & ~_MAP_KNOWN:
            return self._err(E.EINVAL, ret=MAP_FAILED)
        if not flags & (MAP_SHARED | MAP_PRIVATE):
            return self._err(E.EINVAL, ret=MAP_FAILED)
        if length > MAX_MAP:
            return self._err(E.ENOMEM, ret=MAP_FAILED)
        if offset % 4096:
            return self._err(E.EINVAL, ret=MAP_FAILED)
        data = b""
        if not flags & MAP_ANONYMOUS:
            obj = self._fd_object(fd)
            node = getattr(obj, "node", None)
            if obj is None or node is None:
                return self._err(E.EBADF, ret=MAP_FAILED)
            data = bytes(node.data[offset : offset + length])
        if flags & MAP_FIXED:
            if addr % 4096 or addr == 0:
                return self._err(E.EINVAL, ret=MAP_FAILED)
            existing = self.mem.find(addr)
            if existing is not None:
                return self._err(E.EINVAL, ret=MAP_FAILED)
            try:
                region = self.mem.map(
                    length, _prot_to_protection(prot), tag="mmap", at=addr
                )
            except ValueError:
                return self._err(E.EINVAL, ret=MAP_FAILED)
        else:
            region = self.mem.map(length, _prot_to_protection(prot), tag="mmap")
        if data:
            region.data[: len(data)] = data
        return region.start

    def munmap(self, addr: int, length: int) -> int:
        if (addr & _U32) % 4096:
            return self._err(E.EINVAL)
        region = self.mem.find(addr)
        if region is None or region.start != (addr & _U32) or region.tag != "mmap":
            return self._err(E.EINVAL)
        self.mem.unmap(region)
        return 0

    def mprotect(self, addr: int, length: int, prot: int) -> int:
        if prot & ~_PROT_KNOWN:
            return self._err(E.EINVAL)
        if (addr & _U32) % 4096:
            return self._err(E.EINVAL)
        region = self.mem.find(addr)
        if region is None:
            return self._err(E.ENOMEM)
        region.protection = _prot_to_protection(prot)
        return 0

    def msync(self, addr: int, length: int, flags: int) -> int:
        if flags & ~0x7 or (addr & _U32) % 4096:
            return self._err(E.EINVAL)
        if self.mem.find(addr) is None:
            return self._err(E.ENOMEM)
        return 0

    def mlock(self, addr: int, length: int) -> int:
        region = self.mem.find(addr)
        if region is None:
            return self._err(E.ENOMEM)
        if (length & _U32) > MAX_MAP:
            return self._err(E.ENOMEM)
        return 0

    def munlock(self, addr: int, length: int) -> int:
        return self.mlock(addr, length)

    def mlockall(self, flags: int) -> int:
        if flags & ~0x3 or flags == 0:
            return self._err(E.EINVAL)
        return 0

    def munlockall(self) -> int:
        return 0

    def brk(self, addr: int) -> int:
        if self._brk == 0:
            self._brk = self.mem.map(0x1000, tag="brk").start + 0x1000
        if addr == 0:
            return self._brk
        addr &= _U32
        if addr < self._brk or addr - self._brk > MAX_MAP:
            return self._err(E.ENOMEM)
        self._brk = addr
        return 0

    def sbrk(self, increment: int) -> int:
        if self._brk == 0:
            self._brk = self.mem.map(0x1000, tag="brk").start + 0x1000
        previous = self._brk
        if increment > MAX_MAP or self._brk + increment < 0:
            return self._err(E.ENOMEM, ret=MAP_FAILED)
        self._brk += increment
        return previous

    def shmget(self, key: int, size: int, shmflg: int) -> int:
        size &= _U32
        if size == 0 or size > MAX_MAP:
            return self._err(E.EINVAL)
        shmid = len(self._shm_segments) + 1
        region = self.mem.map(size, tag="shm")
        self._shm_segments[shmid] = region.start
        return shmid

    def shmat(self, shmid: int, shmaddr: int, shmflg: int) -> int:
        start = self._shm_segments.get(shmid)
        if start is None:
            return self._err(E.EINVAL, ret=MAP_FAILED)
        if shmaddr != 0:
            return self._err(E.EINVAL, ret=MAP_FAILED)
        return start
