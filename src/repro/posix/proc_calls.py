"""POSIX Process Primitives system calls (24 MuTs).

``kill(getpid(), <fatal signal>)`` genuinely terminates the calling
task, which Ballista observes as an Abort -- a measurement artefact the
real harness shares.
"""

from __future__ import annotations

from repro.libc import errno_codes as E
from repro.sim.errors import FatalSignal

_U32 = 0xFFFF_FFFF

SIGKILL = 9
SIGSTOP = 19
NSIG = 64

_SIGNAL_NAMES = {
    1: "SIGHUP", 2: "SIGINT", 3: "SIGQUIT", 6: "SIGABRT", 9: "SIGKILL",
    10: "SIGUSR1", 12: "SIGUSR2", 14: "SIGALRM", 15: "SIGTERM",
}
#: Signals whose default disposition terminates the process.
_FATAL_DEFAULTS = frozenset(_SIGNAL_NAMES)


class ProcCallsMixin:
    """fork/exec/wait/signal family."""

    # ------------------------------------------------------------------
    # Process creation
    # ------------------------------------------------------------------

    def fork(self) -> int:
        child = self.machine.spawn_process()
        child.terminate(0)  # the simulated child exits immediately
        self._last_child = child.pid
        return child.pid

    def _exec_common(self, func: str, pathname: int, argv: int) -> int:
        path = self.copy_path(func, pathname)
        if path is None:
            return self._err(E.EFAULT)
        node = self.machine.fs.lookup(path)
        if node is None:
            return self._err(E.ENOENT)
        if node.is_directory:
            return self._err(E.EACCES)
        if not node.mode & 0o111:
            return self._err(E.EACCES)
        if argv != 0:
            # The kernel copies the argv pointer array.
            if self.copy_in(func, argv, 4) is None:
                return self._err(E.EFAULT)
        # A successful exec never returns; the simulation reports
        # success by returning 0 to the harness.
        return 0

    def execve(self, pathname: int, argv: int, envp: int) -> int:
        if envp != 0 and self.copy_in("execve", envp, 4) is None:
            return self._err(E.EFAULT)
        return self._exec_common("execve", pathname, argv)

    def execv(self, pathname: int, argv: int) -> int:
        return self._exec_common("execv", pathname, argv)

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------

    def wait(self, wstatus: int) -> int:
        child = getattr(self, "_last_child", None)
        if child is None:
            return self._err(E.ECHILD)
        if wstatus != 0 and not self.copy_out(
            "wait", wstatus, (0).to_bytes(4, "little")
        ):
            return self._err(E.EFAULT)
        self._last_child = None
        return child

    def waitpid(self, pid: int, wstatus: int, options: int) -> int:
        if options & ~0x3 & _U32:
            return self._err(E.EINVAL)
        child = getattr(self, "_last_child", None)
        if child is None or (pid > 0 and pid != child):
            if options & 0x1:  # WNOHANG
                return 0 if child is not None else self._err(E.ECHILD)
            return self._err(E.ECHILD)
        if wstatus != 0 and not self.copy_out(
            "waitpid", wstatus, (0).to_bytes(4, "little")
        ):
            return self._err(E.EFAULT)
        self._last_child = None
        return child

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def kill(self, pid: int, sig: int) -> int:
        if sig < 0 or sig >= NSIG:
            return self._err(E.EINVAL)
        if pid in (self.process.pid, 0) and sig in _FATAL_DEFAULTS:
            # Default disposition: the calling task is terminated.
            raise FatalSignal(_SIGNAL_NAMES[sig])
        if pid in (self.process.pid, 0) or pid == -1:
            return 0  # sig 0 or non-fatal: permission/existence check
        if pid == 1:
            return self._err(E.EPERM)
        return self._err(E.ESRCH)

    def signal(self, signum: int, handler: int) -> int:
        if signum <= 0 or signum >= NSIG or signum in (SIGKILL, SIGSTOP):
            return self._err(E.EINVAL)
        return 0  # previous handler: SIG_DFL

    def sigaction(self, signum: int, act: int, oldact: int) -> int:
        if signum <= 0 or signum >= NSIG or signum in (SIGKILL, SIGSTOP):
            return self._err(E.EINVAL)
        if act != 0 and self.copy_in("sigaction", act, 16) is None:
            return self._err(E.EFAULT)
        if oldact != 0 and not self.copy_out("sigaction", oldact, b"\x00" * 16):
            return self._err(E.EFAULT)
        return 0

    def sigprocmask(self, how: int, newset: int, oldset: int) -> int:
        if how not in (0, 1, 2) and newset != 0:
            return self._err(E.EINVAL)
        if newset != 0 and self.copy_in("sigprocmask", newset, 8) is None:
            return self._err(E.EFAULT)
        if oldset != 0 and not self.copy_out("sigprocmask", oldset, b"\x00" * 8):
            return self._err(E.EFAULT)
        return 0

    def sigpending(self, set_ptr: int) -> int:
        if not self.copy_out("sigpending", set_ptr, b"\x00" * 8):
            return self._err(E.EFAULT)
        return 0

    # ------------------------------------------------------------------
    # Identity / scheduling
    # ------------------------------------------------------------------

    def getpid(self) -> int:
        return self.process.pid

    def getppid(self) -> int:
        return 1

    def getpgrp(self) -> int:
        return self.process.pid

    def setpgid(self, pid: int, pgid: int) -> int:
        if pgid < 0:
            return self._err(E.EINVAL)
        if pid not in (0, self.process.pid):
            return self._err(E.ESRCH)
        return 0

    def setsid(self) -> int:
        return self._err(E.EPERM)  # already a process-group leader

    def nice(self, inc: int) -> int:
        if inc < -20:
            return self._err(E.EPERM)  # raising priority needs privilege
        return min(19, max(-20, inc))

    def getpriority(self, which: int, who: int) -> int:
        if which not in (0, 1, 2):
            return self._err(E.EINVAL)
        if who not in (0, self.process.pid, self.process.uid):
            return self._err(E.ESRCH)
        return 0

    def setpriority(self, which: int, who: int, prio: int) -> int:
        if which not in (0, 1, 2):
            return self._err(E.EINVAL)
        if who not in (0, self.process.pid, self.process.uid):
            return self._err(E.ESRCH)
        if prio < 0:
            return self._err(E.EACCES)
        return 0

    def sched_yield(self) -> int:
        self.machine.clock.advance(1)
        return 0

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def alarm(self, seconds: int) -> int:
        return 0  # no previous alarm

    def sleep(self, seconds: int) -> int:
        self.machine.clock.advance(min(seconds & _U32, 1 << 40) * 1000)
        return 0

    def usleep(self, usec: int) -> int:
        if (usec & _U32) >= 1_000_000:
            return self._err(E.EINVAL)
        self.machine.clock.advance((usec & _U32) // 1000)
        return 0

    def getitimer(self, which: int, curr_value: int) -> int:
        if which not in (0, 1, 2):
            return self._err(E.EINVAL)
        if not self.copy_out("getitimer", curr_value, b"\x00" * 16):
            return self._err(E.EFAULT)
        return 0

    def setitimer(self, which: int, new_value: int, old_value: int) -> int:
        if which not in (0, 1, 2):
            return self._err(E.EINVAL)
        if self.copy_in("setitimer", new_value, 16) is None:
            return self._err(E.EFAULT)
        if old_value != 0 and not self.copy_out(
            "setitimer", old_value, b"\x00" * 16
        ):
            return self._err(E.EFAULT)
        return 0
