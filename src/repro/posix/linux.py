"""The Linux (RedHat 6.0, kernel 2.2.5, glibc 2.1) personality."""

from __future__ import annotations

from repro.sim.personality import Personality

LINUX = Personality(
    key="linux",
    name="Linux",
    api="posix",
    family="linux",
    crt_flavor="glibc",
    kernel_probes_pointers=True,
    case_insensitive_fs=False,
)
