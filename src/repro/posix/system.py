"""The POSIX system facade: per-process system-call entry points.

Every pointer crossing the system-call boundary goes through
:meth:`PosixSystem.copy_in` / :meth:`PosixSystem.copy_out` /
:meth:`PosixSystem.copy_path`, which model the kernel's
``copy_from_user`` family: on the probing Linux personality a bad
pointer produces a graceful ``EFAULT`` error return, never a fault.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.libc import errno_codes as E
from repro.posix.fs_calls import FsCallsMixin
from repro.posix.io_calls import IoCallsMixin
from repro.posix.mem_calls import MemCallsMixin
from repro.posix.proc_calls import ProcCallsMixin
from repro.posix.env_calls import EnvCallsMixin
from repro.sim.guarded import kernel_copy_from_user, kernel_copy_to_user

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.filesystem import OpenFile
    from repro.sim.process import PipeEnd, Process

_U32 = 0xFFFF_FFFF
PATH_MAX = 4096


class PosixSystem(
    IoCallsMixin, FsCallsMixin, MemCallsMixin, ProcCallsMixin, EnvCallsMixin
):
    """All POSIX system-call entry points for one simulated process."""

    def __init__(self, process: "Process") -> None:
        self.process = process
        self.machine = process.machine
        self.mem = process.memory
        self.personality = process.personality
        self.error_reported = False
        self._brk = 0
        self._shm_segments: dict[int, int] = {}

    # ------------------------------------------------------------------
    # errno
    # ------------------------------------------------------------------

    def _err(self, code: int, ret: int = -1) -> int:
        self.process.errno = code
        self.error_reported = True
        return ret

    def _fs_err(self, exc, ret: int = -1) -> int:
        return self._err(E.FS_CODE_TO_ERRNO.get(exc.code, E.EINVAL), ret)

    # ------------------------------------------------------------------
    # Kernel / user copies (the EFAULT discipline)
    # ------------------------------------------------------------------

    def copy_out(self, func: str, address: int, data: bytes) -> bool:
        return kernel_copy_to_user(self.machine, self.mem, func, address, data)

    def copy_in(self, func: str, address: int, size: int) -> bytes | None:
        return kernel_copy_from_user(self.machine, self.mem, func, address, size)

    def copy_path(self, func: str, address: int) -> str | None:
        """Kernel pathname pickup (``getname``): scans for the NUL with
        probing, so a bad pointer yields ``None`` -> EFAULT."""
        out = bytearray()
        cursor = address & _U32
        while len(out) < PATH_MAX:
            chunk = self.copy_in(func, cursor, 1)
            if chunk is None:
                return None
            if chunk == b"\x00":
                return out.decode("latin-1")
            out += chunk
            cursor += 1
        return None  # ENAMETOOLONG territory; callers report an error

    # ------------------------------------------------------------------
    # fd table
    # ------------------------------------------------------------------

    def _fd_object(self, fd: int) -> "OpenFile | PipeEnd | None":
        if not isinstance(fd, int) or fd < 0 or fd > 0xFFFF:
            return None
        return self.process.get_fd(fd)
