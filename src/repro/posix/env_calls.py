"""POSIX Process Environment system calls (15 MuTs)."""

from __future__ import annotations

from repro.libc import errno_codes as E

_U32 = 0xFFFF_FFFF

UTSNAME_FIELD = 65
#: sysconf names the simulation answers.
_SYSCONF = {
    0: 100,  # _SC_ARG_MAX (in KiB here)
    1: 256,  # _SC_CHILD_MAX
    2: 100,  # _SC_CLK_TCK
    3: 64,  # _SC_NGROUPS_MAX
    4: 1024,  # _SC_OPEN_MAX
    8: 4096,  # _SC_PAGESIZE
}


class EnvCallsMixin:
    """Identity, limits, and machine information."""

    # ------------------------------------------------------------------
    # User / group identity
    # ------------------------------------------------------------------

    def getuid(self) -> int:
        return self.process.uid

    def geteuid(self) -> int:
        return self.process.uid

    def getgid(self) -> int:
        return self.process.gid

    def getegid(self) -> int:
        return self.process.gid

    def setuid(self, uid: int) -> int:
        if uid == self.process.uid:
            return 0
        return self._err(E.EPERM)

    def setgid(self, gid: int) -> int:
        if gid == self.process.gid:
            return 0
        return self._err(E.EPERM)

    def getgroups(self, size: int, list_ptr: int) -> int:
        groups = [self.process.gid]
        if size == 0:
            return len(groups)
        if size < len(groups):
            return self._err(E.EINVAL)
        data = b"".join(g.to_bytes(4, "little") for g in groups)
        if not self.copy_out("getgroups", list_ptr, data):
            return self._err(E.EFAULT)
        return len(groups)

    def setgroups(self, size: int, list_ptr: int) -> int:
        return self._err(E.EPERM)  # privileged operation

    # ------------------------------------------------------------------
    # Machine identity
    # ------------------------------------------------------------------

    def uname(self, buf: int) -> int:
        fields = [b"Linux", b"ballista", b"2.2.5", b"#1 SMP", b"i686"]
        blob = b"".join(f.ljust(UTSNAME_FIELD, b"\x00") for f in fields)
        if not self.copy_out("uname", buf, blob):
            return self._err(E.EFAULT)
        return 0

    def gethostname(self, name: int, length: int) -> int:
        hostname = b"ballista\x00"
        length &= _U32
        if length < len(hostname):
            return self._err(E.ENAMETOOLONG)
        if not self.copy_out("gethostname", name, hostname):
            return self._err(E.EFAULT)
        return 0

    def sethostname(self, name: int, length: int) -> int:
        return self._err(E.EPERM)  # privileged operation

    # ------------------------------------------------------------------
    # Limits and accounting
    # ------------------------------------------------------------------

    def getrlimit(self, resource: int, rlim: int) -> int:
        if not 0 <= resource <= 10:
            return self._err(E.EINVAL)
        data = (0x40_0000).to_bytes(4, "little") + (0x80_0000).to_bytes(4, "little")
        if not self.copy_out("getrlimit", rlim, data):
            return self._err(E.EFAULT)
        return 0

    def setrlimit(self, resource: int, rlim: int) -> int:
        if not 0 <= resource <= 10:
            return self._err(E.EINVAL)
        raw = self.copy_in("setrlimit", rlim, 8)
        if raw is None:
            return self._err(E.EFAULT)
        soft = int.from_bytes(raw[0:4], "little")
        hard = int.from_bytes(raw[4:8], "little")
        if soft > hard:
            return self._err(E.EINVAL)
        return 0

    def times(self, buf: int) -> int:
        ticks = (self.machine.clock.tick_count() // 10) & _U32
        data = ticks.to_bytes(4, "little") * 4
        if buf != 0 and not self.copy_out("times", buf, data):
            return self._err(E.EFAULT)
        return ticks

    def sysconf(self, name: int) -> int:
        if name not in _SYSCONF:
            return self._err(E.EINVAL)
        return _SYSCONF[name]
