"""Fault taxonomy for the simulated machine.

Every abnormal event that can happen while a Module under Test executes is
modelled as an exception rooted at :class:`SimFault`.  The Ballista executor
(:mod:`repro.core.executor`) catches these and maps them onto the CRASH
severity scale:

* :class:`SystemCrash` (a fault taken in kernel mode, or corruption of
  shared system state) -> **Catastrophic**.
* :class:`TaskHang` (a call that would block forever) -> **Restart**.
* :class:`HardwareFault` subclasses raised in user mode (access violation,
  misalignment, stack overflow) and unhandled thrown exceptions ->
  **Abort**.

The exception classes carry enough structure (address, access kind, signal
name) for the reports to mirror the paper's terminology: a user-mode
:class:`AccessViolation` is reported as ``SIGSEGV`` on POSIX personalities
and ``EXCEPTION_ACCESS_VIOLATION`` on Win32 personalities.
"""

from __future__ import annotations


class SimFault(Exception):
    """Base class for all abnormal events in the simulated machine."""


class HardwareFault(SimFault):
    """A CPU-level fault taken while executing in *user* mode.

    User-mode hardware faults terminate the offending task only; the
    Ballista executor classifies them as Abort failures.
    """

    #: POSIX signal name delivered for this fault.
    posix_signal = "SIGSEGV"
    #: Win32 structured-exception code name raised for this fault.
    win32_exception = "EXCEPTION_ACCESS_VIOLATION"


class MemoryFault(HardwareFault):
    """An invalid memory access.

    :param address: faulting virtual address.
    :param access: ``"read"``, ``"write"`` or ``"execute"``.
    :param reason: short human-readable cause (``"unmapped"``,
        ``"protection"``, ``"freed"``).
    """

    def __init__(self, address: int, access: str, reason: str = "unmapped") -> None:
        self.address = address
        self.access = access
        self.reason = reason
        super().__init__(
            f"invalid {access} at 0x{address & 0xFFFFFFFF:08X} ({reason})"
        )


class AccessViolation(MemoryFault):
    """Access to unmapped memory or violation of page protections."""

    posix_signal = "SIGSEGV"
    win32_exception = "EXCEPTION_ACCESS_VIOLATION"


class MisalignedAccess(MemoryFault):
    """A misaligned wide access on a strict-alignment CPU (e.g. the ARM
    and SH3 cores Windows CE devices used)."""

    posix_signal = "SIGBUS"
    win32_exception = "EXCEPTION_DATATYPE_MISALIGNMENT"

    def __init__(self, address: int, access: str) -> None:
        super().__init__(address, access, reason="misaligned")


class StackOverflowFault(HardwareFault):
    """Stack exhaustion (e.g. runaway recursion in a C library routine)."""

    posix_signal = "SIGSEGV"
    win32_exception = "EXCEPTION_STACK_OVERFLOW"

    def __init__(self, depth: int) -> None:
        self.depth = depth
        super().__init__(f"stack overflow at recursion depth {depth}")


class ArithmeticFault(HardwareFault):
    """Integer divide-by-zero or trapped floating point operation."""

    posix_signal = "SIGFPE"
    win32_exception = "EXCEPTION_INT_DIVIDE_BY_ZERO"

    def __init__(self, operation: str, win32_exception: str | None = None) -> None:
        self.operation = operation
        if win32_exception is not None:
            self.win32_exception = win32_exception
        super().__init__(f"arithmetic fault in {operation}")


class SoftwareAbort(SimFault):
    """A deliberate runtime abort (``abort()``/``SIGABRT``), e.g. glibc's
    consistency checks in ``free()``."""

    posix_signal = "SIGABRT"
    win32_exception = "EXCEPTION_NONCONTINUABLE_EXCEPTION"

    def __init__(self, origin: str) -> None:
        self.origin = origin
        super().__init__(f"runtime abort raised by {origin}")


class FatalSignal(SoftwareAbort):
    """A fatal signal delivered to the task itself (e.g. the test
    process calling ``kill(getpid(), SIGTERM)``) -- abnormal task
    termination, classified Abort."""

    def __init__(self, signal_name: str) -> None:
        self.posix_signal = signal_name
        super().__init__(f"delivery of {signal_name}")


class ThrownException(SimFault):
    """An exception *thrown* by a Win32 API implementation as an error
    report (the Win32 thrown-exception error reporting model, paper
    section 3.1).

    The paper's harness "intercepted all integer and string exception
    values, and to be more than fair in evaluation, assumed that all such
    exceptions were valid and recoverable"; only unrecoverable exceptions
    count as Abort failures.  :attr:`recoverable` carries that distinction.
    """

    def __init__(self, value: object, recoverable: bool = True) -> None:
        self.value = value
        self.recoverable = recoverable
        super().__init__(f"thrown exception {value!r} (recoverable={recoverable})")


class ResourceExhausted(SimFault):
    """A resource request denied by an exhausted machine (injected by
    :class:`~repro.sim.faults.FaultInjector`).

    Robust implementations convert this into an error report (``malloc``
    returning NULL with ``ENOMEM``); implementations that let it escape
    the API boundary abort the task, which the executor classifies as an
    Abort failure -- the interesting robustness finding.
    """

    posix_signal = "SIGSEGV"
    win32_exception = "EXCEPTION_ACCESS_VIOLATION"

    def __init__(self, family: str, resource: str) -> None:
        self.family = family
        self.resource = resource
        super().__init__(f"{family} exhausted ({resource})")


class SystemCrash(SimFault):
    """A complete operating system crash requiring a reboot.

    Raised when a fault is taken in *kernel* mode (unprobed user pointer
    dereferenced by kernel code), or when corruption of shared system
    state crosses the machine's tolerance.  Classified Catastrophic.
    """

    def __init__(self, reason: str, function: str | None = None) -> None:
        self.reason = reason
        self.function = function
        where = f" in {function}" if function else ""
        super().__init__(f"system crash{where}: {reason}")


class MachineCrashed(SimFault):
    """An operation was attempted on a machine that has already crashed
    and has not been rebooted."""

    def __init__(self) -> None:
        super().__init__("machine has crashed; reboot() required")


class TaskHang(SimFault):
    """The current call would block forever (watchdog expired).

    Classified as a Restart failure: the task must be killed and
    restarted for the application to make progress.
    """

    def __init__(self, function: str, waited_ticks: int) -> None:
        self.function = function
        self.waited_ticks = waited_ticks
        super().__init__(f"{function} hung (no progress after {waited_ticks} ticks)")
