"""Deterministic resource-exhaustion fault injection.

The sequence-campaign mode (:mod:`repro.core.sequences`) probes how API
implementations behave when the operating system itself runs dry: a
seeded plan arms one *fault family* for one step of a call sequence, and
every matching resource request made **during the call under test** then
fails the way a genuinely exhausted machine would.

Three families are modelled, one per resource-allocation chokepoint in
the simulated machine:

* ``"alloc"`` -- address-space exhaustion: every
  :meth:`~repro.sim.memory.AddressSpace.map` raises
  :class:`~repro.sim.errors.ResourceExhausted` (the simulated kernel is
  out of commit), which robust C runtimes surface as ``malloc`` -> NULL
  with ``ENOMEM``.
* ``"handles"`` -- kernel handle-table exhaustion: every
  :meth:`~repro.sim.objects.HandleTable.insert` fails, the Win32
  "no more system handles" regime.
* ``"disk"`` -- disk-full: every
  :meth:`~repro.sim.filesystem.FileSystem.create_file` raises ENOSPC,
  exactly the error the filesystem already produces at its
  ``max_files`` capacity.

The injector is **scoped**: faults fire only inside the executor's call
window (:meth:`FaultInjector.window`), never during test-value
constructors or destructors, so a faulted step differs from its clean
twin in exactly one way -- the MuT saw an exhausted machine.  The
failure-atomic expectation checked by the sequence runner follows from
that scoping: a call that *reports failure* under injection must leave
no residue in machine wear for the next step.
"""

from __future__ import annotations

from repro.sim.errors import ResourceExhausted

#: The fault families, in their canonical (seeding) order.
FAULT_FAMILIES: tuple[str, ...] = ("alloc", "handles", "disk")


class FaultInjector:
    """Per-machine fault-injection state.

    One injector belongs to one :class:`~repro.sim.machine.Machine` and
    survives reboots (arming is a harness decision, not machine state).
    It is inert unless *armed* with a family **and** opened as a call
    window, so ordinary campaigns never pay more than one attribute
    check per resource request.
    """

    def __init__(self) -> None:
        #: Armed fault family (``None`` = disarmed).
        self.family: str | None = None
        #: True while execution is inside the call-under-test window.
        self.active = False
        #: Number of resource requests failed since the last arming.
        self.fired = 0

    # ------------------------------------------------------------------

    def arm(self, family: str) -> None:
        """Arm one fault family for the next call window."""
        if family not in FAULT_FAMILIES:
            raise ValueError(
                f"unknown fault family {family!r}; expected one of "
                f"{', '.join(FAULT_FAMILIES)}"
            )
        self.family = family
        self.fired = 0

    def disarm(self) -> None:
        self.family = None
        self.active = False

    def window(self) -> "_FaultWindow":
        """Context manager bounding the call under test; matching
        resource requests fail only while it is open."""
        return _FaultWindow(self)

    # ------------------------------------------------------------------

    def trip(self, family: str) -> bool:
        """Called by the resource chokepoints: should this request fail?"""
        if self.active and self.family == family:
            self.fired += 1
            return True
        return False

    def exhaust(self, family: str, resource: str) -> None:
        """Chokepoint helper: raise when the request must fail."""
        if self.trip(family):
            raise ResourceExhausted(family, resource)


class _FaultWindow:
    def __init__(self, injector: FaultInjector) -> None:
        self._injector = injector

    def __enter__(self) -> FaultInjector:
        self._injector.active = True
        return self._injector

    def __exit__(self, *exc_info: object) -> None:
        self._injector.active = False
