"""Simulated processes and threads.

A :class:`Process` owns the per-process state an OS API call can touch:
a private address space (plus the machine's shared arena where the
personality has one), a Win32 handle table, a POSIX fd table, ``errno``
and ``GetLastError`` values, an environment block, and its threads.

One Ballista test case runs inside one fresh process; the machine --
filesystem, shared arena, accumulated corruption -- persists across
test cases exactly as the physical test machine did in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.filesystem import FileNode, FileSystemError, OpenFile, Pipe
from repro.sim.memory import AddressSpace, Protection
from repro.sim.objects import HandleTable, ProcessObject, ThreadObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine


class PipeEnd:
    """One end of an anonymous pipe, usable where an open file is."""

    def __init__(self, pipe: Pipe, readable: bool) -> None:
        self.pipe = pipe
        self.readable = readable
        self.writable = not readable
        self.closed = False

    def read(self, count: int) -> bytes:
        if self.closed or not self.readable:
            raise FileSystemError("EBADF", "<pipe>")
        return self.pipe.read(count)

    def write(self, data: bytes) -> int:
        if self.closed or not self.writable:
            raise FileSystemError("EBADF", "<pipe>")
        return self.pipe.write(data)

    def seek(self, offset: int, whence: int = 0) -> int:
        raise FileSystemError("ESPIPE", "<pipe>")

    def close(self) -> None:
        self.closed = True
        if self.readable:
            self.pipe.read_open = False
        else:
            self.pipe.write_open = False


class Process:
    """A simulated process (one task running one test case)."""

    def __init__(self, machine: "Machine", pid: int) -> None:
        self.machine = machine
        self.personality = machine.personality
        self.pid = pid
        self.memory = AddressSpace(
            strict_alignment=self.personality.strict_alignment
        )
        self.memory.faults = machine.faults
        if machine.shared_region is not None:
            self.memory.attach(machine.shared_region)
        #: Code and stack mappings so "pointer into code" / "stack
        #: pointer" test values have somewhere real to point.
        self.code_region = self.memory.map(
            0x1000, Protection.RX, tag="code", at=0x0040_1000 - 0x1000
        )
        self.stack_region = self.memory.map(0x4000, Protection.RW, tag="stack")

        self.handles = HandleTable()
        self.handles.faults = machine.faults
        self.fds: dict[int, OpenFile | PipeEnd] = {}
        self.errno = 0
        self.last_error = 0
        self.environ: dict[str, str] = dict(machine.initial_environ)
        self.cwd = "/"
        self.umask = 0o022
        self.uid = 1000
        self.gid = 1000

        self.exited = False
        self.exit_code: int | None = None

        self._next_tid = pid * 0x100 + 1
        self.kernel_object = ProcessObject(pid, name=f"pid{pid}")
        self.main_thread = self.spawn_thread()
        #: Per-process C runtime state, created lazily by repro.libc.
        self.crt: object | None = None

        self._open_console_fds()

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def spawn_thread(self, suspended: bool = False) -> ThreadObject:
        thread = ThreadObject(self._next_tid, suspended=suspended)
        self._next_tid += 1
        return thread

    # ------------------------------------------------------------------
    # POSIX fd table
    # ------------------------------------------------------------------

    def _open_console_fds(self) -> None:
        """Pre-open fds 0/1/2 on a console device node (not linked into
        the filesystem tree, like a character device)."""
        now = self.machine.clock.tick_count
        console = FileNode("<console>", now())
        for fd in (0, 1, 2):
            self.fds[fd] = OpenFile(
                console, readable=(fd == 0), writable=(fd != 0), now=now
            )

    def alloc_fd(self, obj: OpenFile | PipeEnd, lowest: int = 0) -> int:
        fd = lowest
        while fd in self.fds:
            fd += 1
        self.fds[fd] = obj
        return fd

    def get_fd(self, fd: int) -> OpenFile | PipeEnd | None:
        return self.fds.get(fd)

    def close_fd(self, fd: int) -> bool:
        obj = self.fds.pop(fd, None)
        if obj is None:
            return False
        obj.close()
        return True

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def terminate(self, exit_code: int = 0) -> None:
        """Close everything the process holds (the OS-level cleanup a
        real process death performs)."""
        if self.exited:
            return
        self.exited = True
        self.exit_code = exit_code
        self.kernel_object.exit_code = exit_code
        for fd in list(self.fds):
            self.close_fd(fd)
        self.handles.close_all()
