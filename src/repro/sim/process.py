"""Simulated processes and threads.

A :class:`Process` owns the per-process state an OS API call can touch:
a private address space (plus the machine's shared arena where the
personality has one), a Win32 handle table, a POSIX fd table, ``errno``
and ``GetLastError`` values, an environment block, and its threads.

One Ballista test case runs inside one fresh process; the machine --
filesystem, shared arena, accumulated corruption -- persists across
test cases exactly as the physical test machine did in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.filesystem import FileNode, FileSystemError, OpenFile, Pipe
from repro.sim.memory import USER_BASE, AddressSpace, Protection, Region
from repro.sim.objects import HandleTable, ProcessObject, ThreadObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine

#: The bootstrap layout every fresh process starts with: a code mapping
#: at the fixed image base and a stack allocated right after it.  The
#: constants below are exactly what two :meth:`AddressSpace.map` calls
#: produce (8 KiB-rounded bump allocation with a guard gap), precomputed
#: so process creation -- one per test case -- can place the regions
#: directly instead of replaying the allocator arithmetic.
_CODE_AT = 0x0040_1000 - 0x1000
_CODE_SIZE = 0x1000
_STACK_SIZE = 0x4000
_STACK_AT = (_CODE_AT + _CODE_SIZE + 8191) & ~4095
_BOOT_CURSOR = (_STACK_AT + _STACK_SIZE + 8191) & ~4095
assert _CODE_AT == USER_BASE and _STACK_AT > _CODE_AT + _CODE_SIZE


class PipeEnd:
    """One end of an anonymous pipe, usable where an open file is."""

    __slots__ = ("pipe", "readable", "writable", "closed")

    def __init__(self, pipe: Pipe, readable: bool) -> None:
        self.pipe = pipe
        self.readable = readable
        self.writable = not readable
        self.closed = False

    def read(self, count: int) -> bytes:
        if self.closed or not self.readable:
            raise FileSystemError("EBADF", "<pipe>")
        return self.pipe.read(count)

    def write(self, data: bytes) -> int:
        if self.closed or not self.writable:
            raise FileSystemError("EBADF", "<pipe>")
        return self.pipe.write(data)

    def seek(self, offset: int, whence: int = 0) -> int:
        raise FileSystemError("ESPIPE", "<pipe>")

    def close(self) -> None:
        self.closed = True
        if self.readable:
            self.pipe.read_open = False
        else:
            self.pipe.write_open = False


class Process:
    """A simulated process (one task running one test case)."""

    __slots__ = (
        "machine",
        "personality",
        "pid",
        "memory",
        "code_region",
        "stack_region",
        "handles",
        "fds",
        "errno",
        "last_error",
        "_environ",
        "cwd",
        "umask",
        "uid",
        "gid",
        "exited",
        "exit_code",
        "_next_tid",
        "kernel_object",
        "main_thread",
        "crt",
    )

    def __init__(self, machine: "Machine", pid: int) -> None:
        self.machine = machine
        self.personality = machine.personality
        self.pid = pid
        memory = AddressSpace(strict_alignment=self.personality.strict_alignment)
        self.memory = memory
        faults = machine.faults
        memory.faults = faults
        #: Code and stack mappings so "pointer into code" / "stack
        #: pointer" test values have somewhere real to point.  The fast
        #: path below is byte-identical to mapping them through
        #: :meth:`AddressSpace.map` (same addresses, same cursor, same
        #: region order); an open fault window still takes the mapping
        #: path so armed "alloc" exhaustion fires exactly as before.
        shared = machine.shared_region
        if faults is not None and faults.active:
            if shared is not None:
                memory.attach(shared)
            self.code_region = memory.map(
                _CODE_SIZE, Protection.RX, tag="code", at=_CODE_AT
            )
            self.stack_region = memory.map(
                _STACK_SIZE, Protection.RW, tag="stack"
            )
        else:
            code = Region(_CODE_AT, _CODE_SIZE, Protection.RX, "code")
            stack = Region(_STACK_AT, _STACK_SIZE, Protection.RW, "stack")
            self.code_region = code
            self.stack_region = stack
            if shared is not None:
                memory._starts = [_CODE_AT, _STACK_AT, shared.start]
                memory._regions = [code, stack, shared]
            else:
                memory._starts = [_CODE_AT, _STACK_AT]
                memory._regions = [code, stack]
            memory._cursor = _BOOT_CURSOR

        self.handles = HandleTable()
        self.handles.faults = machine.faults
        self.fds: dict[int, OpenFile | PipeEnd] = {}
        self.errno = 0
        self.last_error = 0
        self._environ: dict[str, str] | None = None
        self.cwd = "/"
        self.umask = 0o022
        self.uid = 1000
        self.gid = 1000

        self.exited = False
        self.exit_code: int | None = None

        tid = pid * 0x100 + 1
        self._next_tid = tid + 1
        self.kernel_object = ProcessObject(pid, name=f"pid{pid}")
        self.main_thread = ThreadObject(tid)
        #: Per-process C runtime state, created lazily by repro.libc.
        self.crt: object | None = None

        # Pre-open fds 0/1/2 on a console device node (not linked into
        # the filesystem tree, like a character device).
        now = machine.clock.tick_count
        console = FileNode("<console>", now())
        fds = self.fds
        fds[0] = OpenFile(console, readable=True, writable=False, now=now)
        fds[1] = OpenFile(console, readable=False, writable=True, now=now)
        fds[2] = OpenFile(console, readable=False, writable=True, now=now)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def spawn_thread(self, suspended: bool = False) -> ThreadObject:
        thread = ThreadObject(self._next_tid, suspended=suspended)
        self._next_tid += 1
        return thread

    # ------------------------------------------------------------------
    # POSIX fd table
    # ------------------------------------------------------------------

    @property
    def environ(self) -> dict[str, str]:
        """The process's private environment block, copied from the
        machine's boot image on first access.  The boot image is fixed
        for the machine's life, so the lazy copy observes exactly what
        an eager copy at process creation would -- and the overwhelming
        majority of test processes never touch their environment."""
        environ = self._environ
        if environ is None:
            environ = dict(self.machine.initial_environ)
            self._environ = environ
        return environ

    def alloc_fd(self, obj: OpenFile | PipeEnd, lowest: int = 0) -> int:
        fd = lowest
        while fd in self.fds:
            fd += 1
        self.fds[fd] = obj
        return fd

    def get_fd(self, fd: int) -> OpenFile | PipeEnd | None:
        return self.fds.get(fd)

    def close_fd(self, fd: int) -> bool:
        obj = self.fds.pop(fd, None)
        if obj is None:
            return False
        obj.close()
        return True

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def terminate(self, exit_code: int = 0) -> None:
        """Close everything the process holds (the OS-level cleanup a
        real process death performs)."""
        if self.exited:
            return
        self.exited = True
        self.exit_code = exit_code
        self.kernel_object.exit_code = exit_code
        fds = self.fds
        for obj in fds.values():
            obj.close()
        fds.clear()
        self.handles.close_all()
