"""Simulated machine substrate.

This package implements the execution substrate on which the simulated
operating systems (:mod:`repro.win32`, :mod:`repro.posix`) and C libraries
(:mod:`repro.libc`) run:

* :mod:`repro.sim.errors` -- the fault taxonomy (access violations, system
  crashes, hangs, ...) that the Ballista harness classifies on the CRASH
  scale.
* :mod:`repro.sim.memory` -- a 32-bit virtual address space with regions,
  page protections, and fault semantics.
* :mod:`repro.sim.objects` -- the kernel object manager and per-process
  handle tables.
* :mod:`repro.sim.filesystem` -- an in-memory filesystem shared by the
  POSIX fd layer, the Win32 file API, and the C stdio layer.
* :mod:`repro.sim.process` -- simulated processes/threads with per-process
  address spaces, fd/handle tables, errno, and ``GetLastError`` state.
* :mod:`repro.sim.machine` -- a whole machine: one OS personality, one
  filesystem, shared system state, and crash/reboot semantics.
* :mod:`repro.sim.personality` -- declarative descriptions of how each OS
  variant validates (or fails to validate) exceptional parameters.
"""

from repro.sim.errors import (
    AccessViolation,
    HardwareFault,
    MachineCrashed,
    MemoryFault,
    MisalignedAccess,
    SimFault,
    StackOverflowFault,
    SystemCrash,
    TaskHang,
)
from repro.sim.machine import Machine
from repro.sim.memory import AddressSpace, Protection, Region
from repro.sim.personality import Personality
from repro.sim.process import Process

__all__ = [
    "AccessViolation",
    "AddressSpace",
    "HardwareFault",
    "Machine",
    "MachineCrashed",
    "MemoryFault",
    "MisalignedAccess",
    "Personality",
    "Process",
    "Protection",
    "Region",
    "SimFault",
    "StackOverflowFault",
    "SystemCrash",
    "TaskHang",
]
