"""Guarded memory access: the heart of the per-variant crash semantics.

Three places dereference caller-supplied pointers, with different
robustness consequences:

* **user-mode library code** (kernel32.dll stubs, the C runtime): a bad
  pointer faults in user mode -> the task aborts (Abort failure).  This
  is a plain :meth:`AddressSpace.read`/``write``.
* **probing kernels** (NT, 2000, Linux): the kernel validates the
  pointer first (``ProbeForWrite`` / ``copy_to_user``) and returns a
  graceful error -- :func:`kernel_copy_to_user` returns ``False``.
* **non-probing kernel paths** (the Windows 9x / CE functions in the
  paper's Table 3): the fault is taken in kernel mode.  Depending on the
  personality's per-function mode this either panics the machine
  immediately (:data:`~repro.sim.personality.RAW`) or misdirects the
  write into shared system state, silently corrupting it
  (:data:`~repro.sim.personality.CORRUPT`) until the accumulated damage
  crashes the machine -- the "could not reproduce outside the harness"
  crashes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.errors import MemoryFault
from repro.sim.personality import CORRUPT, PROBE, RAW

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.machine import Machine
    from repro.sim.memory import AddressSpace


def kernel_copy_to_user(
    machine: "Machine",
    mem: "AddressSpace",
    function: str,
    address: int,
    data: bytes,
) -> bool:
    """Kernel-side write through a caller pointer.

    Returns ``True`` when the caller will observe success, ``False``
    when a probing kernel detected the bad pointer (caller returns an
    error code).  May panic the machine on non-probing personalities.
    """
    mode = machine.personality.kernel_access_mode(function)
    try:
        mem.write(address, data)
        return True
    except MemoryFault as fault:
        if mode == RAW:
            machine.panic(
                f"kernel-mode fault writing 0x{fault.address:08X}", function
            )
        if mode == CORRUPT:
            # The write was misdirected into the shared arena: the call
            # appears to succeed while system state decays.
            machine.note_corruption(function)
            return True
        return False


def kernel_copy_from_user(
    machine: "Machine",
    mem: "AddressSpace",
    function: str,
    address: int,
    size: int,
) -> bytes | None:
    """Kernel-side read through a caller pointer; ``None`` when a probing
    kernel rejected it.  Non-probing reads of garbage do not crash by
    themselves, but RAW-mode functions fault in kernel mode on unmapped
    addresses just as writes do."""
    mode = machine.personality.kernel_access_mode(function)
    try:
        return mem.read(address, size)
    except MemoryFault as fault:
        if mode == RAW:
            machine.panic(
                f"kernel-mode fault reading 0x{fault.address:08X}", function
            )
        if mode == CORRUPT:
            machine.note_corruption(function)
            return b"\x00" * size  # kernel read stale arena bytes instead
        return None


def crt_write(
    machine: "Machine",
    mem: "AddressSpace",
    function: str,
    address: int,
    data: bytes,
) -> bool:
    """C-runtime write through a caller pointer.

    In the default (PROBE) mode this is ordinary user-mode access: a bad
    pointer raises and the task aborts.  For functions the personality
    lists as RAW/CORRUPT the fault instead lands in shared system memory
    (single shared address space on CE; the writable shared arena on
    9x), crashing or corrupting the machine.

    Returns ``True`` when the bytes actually landed, ``False`` when the
    fault was absorbed as corruption (callers must stop streaming more
    data at that point).
    """
    mode = machine.personality.kernel_access_mode(function)
    if mode == PROBE:
        mem.write(address, data)
        return True
    try:
        mem.write(address, data)
        return True
    except MemoryFault as fault:
        if mode == RAW:
            machine.panic(
                f"fault in shared system memory writing 0x{fault.address:08X}",
                function,
            )
        machine.note_corruption(function)
        return False


def crt_read(
    machine: "Machine",
    mem: "AddressSpace",
    function: str,
    address: int,
    size: int,
) -> bytes | None:
    """C-runtime read through a caller pointer.

    PROBE mode is an ordinary user-mode load (faults propagate).  For
    RAW functions a fault panics the machine; for CORRUPT functions it
    is absorbed (``None`` is returned and the caller stops reading).
    """
    mode = machine.personality.kernel_access_mode(function)
    if mode == PROBE:
        return mem.read(address, size)
    try:
        return mem.read(address, size)
    except MemoryFault as fault:
        if mode == RAW:
            machine.panic(
                f"fault in shared system memory reading 0x{fault.address:08X}",
                function,
            )
        machine.note_corruption(function)
        return None
