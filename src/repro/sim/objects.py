"""Kernel object manager and per-process handle tables.

Win32 HANDLEs index a per-process :class:`HandleTable` whose slots point
at machine-wide :class:`KernelObject` instances (events, mutexes, threads,
open files, file mappings, heaps...).  POSIX file descriptors are a
separate, simpler table kept on the process (see
:mod:`repro.sim.process`); both ultimately share the same open-file
objects from :mod:`repro.sim.filesystem`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.filesystem import OpenFile
    from repro.sim.memory import Region

#: Win32 pseudo-handles (negative DWORDs in real headers).
CURRENT_PROCESS_HANDLE = 0xFFFF_FFFF  # GetCurrentProcess()
CURRENT_THREAD_HANDLE = 0xFFFF_FFFE  # GetCurrentThread()
INVALID_HANDLE_VALUE = 0xFFFF_FFFF


class KernelObject:
    """Base class for every object the kernel hands out handles to."""

    kind = "object"
    _ids = itertools.count(1)

    def __init__(self, name: str | None = None) -> None:
        self.object_id = next(KernelObject._ids)
        self.name = name
        self.refcount = 0
        #: Signalled state for waitable objects.
        self.signaled = False
        #: Set once every handle to the object has been closed.
        self.destroyed = False

    def on_last_close(self) -> None:
        """Hook run when the final handle is closed."""
        self.destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} #{self.object_id} name={self.name!r}>"


class ProcessObject(KernelObject):
    kind = "process"

    def __init__(self, pid: int, name: str | None = None) -> None:
        # Base fields assigned inline: one ProcessObject exists per test
        # case, so the super().__init__ dispatch is worth flattening.
        self.object_id = next(KernelObject._ids)
        self.name = name
        self.refcount = 0
        self.signaled = False
        self.destroyed = False
        self.pid = pid
        self.exit_code: int | None = None


class ThreadObject(KernelObject):
    kind = "thread"

    def __init__(
        self, tid: int, suspended: bool = False, name: str | None = None
    ) -> None:
        # Base fields assigned inline (one main thread per test case).
        self.object_id = next(KernelObject._ids)
        self.name = name
        self.refcount = 0
        self.signaled = False
        self.destroyed = False
        self.tid = tid
        self.suspend_count = 1 if suspended else 0
        self.exit_code: int | None = None
        self._context: dict[str, int] | None = None

    @property
    def context(self) -> dict[str, int]:
        """Simulated CPU context (register name -> value) captured by
        GetThreadContext / installed by SetThreadContext.  Materialised
        on first access: most threads (one per simulated process, one
        process per test case) never have their context inspected."""
        registers = self._context
        if registers is None:
            registers = {
                "eax": 0, "ebx": 0, "ecx": 0, "edx": 0,
                "esi": 0, "edi": 0, "ebp": 0, "esp": 0x7FFD_0000,
                "eip": 0x0040_1000, "eflags": 0x202,
            }
            self._context = registers
        return registers


class EventObject(KernelObject):
    kind = "event"

    def __init__(self, manual_reset: bool, initial_state: bool, name=None) -> None:
        super().__init__(name)
        self.manual_reset = manual_reset
        self.signaled = initial_state


class MutexObject(KernelObject):
    kind = "mutex"

    def __init__(self, initially_owned: bool, name: str | None = None) -> None:
        super().__init__(name)
        self.owner_tid: int | None = None
        self.recursion = 1 if initially_owned else 0
        self.signaled = not initially_owned


class SemaphoreObject(KernelObject):
    kind = "semaphore"

    def __init__(self, initial: int, maximum: int, name: str | None = None) -> None:
        super().__init__(name)
        self.count = initial
        self.maximum = maximum
        self.signaled = initial > 0


class FileObject(KernelObject):
    """A handle-level wrapper around an open file description."""

    kind = "file"

    def __init__(self, open_file: "OpenFile", name: str | None = None) -> None:
        super().__init__(name)
        self.open_file = open_file
        self.signaled = True  # file handles are always signalled
        #: LockFile ranges: list of (start, length, exclusive).
        self.locks: list[tuple[int, int, bool]] = []

    def on_last_close(self) -> None:
        super().on_last_close()
        self.open_file.close()


class FileMappingObject(KernelObject):
    kind = "file-mapping"

    def __init__(self, size: int, backing: "OpenFile | None", name=None) -> None:
        super().__init__(name)
        self.size = size
        self.backing = backing
        self.views: list[Region] = []


class HeapObject(KernelObject):
    """A Win32 growable heap (HeapCreate / HeapAlloc)."""

    kind = "heap"

    def __init__(self, initial_size: int, maximum_size: int, name=None) -> None:
        super().__init__(name)
        self.initial_size = initial_size
        self.maximum_size = maximum_size
        #: address -> Region for blocks carved from this heap.
        self.blocks: dict[int, "Region"] = {}


class HandleTable:
    """Per-process table mapping HANDLE values to kernel objects.

    Real Win32 handles are small multiples of 4; reusing the same
    low-numbered values across processes is what makes "stale handle"
    test values interesting, so the allocator is deliberately dense.
    """

    def __init__(self) -> None:
        self._slots: dict[int, KernelObject] = {}
        self._next = 0x4
        #: Optional :class:`~repro.sim.faults.FaultInjector` (attached by
        #: the owning process); armed "handles" faults fail :meth:`insert`.
        self.faults = None

    def insert(self, obj: KernelObject) -> int:
        """Add ``obj`` and return its new handle value.

        Raises :class:`~repro.sim.errors.ResourceExhausted` when an
        armed ``"handles"`` fault window is open: the kernel handle
        table is full and no new object can be handed out.
        """
        if self.faults is not None:
            self.faults.exhaust("handles", f"{obj.kind} object")
        handle = self._next
        self._next += 4
        self._slots[handle] = obj
        obj.refcount += 1
        return handle

    def get(self, handle: int) -> KernelObject | None:
        """Resolve a handle, or ``None`` when the value is not a live
        handle in this table (pseudo-handles are resolved by the kernel
        layer, not here)."""
        return self._slots.get(handle & 0xFFFFFFFF)

    def close(self, handle: int) -> bool:
        obj = self._slots.pop(handle & 0xFFFFFFFF, None)
        if obj is None:
            return False
        obj.refcount -= 1
        if obj.refcount <= 0:
            obj.on_last_close()
        return True

    def close_all(self) -> None:
        for handle in list(self._slots):
            self.close(handle)

    def handles(self) -> list[int]:
        return sorted(self._slots)

    def __len__(self) -> int:
        return len(self._slots)
