"""Virtual time for the simulated machine.

All timestamps and timeouts in the simulation are expressed in *ticks*
(one tick ~ one millisecond of virtual time).  Blocking operations
advance the clock; a watchdog budget per call is how the executor turns
"would block forever" into a detectable
:class:`~repro.sim.errors.TaskHang` instead of actually hanging the test
harness (the simulation analogue of Ballista's task timeout).
"""

from __future__ import annotations

from repro.sim.errors import TaskHang

#: Seconds corresponding to tick 0; an arbitrary fixed epoch so that
#: simulated wall-clock conversions are deterministic (2000-06-25, the
#: first day of DSN 2000).
EPOCH_UNIX_SECONDS = 961_891_200


class SimClock:
    """Monotonic virtual clock with a per-call watchdog.

    :param watchdog_ticks: how long a single call may wait before the
        harness declares it hung.
    """

    __slots__ = (
        "ticks",
        "watchdog_ticks",
        "_call_started_at",
        "_current_function",
    )

    def __init__(self, watchdog_ticks: int = 30_000) -> None:
        self.ticks = 0
        self.watchdog_ticks = watchdog_ticks
        self._call_started_at = 0
        self._current_function = "<none>"

    def reset(self, ticks: int = 0) -> None:
        """Power-cycle the clock: observable state identical to a fresh
        clock whose ``ticks`` were then set to ``ticks`` (the machine's
        copy-on-write reboot path uses this instead of constructing a
        new clock)."""
        self.ticks = ticks
        self._call_started_at = 0
        self._current_function = "<none>"

    # ------------------------------------------------------------------

    def begin_call(self, function: str) -> None:
        """Arm the watchdog for a new API call."""
        self._call_started_at = self.ticks
        self._current_function = function

    def advance(self, ticks: int) -> None:
        """Advance virtual time (e.g. while blocked on a wait)."""
        self.ticks += max(0, int(ticks))
        self._check_watchdog()

    def begin_call_tick(self, function: str) -> None:
        """:meth:`begin_call` fused with ``advance(1)`` -- the pair the
        executor issues at the top of every call under test.  Observable
        state and watchdog behaviour are identical to calling the two
        separately (a zero-tick watchdog budget still hangs)."""
        started = self.ticks
        self._call_started_at = started
        self._current_function = function
        self.ticks = started + 1
        if 1 > self.watchdog_ticks:
            raise TaskHang(function, 1)

    def block_forever(self) -> None:
        """Model a wait that can never be satisfied: burn the rest of the
        watchdog budget and raise :class:`TaskHang`."""
        waited = self.ticks - self._call_started_at
        self.ticks = self._call_started_at + self.watchdog_ticks + 1
        raise TaskHang(self._current_function, max(waited, self.watchdog_ticks))

    def _check_watchdog(self) -> None:
        waited = self.ticks - self._call_started_at
        if waited > self.watchdog_ticks:
            raise TaskHang(self._current_function, waited)

    # ------------------------------------------------------------------

    def unix_seconds(self) -> int:
        """Simulated wall-clock time as Unix seconds."""
        return EPOCH_UNIX_SECONDS + self.ticks // 1000

    def tick_count(self) -> int:
        """Milliseconds since simulated boot (Win32 ``GetTickCount``)."""
        return self.ticks
