"""OS personalities: how each variant validates exceptional parameters.

A :class:`Personality` is a declarative description of one operating
system implementation's *robustness-relevant* behaviour.  The API
implementations in :mod:`repro.win32`, :mod:`repro.posix` and
:mod:`repro.libc` are shared across variants; the personality decides,
per function, whether a kernel-side access through a caller-supplied
pointer is probed (NT/2000/Linux), taken raw in kernel mode (the
Windows 9x / CE catastrophic-crash functions from the paper's Table 3),
or silently corrupts shared system state (the ``*`` functions that only
crash under sustained testing -- inter-test interference).

Failure *rates* are never encoded here.  Only mechanisms are: the rates
reported by the benchmarks emerge from executing the shared
implementations against the Ballista value pools under each personality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Kernel handling of a caller pointer during a system call.
PROBE = "probe"  #: validate first; invalid pointer -> graceful error return
RAW = "raw"  #: dereference in kernel mode; invalid pointer -> system crash
CORRUPT = "corrupt"  #: misdirect into shared arena; crash only after repeats


@dataclass(frozen=True)
class Personality:
    """Robustness-relevant behaviour of one OS implementation.

    :param key: short identifier (``"win98se"``, ``"linux"``...).
    :param name: display name as the paper prints it.
    :param api: ``"win32"`` or ``"posix"`` -- which system-call API this
        variant exposes.
    :param family: ``"9x"``, ``"nt"``, ``"ce"`` or ``"linux"``; used for
        reporting and for family-level behaviours.
    :param crt_flavor: which C runtime personality the 94 shared C
        library functions run under (``"msvcrt"``, ``"ce-crt"``,
        ``"glibc"``).
    :param kernel_probes_pointers: default kernel-side pointer handling
        when a function is in neither exception set: ``True`` -> PROBE,
        ``False`` -> the 9x default of an unprotected copy that happens
        to fault safely (modelled as PROBE for result purposes but with
        laxer validation elsewhere).
    :param raw_kernel_access: functions whose kernel-side pointer access
        is unprotected on this variant (immediate Catastrophic on an
        invalid pointer).
    :param corrupting_access: functions whose kernel-side pointer access
        is misdirected into shared system state (the paper's ``*``
        inter-test-interference crashes: no crash in a single isolated
        test, crash after enough corruption accumulates).
    :param corruption_tolerance: number of shared-state corruptions the
        machine absorbs before the delayed crash.
    :param lax_handle_validation: invalid kernel handles are not
        detected; the call "succeeds" (Silent failure) instead of
        returning ``ERROR_INVALID_HANDLE``.
    :param lax_flag_validation: undefined flag bits and enum values are
        accepted silently instead of rejected.
    :param shared_system_memory: user-writable shared arena holding
        system structures (Windows 9x shared arena; on CE the single
        shared address space).  Required for CORRUPT semantics.
    :param crt_wild_file_crashes: a wild ``FILE*`` dereference by the C
        runtime lands in shared system state and takes the machine down
        (the Windows CE "seventeen functions, one bad file pointer"
        finding) instead of raising a user-mode access violation.
    :param strict_alignment: CPU faults misaligned wide accesses
        (Windows CE on ARM/SH3).
    :param case_insensitive_fs: filesystem path matching.
    :param missing_functions: API functions this variant does not
        implement (e.g. the 10 Win32 calls absent from Windows 95); the
        registry additionally restricts Windows CE to its subset.
    """

    key: str
    name: str
    api: str
    family: str
    crt_flavor: str
    kernel_probes_pointers: bool = True
    raw_kernel_access: frozenset[str] = field(default_factory=frozenset)
    corrupting_access: frozenset[str] = field(default_factory=frozenset)
    corruption_tolerance: int = 3
    lax_handle_validation: bool = False
    lax_flag_validation: bool = False
    #: The classic 9x error-reporting sloppiness: a missing file is
    #: reported as ``ERROR_PATH_NOT_FOUND`` instead of
    #: ``ERROR_FILE_NOT_FOUND`` -- a Hindering failure (the error
    #: indication is wrong, not absent).
    confuses_path_errors: bool = False
    shared_system_memory: bool = False
    crt_wild_file_crashes: bool = False
    strict_alignment: bool = False
    case_insensitive_fs: bool = True
    missing_functions: frozenset[str] = field(default_factory=frozenset)

    def kernel_access_mode(self, function: str) -> str:
        """How the kernel treats caller pointers inside ``function``:
        one of :data:`PROBE`, :data:`RAW`, :data:`CORRUPT`."""
        if function in self.raw_kernel_access:
            return RAW
        if function in self.corrupting_access:
            return CORRUPT
        return PROBE

    def supports(self, function: str) -> bool:
        """False when the variant does not implement ``function`` at all."""
        return function not in self.missing_functions
