"""In-memory filesystem shared by the POSIX, Win32, and C stdio layers.

One :class:`FileSystem` belongs to one :class:`~repro.sim.machine.Machine`
and survives across simulated processes (so a file created by a Ballista
test-value constructor in one test case exists for the call under test,
and lingering files are visible as cleanup bugs).  Windows personalities
resolve paths case-insensitively and accept both separators; POSIX
resolves case-sensitively.
"""

from __future__ import annotations

from typing import Callable, Iterator


class FileSystemError(Exception):
    """Filesystem-level error with a POSIX-style symbolic code.

    The OS layers translate ``code`` into ``errno`` values or Win32
    ``GetLastError`` codes.
    """

    def __init__(self, code: str, path: str = "") -> None:
        self.code = code  # e.g. "ENOENT", "EEXIST", "EISDIR", "EACCES"
        self.path = path
        super().__init__(f"{code}: {path!r}")


class Node:
    """Base class for filesystem nodes."""

    __slots__ = (
        "name",
        "created_at",
        "modified_at",
        "accessed_at",
        "read_only",
        "hidden",
        "protected",
        "mode",
    )

    is_directory = False

    def __init__(self, name: str, now: int) -> None:
        self.name = name
        self.created_at = now
        self.modified_at = now
        self.accessed_at = now
        self.read_only = False
        self.hidden = False
        #: System nodes created at boot cannot be renamed or removed by
        #: an unprivileged process (EACCES), like /tmp on a real system.
        self.protected = False
        self.mode = 0o644


class FileNode(Node):
    """A regular file: a named bytearray plus attributes.

    ``symlink_target`` is only ever set on nodes that model symbolic
    links (the slot exists so the attribute can be attached without a
    per-instance ``__dict__``); read it with ``getattr(..., None)``.
    """

    __slots__ = ("data", "nlink", "symlink_target")

    def __init__(self, name: str, now: int, data: bytes = b"") -> None:
        super().__init__(name, now)
        self.data = bytearray(data)
        self.nlink = 1

    @property
    def size(self) -> int:
        return len(self.data)


class DirectoryNode(Node):
    __slots__ = ("entries", "_lower")

    is_directory = True

    def __init__(self, name: str, now: int) -> None:
        super().__init__(name, now)
        self.mode = 0o755
        self.entries: dict[str, Node] = {}
        #: Lazily built ``lowered name -> node`` index for
        #: case-insensitive lookups (first match in insertion order wins,
        #: exactly like the linear scan it replaces).  Every mutation of
        #: ``entries`` -- here or by the filesystem operations that
        #: insert directly -- must reset it to ``None``.
        self._lower: dict[str, Node] | None = None

    def lookup(self, name: str, case_insensitive: bool) -> Node | None:
        if name in self.entries:
            return self.entries[name]
        if case_insensitive:
            lower = self._lower
            if lower is None:
                lower = {}
                for key, node in self.entries.items():
                    lower.setdefault(key.lower(), node)
                self._lower = lower
            return lower.get(name.lower())
        return None

    def remove(self, name: str, case_insensitive: bool) -> None:
        if name in self.entries:
            del self.entries[name]
            self._lower = None
            return
        if case_insensitive:
            lowered = name.lower()
            for key in list(self.entries):
                if key.lower() == lowered:
                    del self.entries[key]
                    self._lower = None
                    return
        raise KeyError(name)


class OpenFile:
    """An open file description: node + offset + access mode.

    Shared by POSIX fds (``dup`` makes two fds share one description),
    Win32 ``FileObject`` handles, and C ``FILE*`` streams.
    """

    __slots__ = (
        "node",
        "readable",
        "writable",
        "append",
        "offset",
        "closed",
        "_now",
    )

    def __init__(
        self,
        node: FileNode,
        readable: bool,
        writable: bool,
        append: bool = False,
        now: Callable[[], int] = lambda: 0,
    ) -> None:
        self.node = node
        self.readable = readable
        self.writable = writable
        self.append = append
        self.offset = 0
        self.closed = False
        self._now = now

    def _require_open(self) -> None:
        if self.closed:
            raise FileSystemError("EBADF", self.node.name)

    def read(self, count: int) -> bytes:
        self._require_open()
        if not self.readable:
            raise FileSystemError("EBADF", self.node.name)
        data = bytes(self.node.data[self.offset : self.offset + max(count, 0)])
        self.offset += len(data)
        self.node.accessed_at = self._now()
        return data

    def write(self, data: bytes) -> int:
        self._require_open()
        if not self.writable:
            raise FileSystemError("EBADF", self.node.name)
        if self.append:
            self.offset = len(self.node.data)
        end = self.offset + len(data)
        if end > len(self.node.data):
            self.node.data.extend(b"\x00" * (end - len(self.node.data)))
        self.node.data[self.offset : end] = data
        self.offset = end
        self.node.modified_at = self._now()
        return len(data)

    def seek(self, offset: int, whence: int = 0) -> int:
        """``whence``: 0=SET, 1=CUR, 2=END.  Negative results are errors."""
        self._require_open()
        base = {0: 0, 1: self.offset, 2: len(self.node.data)}.get(whence)
        if base is None:
            raise FileSystemError("EINVAL", self.node.name)
        position = base + offset
        if position < 0:
            raise FileSystemError("EINVAL", self.node.name)
        self.offset = position
        return position

    def truncate(self, length: int) -> None:
        self._require_open()
        if length < 0:
            raise FileSystemError("EINVAL", self.node.name)
        if length <= len(self.node.data):
            del self.node.data[length:]
        else:
            self.node.data.extend(b"\x00" * (length - len(self.node.data)))
        self.node.modified_at = self._now()

    def close(self) -> None:
        self.closed = True


class Pipe:
    """An anonymous pipe: bounded FIFO with a read and a write end."""

    __slots__ = ("capacity", "buffer", "read_open", "write_open")

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self.buffer = bytearray()
        self.read_open = True
        self.write_open = True

    def write(self, data: bytes) -> int:
        if not self.read_open:
            raise FileSystemError("EPIPE", "<pipe>")
        room = self.capacity - len(self.buffer)
        accepted = data[: max(room, 0)]
        self.buffer.extend(accepted)
        return len(accepted)

    def read(self, count: int) -> bytes:
        taken = bytes(self.buffer[: max(count, 0)])
        del self.buffer[: len(taken)]
        return taken


class FileSystem:
    """Machine-wide in-memory filesystem.

    ``max_files`` models disk capacity for heavy-load experiments: once
    that many regular files exist, creating another fails with
    ``ENOSPC`` (``None`` = unlimited, the default).
    """

    def __init__(
        self,
        case_insensitive: bool = False,
        now: Callable[[], int] = lambda: 0,
        max_files: int | None = None,
    ) -> None:
        self.case_insensitive = case_insensitive
        self._now = now
        self.max_files = max_files
        self._file_count = 0
        self._split_cache: dict[str, list[str]] = {}
        self.root = DirectoryNode("", now())
        #: Optional :class:`~repro.sim.faults.FaultInjector` (attached by
        #: the owning machine); armed "disk" faults fail
        #: :meth:`create_file` with ENOSPC.
        self.faults = None

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def clone(self, now: Callable[[], int] | None = None) -> "FileSystem":
        """A deep copy sharing no mutable state with the original -- the
        copy-on-write substrate for machine snapshots: the machine keeps
        one pristine boot image and reverting is cloning it, not
        replaying ``mkdir``/``create_file`` path operations.

        Hard links are preserved: two directory entries reaching one
        :class:`FileNode` in the original share one copied node.  The
        fault injector is deliberately *not* carried over (the owning
        machine re-attaches its own).
        """
        fs = FileSystem.__new__(FileSystem)
        fs.case_insensitive = self.case_insensitive
        fs._now = self._now if now is None else now
        fs.max_files = self.max_files
        fs._file_count = self._file_count
        fs._split_cache = {}
        fs.faults = None
        seen: dict[int, FileNode] = {}

        def copy_node(node: Node) -> Node:
            dup: Node
            if isinstance(node, DirectoryNode):
                dup = DirectoryNode.__new__(DirectoryNode)
                dup.entries = {
                    name: copy_node(child)
                    for name, child in node.entries.items()
                }
                dup._lower = None
            else:
                assert isinstance(node, FileNode)
                cached = seen.get(id(node))
                if cached is not None:
                    return cached
                dup = FileNode.__new__(FileNode)
                dup.data = bytearray(node.data)
                dup.nlink = node.nlink
                target = getattr(node, "symlink_target", None)
                if target is not None:
                    dup.symlink_target = target  # type: ignore[attr-defined]
                seen[id(node)] = dup
            dup.name = node.name
            dup.created_at = node.created_at
            dup.modified_at = node.modified_at
            dup.accessed_at = node.accessed_at
            dup.read_only = node.read_only
            dup.hidden = node.hidden
            dup.protected = node.protected
            dup.mode = node.mode
            return dup

        fs.root = copy_node(self.root)  # type: ignore[assignment]
        return fs

    # ------------------------------------------------------------------
    # Path handling
    # ------------------------------------------------------------------

    def split(self, path: str) -> list[str]:
        """Normalise a path into components.  Accepts ``/`` always and
        ``\\`` plus drive letters on case-insensitive (Windows)
        filesystems.

        Memoized per raw path string (normalisation is a pure function
        of the path and the filesystem's fixed case mode); callers must
        treat the returned list as read-only.
        """
        cache = self._split_cache
        parts = cache.get(path)
        if parts is not None:
            return parts
        raw = path
        if self.case_insensitive:
            path = path.replace("\\", "/")
            if len(path) >= 2 and path[1] == ":":
                path = path[2:]
        parts = []
        for piece in path.split("/"):
            if piece in ("", "."):
                continue
            if piece == "..":
                if parts:
                    parts.pop()
                continue
            parts.append(piece)
        if len(cache) >= 8192:  # bound memory on very long campaigns
            cache.clear()
        cache[raw] = parts
        return parts

    def _walk(self, parts: list[str]) -> Node | None:
        node: Node = self.root
        for part in parts:
            if not isinstance(node, DirectoryNode):
                return None
            found = node.lookup(part, self.case_insensitive)
            if found is None:
                return None
            node = found
        return node

    def lookup(self, path: str) -> Node | None:
        return self._walk(self.split(path))

    def _parent_of(self, path: str) -> tuple[DirectoryNode, str]:
        parts = self.split(path)
        if not parts:
            raise FileSystemError("EINVAL", path)
        parent = self._walk(parts[:-1])
        if parent is None:
            raise FileSystemError("ENOENT", path)
        if not isinstance(parent, DirectoryNode):
            raise FileSystemError("ENOTDIR", path)
        return parent, parts[-1]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def create_file(
        self, path: str, data: bytes = b"", exclusive: bool = False
    ) -> FileNode:
        parent, name = self._parent_of(path)
        existing = parent.lookup(name, self.case_insensitive)
        if existing is not None:
            if exclusive:
                raise FileSystemError("EEXIST", path)
            if existing.is_directory:
                raise FileSystemError("EISDIR", path)
            assert isinstance(existing, FileNode)
            existing.data[:] = data
            existing.modified_at = self._now()
            return existing
        if self.max_files is not None and self._file_count >= self.max_files:
            raise FileSystemError("ENOSPC", path)
        if self.faults is not None and self.faults.trip("disk"):
            raise FileSystemError("ENOSPC", path)
        node = FileNode(name, self._now(), data)
        parent.entries[name] = node
        parent._lower = None
        self._file_count += 1
        return node

    def open(
        self,
        path: str,
        readable: bool = True,
        writable: bool = False,
        create: bool = False,
        truncate: bool = False,
        exclusive: bool = False,
        append: bool = False,
    ) -> OpenFile:
        node = self.lookup(path)
        if node is None:
            if not create:
                raise FileSystemError("ENOENT", path)
            node = self.create_file(path, exclusive=exclusive)
        elif exclusive and create:
            raise FileSystemError("EEXIST", path)
        if node.is_directory:
            if writable:
                raise FileSystemError("EISDIR", path)
            raise FileSystemError("EISDIR", path)
        assert isinstance(node, FileNode)
        if writable and node.read_only:
            raise FileSystemError("EACCES", path)
        if truncate and writable:
            del node.data[:]
        return OpenFile(node, readable, writable, append, now=self._now)

    def unlink(self, path: str) -> None:
        parent, name = self._parent_of(path)
        node = parent.lookup(name, self.case_insensitive)
        if node is None:
            raise FileSystemError("ENOENT", path)
        if node.is_directory:
            raise FileSystemError("EISDIR", path)
        if node.read_only or node.protected:
            raise FileSystemError("EACCES", path)
        parent.remove(name, self.case_insensitive)
        self._file_count = max(0, self._file_count - 1)

    def mkdir(self, path: str) -> DirectoryNode:
        parent, name = self._parent_of(path)
        if parent.lookup(name, self.case_insensitive) is not None:
            raise FileSystemError("EEXIST", path)
        node = DirectoryNode(name, self._now())
        parent.entries[name] = node
        parent._lower = None
        return node

    def rmdir(self, path: str) -> None:
        parent, name = self._parent_of(path)
        node = parent.lookup(name, self.case_insensitive)
        if node is None:
            raise FileSystemError("ENOENT", path)
        if not node.is_directory:
            raise FileSystemError("ENOTDIR", path)
        assert isinstance(node, DirectoryNode)
        if node.protected:
            raise FileSystemError("EACCES", path)
        if node.entries:
            raise FileSystemError("ENOTEMPTY", path)
        parent.remove(name, self.case_insensitive)

    def rename(self, old: str, new: str) -> None:
        node = self.lookup(old)
        if node is None:
            raise FileSystemError("ENOENT", old)
        old_parts = self.split(old)
        new_parts = self.split(new)
        if not old_parts:
            raise FileSystemError("EBUSY", old)  # renaming the root
        if node.protected:
            raise FileSystemError("EACCES", old)
        if node.is_directory and new_parts[: len(old_parts)] == old_parts:
            # rename(2) refuses to move a directory into itself.
            raise FileSystemError("EINVAL", new)
        new_parent, new_name = self._parent_of(new)
        existing = new_parent.lookup(new_name, self.case_insensitive)
        if existing is not None and existing.is_directory:
            raise FileSystemError("EISDIR", new)
        old_parent, old_name = self._parent_of(old)
        old_parent.remove(old_name, self.case_insensitive)
        node.name = new_name
        new_parent.entries[new_name] = node
        new_parent._lower = None

    def listdir(self, path: str) -> list[str]:
        node = self.lookup(path)
        if node is None:
            raise FileSystemError("ENOENT", path)
        if not isinstance(node, DirectoryNode):
            raise FileSystemError("ENOTDIR", path)
        return sorted(node.entries)

    def iter_files(self) -> Iterator[tuple[str, FileNode]]:
        """Yield ``(path, node)`` for every regular file (test cleanup
        audits use this)."""

        def recurse(prefix: str, directory: DirectoryNode):
            for name, node in sorted(directory.entries.items()):
                full = f"{prefix}/{name}"
                if isinstance(node, DirectoryNode):
                    yield from recurse(full, node)
                else:
                    assert isinstance(node, FileNode)
                    yield full, node

        yield from recurse("", self.root)
