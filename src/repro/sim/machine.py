"""A whole simulated machine: one OS personality, one filesystem, shared
system state, and crash/reboot semantics.

The machine is the unit of *catastrophe*: a fault taken in kernel mode
(:meth:`Machine.panic`) or accumulated corruption of the shared system
arena (:meth:`Machine.note_corruption`) crashes the whole machine, and
every subsequent operation fails with
:class:`~repro.sim.errors.MachineCrashed` until :meth:`Machine.reboot`.
That is exactly the observable the Ballista harness classifies as a
Catastrophic failure.
"""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.errors import MachineCrashed, SystemCrash
from repro.sim.filesystem import FileSystem
from repro.sim.memory import Protection, Region, SHARED_BASE
from repro.sim.personality import Personality
from repro.sim.process import Process

#: Size of the Windows 9x / CE shared system arena we model.
SHARED_ARENA_SIZE = 0x10000


class Machine:
    """One bootable machine running one OS personality.

    :param personality: the OS variant to boot.
    :param watchdog_ticks: per-call hang budget (virtual milliseconds).
    """

    def __init__(
        self,
        personality: Personality,
        watchdog_ticks: int = 30_000,
        fs_max_files: int | None = None,
    ) -> None:
        """
        :param fs_max_files: disk capacity (regular files) for heavy-load
            experiments; ``None`` = unlimited.
        """
        self.personality = personality
        self.watchdog_ticks = watchdog_ticks
        self.fs_max_files = fs_max_files
        self.reboot_count = 0
        self.initial_environ = {
            "PATH": "/bin:/usr/bin" if personality.api == "posix" else r"C:\WINDOWS",
            "HOME": "/home/ballista",
            "TEMP": "/tmp",
            "BALLISTA": "1",
        }
        self._next_pid = 100
        self._boot()

    def _boot(self) -> None:
        self.clock = SimClock(self.watchdog_ticks)
        self.fs = FileSystem(
            case_insensitive=self.personality.case_insensitive_fs,
            now=self.clock.tick_count,
            max_files=self.fs_max_files,
        )
        for directory in ("/tmp", "/home", "/home/ballista"):
            self.fs.mkdir(directory).protected = True
        passwd = self.fs.create_file(
            "/etc_passwd", b"root:x:0:0:root:/root:/bin/sh\n"
        )
        passwd.protected = True

        self.crashed = False
        self.crash_reason: str | None = None
        self.crash_function: str | None = None
        self._corruption = 0
        #: Log of (function, amount) corruption events, for diagnosis and
        #: for the inter-test-interference ablation benchmark.
        self.corruption_log: list[tuple[str, int]] = []

        self.shared_region: Region | None = None
        if self.personality.shared_system_memory:
            self.shared_region = Region(
                SHARED_BASE, SHARED_ARENA_SIZE, Protection.RW, tag="shared-arena"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def spawn_process(self) -> Process:
        """Start a fresh process (one Ballista test case runs in one)."""
        self.check_alive()
        pid = self._next_pid
        self._next_pid += 1
        return Process(self, pid)

    def reboot(self) -> None:
        """Power-cycle after a crash: fresh filesystem, shared arena and
        corruption state.  (Ballista restarts testing after a reboot.)"""
        self.reboot_count += 1
        self._boot()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def wear_state(self) -> dict[str, int]:
        """The cross-MuT machine state a campaign checkpoint must carry
        so a resumed run classifies like an uninterrupted one: the
        accumulated shared-arena corruption (what turns into ``*``
        interference crashes), plus reboot count, virtual clock, and the
        pid counter for full determinism of the simulated environment."""
        return {
            "corruption": self._corruption,
            "reboot_count": self.reboot_count,
            "clock_ticks": self.clock.ticks,
            "next_pid": self._next_pid,
        }

    def restore_wear(self, wear: dict[str, int]) -> None:
        """Reapply :meth:`wear_state` to a freshly booted machine."""
        self._corruption = int(wear.get("corruption", 0))
        self.reboot_count = int(wear.get("reboot_count", 0))
        self.clock.ticks = int(wear.get("clock_ticks", 0))
        self._next_pid = int(wear.get("next_pid", self._next_pid))

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------

    def check_alive(self) -> None:
        """Raise :class:`MachineCrashed` when the machine is down."""
        if self.crashed:
            raise MachineCrashed()

    def panic(self, reason: str, function: str | None = None) -> None:
        """Take the machine down (kernel-mode fault); raises
        :class:`SystemCrash`."""
        self.crashed = True
        self.crash_reason = reason
        self.crash_function = function
        raise SystemCrash(reason, function)

    def note_corruption(self, function: str, amount: int = 1) -> None:
        """Record corruption of shared system state.

        A single event is absorbed (the call even appears to succeed --
        the misdirected write landed somewhere in the shared arena), but
        once more than ``personality.corruption_tolerance`` events have
        accumulated since boot the machine goes down.  This reproduces
        the paper's ``*`` functions, whose crashes "could not be
        reproduced outside of the test harness" because they need the
        residue of earlier test cases.
        """
        self._corruption += amount
        self.corruption_log.append((function, amount))
        if self._corruption > self.personality.corruption_tolerance:
            self.panic(
                "accumulated corruption of shared system state", function
            )

    @property
    def corruption_level(self) -> int:
        return self._corruption
