"""A whole simulated machine: one OS personality, one filesystem, shared
system state, and crash/reboot semantics.

The machine is the unit of *catastrophe*: a fault taken in kernel mode
(:meth:`Machine.panic`) or accumulated corruption of the shared system
arena (:meth:`Machine.note_corruption`) crashes the whole machine, and
every subsequent operation fails with
:class:`~repro.sim.errors.MachineCrashed` until :meth:`Machine.reboot`.
That is exactly the observable the Ballista harness classifies as a
Catastrophic failure.
"""

from __future__ import annotations

import base64

from repro.sim.clock import SimClock
from repro.sim.errors import MachineCrashed, SystemCrash
from repro.sim.faults import FaultInjector
from repro.sim.filesystem import DirectoryNode, FileNode, FileSystem, Node
from repro.sim.memory import Protection, Region, SHARED_BASE
from repro.sim.personality import Personality
from repro.sim.process import Process

#: Size of the Windows 9x / CE shared system arena we model.
SHARED_ARENA_SIZE = 0x10000

#: Pristine boot filesystems, keyed by ``(case_insensitive, max_files)``
#: and built once per process -- every boot clones the template instead
#: of replaying the path-by-path setup.  Template timestamps are all 0,
#: exactly what the replayed setup produced (the boot clock reads 0
#: while the tree is built, on first boot and reboot alike).
_PRISTINE_FS: dict[tuple, FileSystem] = {}

#: The fixed boot-time environment per API family (personality
#: resolution happens once, not on every machine construction).
_BOOT_ENVIRONS: dict[str, dict[str, str]] = {}


def _pristine_fs(case_insensitive: bool, max_files: int | None) -> FileSystem:
    key = (case_insensitive, max_files)
    template = _PRISTINE_FS.get(key)
    if template is None:
        template = FileSystem(
            case_insensitive=case_insensitive,
            now=lambda: 0,
            max_files=max_files,
        )
        for directory in ("/tmp", "/home", "/home/ballista"):
            template.mkdir(directory).protected = True
        passwd = template.create_file(
            "/etc_passwd", b"root:x:0:0:root:/root:/bin/sh\n"
        )
        passwd.protected = True
        _PRISTINE_FS[key] = template
    return template


class Machine:
    """One bootable machine running one OS personality.

    :param personality: the OS variant to boot.
    :param watchdog_ticks: per-call hang budget (virtual milliseconds).
    """

    def __init__(
        self,
        personality: Personality,
        watchdog_ticks: int = 30_000,
        fs_max_files: int | None = None,
    ) -> None:
        """
        :param fs_max_files: disk capacity (regular files) for heavy-load
            experiments; ``None`` = unlimited.
        """
        self.personality = personality
        self.watchdog_ticks = watchdog_ticks
        self.fs_max_files = fs_max_files
        self.reboot_count = 0
        #: Harness-side fault injection (sequence campaigns arm it per
        #: step); survives reboots -- arming is not machine state.
        self.faults = FaultInjector()
        environ = _BOOT_ENVIRONS.get(personality.api)
        if environ is None:
            environ = {
                "PATH": "/bin:/usr/bin"
                if personality.api == "posix"
                else r"C:\WINDOWS",
                "HOME": "/home/ballista",
                "TEMP": "/tmp",
                "BALLISTA": "1",
            }
            _BOOT_ENVIRONS[personality.api] = environ
        self.initial_environ = dict(environ)
        self._next_pid = 100
        self._boot()

    def _boot(self) -> None:
        self.clock = SimClock(self.watchdog_ticks)
        self._reset_system_state()

    def _reset_system_state(self) -> None:
        """(Re)establish pristine post-boot system state: a clone of the
        boot filesystem image, clean crash/corruption state, and a zeroed
        shared arena.  Shared by first boot, :meth:`reboot`, and
        :meth:`revert` -- the copy-on-write snapshot restore."""
        self.fs = _pristine_fs(
            self.personality.case_insensitive_fs, self.fs_max_files
        ).clone(now=self.clock.tick_count)
        self.fs.faults = self.faults

        self.crashed = False
        self.crash_reason: str | None = None
        self.crash_function: str | None = None
        self._corruption = 0
        #: Log of (function, amount) corruption events, for diagnosis and
        #: for the inter-test-interference ablation benchmark.
        self.corruption_log: list[tuple[str, int]] = []

        self.shared_region: Region | None = None
        if self.personality.shared_system_memory:
            self.shared_region = Region(
                SHARED_BASE, SHARED_ARENA_SIZE, Protection.RW, tag="shared-arena"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def spawn_process(self) -> Process:
        """Start a fresh process (one Ballista test case runs in one)."""
        self.check_alive()
        pid = self._next_pid
        self._next_pid += 1
        return Process(self, pid)

    def reboot(self) -> None:
        """Power-cycle after a crash: fresh filesystem, shared arena and
        corruption state.  (Ballista restarts testing after a reboot.)

        Virtual time keeps running across the power cycle: the clock
        stays monotone along a campaign plan, which sharded event
        canonicalisation and per-step sequence timestamps rely on.
        """
        self.reboot_count += 1
        self.clock.reset(self.clock.ticks)
        self._reset_system_state()

    def revert(self) -> None:
        """Copy-on-write revert to the pristine boot image: observable
        state identical to a freshly constructed
        ``Machine(personality, watchdog_ticks, fs_max_files)`` --
        counters, clock, filesystem, arena, and crash state included --
        at a fraction of the construction cost.  The campaign's
        ``machine_per_case`` ablation reverts between cases instead of
        building a machine per case."""
        self.reboot_count = 0
        self._next_pid = 100
        self.clock.reset(0)
        self._reset_system_state()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def wear_state(self) -> dict:
        """The cross-MuT machine state a campaign checkpoint must carry
        so a resumed run classifies like an uninterrupted one: the
        accumulated shared-arena corruption (what turns into ``*``
        interference crashes), reboot count, virtual clock, and pid
        counter, plus a full image of the filesystem and the shared
        system arena.  Files that earlier MuTs created or deleted change
        later classifications (``remove()`` of a lingering file succeeds
        on a worn machine but fails after a fresh boot), so the tree
        itself is part of the wear."""
        wear: dict = {
            "corruption": self._corruption,
            "reboot_count": self.reboot_count,
            "clock_ticks": self.clock.ticks,
            "next_pid": self._next_pid,
            "fs": self._fs_wear(),
        }
        if self.shared_region is not None and any(self.shared_region.data):
            wear["shared_arena"] = base64.b64encode(
                bytes(self.shared_region.data)
            ).decode("ascii")
        return wear

    def restore_wear(self, wear: dict) -> None:
        """Reapply :meth:`wear_state` to a freshly booted machine.

        Checkpoints written before filesystem wear was recorded lack the
        ``fs``/``shared_arena`` keys; those restore the counters only,
        as before.
        """
        self._corruption = int(wear.get("corruption", 0))
        self.reboot_count = int(wear.get("reboot_count", 0))
        self.clock.ticks = int(wear.get("clock_ticks", 0))
        self._next_pid = int(wear.get("next_pid", self._next_pid))
        if "fs" in wear:
            self._restore_fs(wear["fs"])
        if self.shared_region is not None and "shared_arena" in wear:
            arena = base64.b64decode(wear["shared_arena"])
            self.shared_region.data[:] = arena.ljust(
                self.shared_region.size, b"\x00"
            )

    def _fs_wear(self) -> dict:
        """A depth-first, insertion-ordered image of the filesystem.

        Hard links are recorded as aliases of the first directory entry
        that reached the node, so the restored tree shares one
        :class:`FileNode` between them just like the original.
        """
        nodes: list[dict] = []
        seen: dict[int, int] = {}

        def record(node: Node, entry: dict) -> dict:
            entry["created_at"] = node.created_at
            entry["modified_at"] = node.modified_at
            entry["accessed_at"] = node.accessed_at
            entry["read_only"] = node.read_only
            entry["hidden"] = node.hidden
            entry["protected"] = node.protected
            entry["mode"] = node.mode
            return entry

        nodes.append(record(self.fs.root, {"path": "", "type": "dir"}))

        def visit(prefix: str, directory: DirectoryNode) -> None:
            for name, node in directory.entries.items():
                path = f"{prefix}/{name}"
                if isinstance(node, DirectoryNode):
                    nodes.append(record(node, {"path": path, "type": "dir"}))
                    visit(path, node)
                    continue
                assert isinstance(node, FileNode)
                if id(node) in seen:
                    nodes.append(
                        {"path": path, "type": "link", "node": seen[id(node)]}
                    )
                    continue
                seen[id(node)] = len(nodes)
                entry = record(node, {"path": path, "type": "file"})
                entry["data"] = base64.b64encode(bytes(node.data)).decode(
                    "ascii"
                )
                if node.nlink != 1:
                    entry["nlink"] = node.nlink
                target = getattr(node, "symlink_target", None)
                if target is not None:
                    entry["symlink_target"] = target
                nodes.append(entry)

        visit("", self.fs.root)
        return {"nodes": nodes, "file_count": self.fs._file_count}

    def _restore_fs(self, image: dict) -> None:
        """Rebuild ``self.fs`` from a :meth:`_fs_wear` image."""
        fs = FileSystem(
            case_insensitive=self.personality.case_insensitive_fs,
            now=self.clock.tick_count,
        )
        by_index: dict[int, FileNode] = {}

        def apply(node: Node, entry: dict) -> None:
            node.created_at = int(entry["created_at"])
            node.modified_at = int(entry["modified_at"])
            node.accessed_at = int(entry["accessed_at"])
            node.read_only = bool(entry["read_only"])
            node.hidden = bool(entry["hidden"])
            node.protected = bool(entry["protected"])
            node.mode = int(entry["mode"])

        for index, entry in enumerate(image["nodes"]):
            path = entry["path"]
            if entry["type"] == "dir":
                node: Node = fs.root if not path else fs.mkdir(path)
            elif entry["type"] == "link":
                parent, name = fs._parent_of(path)
                parent.entries[name] = by_index[int(entry["node"])]
                parent._lower = None
                continue
            else:
                file_node = fs.create_file(
                    path, base64.b64decode(entry["data"])
                )
                file_node.nlink = int(entry.get("nlink", 1))
                if "symlink_target" in entry:
                    file_node.symlink_target = entry[  # type: ignore[attr-defined]
                        "symlink_target"
                    ]
                by_index[index] = file_node
                node = file_node
            apply(node, entry)
        # The live count can sit below the number of reachable files
        # (unlinking one name of a hard link decrements it), so restore
        # the recorded value rather than what the replay accumulated.
        fs.max_files = self.fs_max_files
        fs._file_count = int(image["file_count"])
        fs.faults = self.faults
        self.fs = fs

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------

    def check_alive(self) -> None:
        """Raise :class:`MachineCrashed` when the machine is down."""
        if self.crashed:
            raise MachineCrashed()

    def panic(self, reason: str, function: str | None = None) -> None:
        """Take the machine down (kernel-mode fault); raises
        :class:`SystemCrash`."""
        self.crashed = True
        self.crash_reason = reason
        self.crash_function = function
        raise SystemCrash(reason, function)

    def note_corruption(self, function: str, amount: int = 1) -> None:
        """Record corruption of shared system state.

        A single event is absorbed (the call even appears to succeed --
        the misdirected write landed somewhere in the shared arena), but
        once more than ``personality.corruption_tolerance`` events have
        accumulated since boot the machine goes down.  This reproduces
        the paper's ``*`` functions, whose crashes "could not be
        reproduced outside of the test harness" because they need the
        residue of earlier test cases.
        """
        self._corruption += amount
        self.corruption_log.append((function, amount))
        if self._corruption > self.personality.corruption_tolerance:
            self.panic(
                "accumulated corruption of shared system state", function
            )

    @property
    def corruption_level(self) -> int:
        return self._corruption

    # ------------------------------------------------------------------
    # Failure-atomicity support
    # ------------------------------------------------------------------

    def wear_residue(self) -> str:
        """A deterministic fingerprint of the *durable* machine wear --
        corruption, filesystem image, and shared-arena contents, but not
        the always-advancing counters (clock, pid).

        The sequence runner snapshots this around a fault-injected call:
        a call that reports failure under injection must leave the
        residue untouched (failure atomicity), and any change classifies
        as a harness-level :data:`~repro.core.crash_scale.CaseCode.FAULT_ATOMICITY`
        outcome.

        Access timestamps are excluded: a failed call may legitimately
        have *read* files before hitting the injected fault, and an
        ``accessed_at`` bump is not corruption the next step could trip
        over.  Data, metadata, link structure, and the file population
        all count.
        """
        import json

        fs = self._fs_wear()
        for node in fs["nodes"]:
            node.pop("accessed_at", None)
        parts: dict = {
            "corruption": self._corruption,
            "fs": fs,
        }
        if self.shared_region is not None and any(self.shared_region.data):
            parts["shared_arena"] = base64.b64encode(
                bytes(self.shared_region.data)
            ).decode("ascii")
        return json.dumps(parts, sort_keys=True, separators=(",", ":"))
