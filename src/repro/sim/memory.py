"""A 32-bit virtual address space with regions, protections, and faults.

The simulated C library and OS kernels never hold Python references to
buffers; they hold integer *addresses* and go through an
:class:`AddressSpace` for every load and store.  This is what lets the
Ballista test values include genuinely exceptional pointers -- ``NULL``,
``-1``, unaligned addresses, pointers into freed or read-only regions,
pointers to buffers with no terminator -- and have the implementations
fault (or not) exactly where a real machine would.

Layout (loosely mirroring 32-bit Windows / Linux):

===================  =====================================================
``0x00000000``       NULL page, never mapped
``0x00400000``       user allocations (bump-allocated)
``0x7FFE0000``       top of per-process user space
``0x80000000``       shared system arena (Windows 9x / CE personalities
                     map kernel structures here, writable by user code)
``0xC0000000``       kernel space, never accessible from user mode
===================  =====================================================
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from typing import Iterator

from repro.sim.errors import AccessViolation, MisalignedAccess

ADDRESS_MASK = 0xFFFFFFFF

NULL = 0
USER_BASE = 0x0040_0000
USER_LIMIT = 0x7FFE_0000
SHARED_BASE = 0x8000_0000
SHARED_LIMIT = 0xBFFF_0000
KERNEL_BASE = 0xC000_0000


class Protection(enum.IntFlag):
    """Page protection bits for a :class:`Region`."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXECUTE = 4

    RW = READ | WRITE
    RX = READ | EXECUTE
    RWX = READ | WRITE | EXECUTE


class Region:
    """A contiguous run of mapped memory.

    Regions may be shared between address spaces (the Windows 9x shared
    arena is one Region aliased into every process), so the backing
    ``data`` bytearray is the unit of sharing.
    """

    __slots__ = (
        "start",
        "size",
        "_protection",
        "_prot",
        "data",
        "tag",
        "freed",
        "version",
    )

    def __init__(
        self,
        start: int,
        size: int,
        protection: Protection,
        tag: str = "",
        data: bytearray | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        self.start = start & ADDRESS_MASK
        self.size = size
        # Inlined ``protection`` setter: regions are constructed on the
        # hot allocation path.
        self._protection = protection
        self._prot = int(protection)
        self.tag = tag
        self.data = bytearray(size) if data is None else data
        #: Set when the region has been deallocated but its address is
        #: still circulating as a dangling pointer.
        self.freed = False
        #: Bumped on every store through :meth:`AddressSpace.write` (and
        #: by the few sanctioned direct-``data`` writers); snapshot
        #: caches key on it to skip re-encoding unchanged contents.
        self.version = 0

    @property
    def protection(self) -> Protection:
        return self._protection

    @protection.setter
    def protection(self, value: Protection) -> None:
        # The hot access check compares the plain-int mirror: IntFlag's
        # __and__ allocates a flag instance per check, which profiling
        # shows from every simulated load/store.
        self._protection = value
        self._prot = int(value)

    @property
    def end(self) -> int:
        """One past the last valid address of the region."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Region(0x{self.start:08X}..0x{self.end:08X}, "
            f"{self.protection.name}, tag={self.tag!r})"
        )


class AddressSpace:
    """A per-process (or machine-shared) set of mapped regions.

    All loads/stores by simulated code go through :meth:`read` /
    :meth:`write` (or the typed helpers) and raise
    :class:`~repro.sim.errors.AccessViolation` on unmapped addresses or
    protection mismatches, and
    :class:`~repro.sim.errors.MisalignedAccess` for misaligned wide
    accesses when ``strict_alignment`` is set (the Windows CE / ARM case).
    """

    def __init__(self, strict_alignment: bool = False) -> None:
        self.strict_alignment = strict_alignment
        self._starts: list[int] = []
        self._regions: list[Region] = []
        self._cursor = USER_BASE
        self._shared_cursor = SHARED_BASE
        #: Optional :class:`~repro.sim.faults.FaultInjector` (attached by
        #: the owning process); armed "alloc" faults fail :meth:`map`.
        self.faults = None

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map(
        self,
        size: int,
        protection: Protection = Protection.RW,
        tag: str = "",
        at: int | None = None,
        shared: bool = False,
    ) -> Region:
        """Map a fresh region and return it.

        :param at: fixed placement address; by default the next free slot
            in the user (or, with ``shared=True``, the shared arena)
            range is used, with an unmapped guard gap after each region
            so off-by-one pointers fault.

        Raises :class:`~repro.sim.errors.ResourceExhausted` when an
        armed ``"alloc"`` fault window is open: the kernel is out of
        commit and every fresh mapping request fails.
        """
        faults = self.faults
        if faults is not None and faults.active:
            faults.exhaust("alloc", tag or "anonymous mapping")
        if at is None:
            if shared:
                at = self._shared_cursor
                self._shared_cursor = (at + size + 8191) & ~4095
            else:
                at = self._cursor
                self._cursor = (at + size + 8191) & ~4095
        region = Region(at, size, protection, tag)
        self._insert(region)
        # Keep the bump allocators clear of fixed placements.
        end = region.start + region.size
        if region.start < USER_LIMIT:
            if end + 4096 > self._cursor:
                self._cursor = (end + 8191) & ~4095
        elif region.start < SHARED_LIMIT:
            if end + 4096 > self._shared_cursor:
                self._shared_cursor = (end + 8191) & ~4095
        return region

    def attach(self, region: Region) -> None:
        """Alias an existing region (e.g. the machine's shared arena)
        into this address space."""
        self._insert(region)

    def unmap(self, region: Region) -> None:
        """Remove a region; subsequent accesses fault as ``freed``."""
        index = self._index_of(region)
        del self._starts[index]
        del self._regions[index]
        region.freed = True

    def _insert(self, region: Region) -> None:
        starts = self._starts
        regions = self._regions
        start = region.start
        index = bisect_right(starts, start)
        if index > 0:
            prev = regions[index - 1]
            if prev.start + prev.size > start:
                raise ValueError(f"overlapping mapping at 0x{start:08X}")
        if index < len(regions) and start + region.size > regions[index].start:
            raise ValueError(f"overlapping mapping at 0x{start:08X}")
        starts.insert(index, start)
        regions.insert(index, region)

    def _index_of(self, region: Region) -> int:
        index = bisect_right(self._starts, region.start) - 1
        if index < 0 or self._regions[index] is not region:
            raise KeyError(f"region not mapped: {region!r}")
        return index

    @staticmethod
    def _align_up(address: int, alignment: int = 4096) -> int:
        return (address + alignment - 1) & ~(alignment - 1)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def find(self, address: int) -> Region | None:
        """Return the region containing ``address``, or ``None``."""
        address &= ADDRESS_MASK
        index = bisect_right(self._starts, address) - 1
        if index >= 0:
            region = self._regions[index]
            if region.start <= address < region.start + region.size:
                return region
        return None

    def regions(self) -> Iterator[Region]:
        return iter(self._regions)

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True when ``[address, address+size)`` lies inside one region."""
        region = self.find(address)
        return region is not None and address + size <= region.end

    def check(self, address: int, size: int, access: str) -> Region:
        """Validate an access, returning the region or raising
        :class:`AccessViolation`."""
        address &= ADDRESS_MASK
        region = self.find(address)
        if region is None:
            raise AccessViolation(address, access, reason="unmapped")
        if address + size > region.start + region.size:
            raise AccessViolation(
                region.start + region.size, access, reason="unmapped"
            )
        if not region._prot & (2 if access == "write" else 1):
            raise AccessViolation(address, access, reason="protection")
        return region

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------

    def read(self, address: int, size: int) -> bytes:
        """Load ``size`` bytes, faulting like hardware would."""
        if size == 0:
            return b""
        region = self.check(address, size, "read")
        offset = (address & ADDRESS_MASK) - region.start
        return bytes(region.data[offset : offset + size])

    def write(self, address: int, data: bytes) -> None:
        """Store ``data``, faulting like hardware would."""
        if not data:
            return
        region = self.check(address, len(data), "write")
        offset = (address & ADDRESS_MASK) - region.start
        region.data[offset : offset + len(data)] = data
        region.version += 1

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------

    def _check_alignment(self, address: int, width: int, access: str) -> None:
        if self.strict_alignment and address % width != 0:
            raise MisalignedAccess(address, access)

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, bytes([value & 0xFF]))

    def read_u16(self, address: int) -> int:
        self._check_alignment(address, 2, "read")
        return int.from_bytes(self.read(address, 2), "little")

    def write_u16(self, address: int, value: int) -> None:
        self._check_alignment(address, 2, "write")
        self.write(address, (value & 0xFFFF).to_bytes(2, "little"))

    def read_u32(self, address: int) -> int:
        self._check_alignment(address, 4, "read")
        return int.from_bytes(self.read(address, 4), "little")

    def write_u32(self, address: int, value: int) -> None:
        self._check_alignment(address, 4, "write")
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_i32(self, address: int) -> int:
        value = self.read_u32(address)
        return value - 0x1_0000_0000 if value >= 0x8000_0000 else value

    def write_i32(self, address: int, value: int) -> None:
        self.write_u32(address, value & 0xFFFFFFFF)

    def read_u64(self, address: int) -> int:
        self._check_alignment(address, 4, "read")
        return int.from_bytes(self.read(address, 8), "little")

    def write_u64(self, address: int, value: int) -> None:
        self._check_alignment(address, 4, "write")
        self.write(address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    # ------------------------------------------------------------------
    # C string helpers
    # ------------------------------------------------------------------

    def read_cstring(
        self, address: int, limit: int = 1 << 20, word_at_a_time: bool = False
    ) -> bytes:
        """Read a NUL-terminated byte string starting at ``address``.

        :param word_at_a_time: scan in *aligned* 4-byte words, the way
            optimised C runtimes do (byte prologue up to the first
            aligned boundary, then whole words).  An aligned word read
            can fault on the bytes after a terminator that sits in a
            word crossing the end of the mapping -- a real robustness
            difference between byte-wise and word-wise string routines
            that the C-runtime flavours exploit.
        """
        # Both shapes scan whole regions with ``bytearray.find`` instead
        # of issuing one checked load per byte/word -- string traffic
        # dominates the campaign hot path.  Faults must stay *byte
        # identical* to the per-access loops they replace: on any
        # unreadable or boundary-crossing access the code below re-issues
        # the exact load the slow loop would have made and lets it raise.
        out = bytearray()
        cursor = address & ADDRESS_MASK
        if not word_at_a_time:
            while len(out) < limit:
                region = self.find(cursor)
                if region is None or not region._prot & 1:
                    self.read(cursor, 1)  # faults exactly like the loop
                data = region.data
                offset = cursor - region.start
                bound = min(region.size, offset + (limit - len(out)))
                nul = data.find(0, offset, bound)
                if nul >= 0:
                    out += data[offset:nul]
                    return bytes(out)
                out += data[offset:bound]
                cursor += bound - offset
            return bytes(out)
        # Byte prologue to the first word boundary.
        while cursor % 4 and len(out) < limit:
            byte = self.read(cursor, 1)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        # Aligned word loop.  The per-word loop appends *whole* words
        # while under the limit (output may overshoot by up to three
        # bytes) and an aligned word crossing the end of the mapping
        # faults at ``region.end`` even when an adjacent region follows;
        # the windowed scan reproduces both.
        while len(out) < limit:
            region = self.find(cursor)
            if region is None or not region._prot & 1:
                self.read(cursor, 4)  # faults exactly like the loop
            offset = cursor - region.start
            words = min(
                (region.size - offset) >> 2, (limit - len(out) + 3) >> 2
            )
            if words <= 0:
                # Word read crossing the end of the mapping.
                self.read(cursor, 4)
            data = region.data
            end = offset + (words << 2)
            nul = data.find(0, offset, end)
            if nul >= 0:
                out += data[offset:nul]
                return bytes(out)
            out += data[offset:end]
            cursor += end - offset
        return bytes(out)

    def write_cstring(self, address: int, value: bytes) -> None:
        """Store ``value`` plus a NUL terminator."""
        self.write(address, value + b"\x00")

    def read_wstring(self, address: int, limit: int = 1 << 20) -> bytes:
        """Read a UTF-16LE (UNICODE) string, returning its bytes without
        the terminator."""
        # Windowed scan mirroring :meth:`read_cstring`: the per-unit
        # loop appends whole two-byte units while under the limit and
        # faults at ``region.end`` when a unit crosses the mapping end;
        # terminators only count on unit boundaries.
        out = bytearray()
        cursor = address & ADDRESS_MASK
        while len(out) < limit:
            region = self.find(cursor)
            if region is None or not region._prot & 1:
                self.read(cursor, 2)  # faults exactly like the loop
            offset = cursor - region.start
            units = min(
                (region.size - offset) >> 1, (limit - len(out) + 1) >> 1
            )
            if units <= 0:
                # Unit read crossing the end of the mapping.
                self.read(cursor, 2)
            data = region.data
            end = offset + (units << 1)
            search = offset
            while True:
                pos = data.find(b"\x00\x00", search, end)
                if pos < 0:
                    break
                if (pos - offset) % 2 == 0:
                    out += data[offset:pos]
                    return bytes(out)
                search = pos + 1
            out += data[offset:end]
            cursor += end - offset
        return bytes(out)

    def write_wstring(self, address: int, value: bytes) -> None:
        """Store UTF-16LE bytes plus a two-byte terminator."""
        self.write(address, value + b"\x00\x00")

    # ------------------------------------------------------------------
    # Allocation convenience
    # ------------------------------------------------------------------

    def alloc(
        self,
        data: bytes,
        protection: Protection = Protection.RW,
        tag: str = "literal",
        pad: int = 0,
    ) -> int:
        """Map a region just large enough for ``data`` (+ ``pad`` spare
        bytes) and copy it in; return its address."""
        region = self.map(max(len(data) + pad, 1), protection, tag)
        if data:
            region.data[: len(data)] = data
        return region.start

    def alloc_cstring(
        self,
        text: bytes,
        protection: Protection = Protection.RW,
        terminated: bool = True,
        tag: str = "cstring",
        round_to: int = 4,
    ) -> int:
        """Map a buffer holding ``text``; when ``terminated`` is false the
        string fills the region exactly, with no NUL byte before the
        unmapped guard gap.

        ``round_to`` models allocator granularity (regions are rounded up
        to a word multiple, so aligned word-at-a-time scanners are safe
        on ordinary strings); pass ``round_to=1`` to place the data flush
        against the end of the mapping.
        """
        payload = text + b"\x00" if terminated else text
        size = max(len(payload), 1)
        if round_to > 1:
            size = (size + round_to - 1) & ~(round_to - 1)
        return self.alloc(payload, protection, tag=tag, pad=size - len(payload))
