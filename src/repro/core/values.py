"""Builtin parameter types and test-value pools.

These pools are the reproduction of Ballista's data-type test dictionary
("3,430 distinct test values incorporated into 37 data types ... for
POSIX, and 1,073 distinct test values incorporated into 43 data types
... for Windows" at the paper's scale; this library ships a smaller pool
per type, which the sampling-cap ablation shows is sufficient to
preserve the rate *shape*).

Pools deliberately mix exceptional and valid cases "to avoid successful
exception handling on one parameter from masking the potential effects
of unsuccessful exception handling on some other parameter value".

Naming convention: every value has a stable ALL_CAPS name, so any test
case can be replayed from its name tuple (see
:func:`repro.core.campaign.run_single_case`).
"""

from __future__ import annotations

import math

from repro.core.context import TestContext
from repro.core.types import TypeRegistry
from repro.sim.memory import SHARED_BASE

#: Size of the simulated CONTEXT structure (GetThreadContext output).
CONTEXT_SIZE = 64
#: Size of the simulated struct stat / BY_HANDLE_FILE_INFORMATION.
STAT_SIZE = 64

INFINITE = 0xFFFF_FFFF


def install(types: TypeRegistry) -> None:
    """Register every builtin type and pool into ``types``."""
    _install_memory_types(types)
    _install_scalar_types(types)
    _install_string_types(types)
    _install_stdio_types(types)
    _install_time_types(types)
    _install_posix_types(types)
    _install_win32_types(types)


# ----------------------------------------------------------------------
# Raw memory
# ----------------------------------------------------------------------


def _install_memory_types(types: TypeRegistry) -> None:
    buffer = types.new_type("buffer")
    buffer.add("PTR_NULL", lambda ctx: 0, exceptional=True)
    buffer.add("PTR_ONE", lambda ctx: 1, exceptional=True)
    buffer.add("PTR_NEG_ONE", lambda ctx: 0xFFFF_FFFF, exceptional=True)
    buffer.add("PTR_FREED", lambda ctx: ctx.freed_buffer(64), exceptional=True)
    buffer.add(
        "PTR_READONLY",
        lambda ctx: ctx.readonly_buffer(b"readonly-page" + b"\x00" * 51),
        exceptional=True,
    )
    buffer.add("PTR_ODD", lambda ctx: ctx.buffer(64) + 1)
    buffer.add("PTR_SMALL16", lambda ctx: ctx.buffer(16))
    buffer.add("PTR_PAGE", lambda ctx: ctx.buffer(4096))
    buffer.add(
        "PTR_SHARED_ARENA",
        # Inside the 9x/CE shared arena; unmapped wilderness elsewhere.
        lambda ctx: SHARED_BASE + 0x800,
        exceptional=True,
    )
    buffer.add(
        "PTR_CODE",
        lambda ctx: ctx.process.code_region.start + 16,
        exceptional=True,
    )

    sizes = types.new_type("size")
    sizes.add("SIZE_ZERO", lambda ctx: 0)
    sizes.add("SIZE_ONE", lambda ctx: 1)
    sizes.add("SIZE_16", lambda ctx: 16)
    sizes.add("SIZE_PAGE", lambda ctx: 4096)
    sizes.add("SIZE_64K", lambda ctx: 0x1_0000)
    sizes.add("SIZE_INT_MAX", lambda ctx: 0x7FFF_FFFF, exceptional=True)
    sizes.add("SIZE_MAX", lambda ctx: 0xFFFF_FFFF, exceptional=True)


# ----------------------------------------------------------------------
# Scalars
# ----------------------------------------------------------------------


def _install_scalar_types(types: TypeRegistry) -> None:
    ints = types.new_type("int_val")
    ints.add("INT_ZERO", lambda ctx: 0)
    ints.add("INT_ONE", lambda ctx: 1)
    ints.add("INT_NEG_ONE", lambda ctx: -1)
    ints.add("INT_64", lambda ctx: 64)
    ints.add("INT_MAX", lambda ctx: 0x7FFF_FFFF, exceptional=True)
    ints.add("INT_MIN", lambda ctx: -0x8000_0000, exceptional=True)

    chars = types.new_type("char_int")
    chars.add("CHR_A", lambda ctx: ord("A"))
    chars.add("CHR_ZERO", lambda ctx: 0)
    chars.add("CHR_EOF", lambda ctx: -1)
    chars.add("CHR_255", lambda ctx: 255)
    chars.add("CHR_256", lambda ctx: 256, exceptional=True)
    chars.add("CHR_HUGE", lambda ctx: 1_000_000, exceptional=True)
    chars.add("CHR_NEG", lambda ctx: -100, exceptional=True)
    chars.add("CHR_INT_MIN", lambda ctx: -0x8000_0000, exceptional=True)

    doubles = types.new_type("double_val")
    doubles.add("DBL_ZERO", lambda ctx: 0.0)
    doubles.add("DBL_ONE", lambda ctx: 1.0)
    doubles.add("DBL_NEG_ONE", lambda ctx: -1.0)
    doubles.add("DBL_PI", lambda ctx: math.pi)
    doubles.add("DBL_HUGE", lambda ctx: 1e308)
    doubles.add("DBL_NEG_HUGE", lambda ctx: -1e308)
    doubles.add("DBL_TINY", lambda ctx: 1e-308)
    doubles.add("DBL_INF", lambda ctx: math.inf, exceptional=True)
    doubles.add("DBL_NEG_INF", lambda ctx: -math.inf, exceptional=True)
    doubles.add("DBL_NAN", lambda ctx: math.nan, exceptional=True)

    offsets = types.new_type("long_offset")
    offsets.add("OFF_ZERO", lambda ctx: 0)
    offsets.add("OFF_ONE", lambda ctx: 1)
    offsets.add("OFF_SMALL", lambda ctx: 100)
    offsets.add("OFF_NEG", lambda ctx: -1)
    offsets.add("OFF_NEG_BIG", lambda ctx: -100_000)
    offsets.add("OFF_LONG_MAX", lambda ctx: 0x7FFF_FFFF)
    offsets.add("OFF_LONG_MIN", lambda ctx: -0x8000_0000, exceptional=True)

    whence = types.new_type("seek_whence")
    whence.add("WH_SET", lambda ctx: 0)
    whence.add("WH_CUR", lambda ctx: 1)
    whence.add("WH_END", lambda ctx: 2)
    whence.add("WH_BAD3", lambda ctx: 3, exceptional=True)
    whence.add("WH_NEG", lambda ctx: -1, exceptional=True)

    booleans = types.new_type("bool_val")
    booleans.add("B_FALSE", lambda ctx: 0)
    booleans.add("B_TRUE", lambda ctx: 1)
    booleans.add("B_TWO", lambda ctx: 2)


# ----------------------------------------------------------------------
# Strings
# ----------------------------------------------------------------------


def _install_string_types(types: TypeRegistry) -> None:
    cstring = types.new_type("cstring", parent="buffer")
    cstring.add("STR_EMPTY", lambda ctx: ctx.cstring(b""))
    cstring.add("STR_SHORT", lambda ctx: ctx.cstring(b"ballista"))
    cstring.add("STR_LONG", lambda ctx: ctx.cstring(b"x" * 2048))
    # A perfectly valid string whose terminator is the final byte of a
    # 15-byte mapping: byte-wise scanners are fine, aligned word-at-a-
    # time scanners read the word at offset 12..15 and fault on byte 15.
    cstring.add(
        "STR_EDGE", lambda ctx: ctx.cstring(b"edge-string-xx", round_to=1)
    )
    cstring.add(
        "STR_UNTERMINATED",
        lambda ctx: ctx.cstring(b"Z" * 64, terminated=False),
        exceptional=True,
    )
    cstring.add("STR_SPECIAL", lambda ctx: ctx.cstring(b"%s\t\n\x7f"))

    fmt = types.new_type("format_string", parent="cstring")
    fmt.add("FMT_PLAIN", lambda ctx: ctx.cstring(b"plain text"))
    fmt.add("FMT_D", lambda ctx: ctx.cstring(b"value=%d"))
    fmt.add("FMT_S", lambda ctx: ctx.cstring(b"%s"), exceptional=True)
    fmt.add("FMT_N", lambda ctx: ctx.cstring(b"%n"), exceptional=True)
    fmt.add("FMT_WIDTH", lambda ctx: ctx.cstring(b"%999999d"), exceptional=True)

    filename = types.new_type("filename", parent="cstring")
    filename.add(
        "FN_EXISTING", lambda ctx: ctx.cstring(ctx.existing_file().encode())
    )
    filename.add("FN_MISSING", lambda ctx: ctx.cstring(ctx.missing_path().encode()))
    filename.add("FN_DIR", lambda ctx: ctx.cstring(b"/tmp"), exceptional=True)
    filename.add(
        "FN_DEEP_MISSING",
        lambda ctx: ctx.cstring(b"/no/such/dir/at/all/file.dat"),
        exceptional=True,
    )
    filename.add(
        "FN_LONG", lambda ctx: ctx.cstring(b"/tmp/" + b"a" * 300), exceptional=True
    )

    wstring = types.new_type("wstring", parent="buffer")
    wstring.add("WSTR_EMPTY", lambda ctx: _wstr(ctx, ""))
    wstring.add("WSTR_SHORT", lambda ctx: _wstr(ctx, "ballista"))
    wstring.add("WSTR_LONG", lambda ctx: _wstr(ctx, "x" * 1024))
    wstring.add(
        "WSTR_UNTERMINATED",
        lambda ctx: ctx.mem.alloc(("Z" * 32).encode("utf-16-le"), tag="wstr"),
        exceptional=True,
    )


def _wstr(ctx: TestContext, text: str) -> int:
    data = text.encode("utf-16-le") + b"\x00\x00"
    pad = (4 - len(data) % 4) % 4  # allocator word granularity
    return ctx.mem.alloc(data, tag="wstr", pad=pad)


# ----------------------------------------------------------------------
# C stdio
# ----------------------------------------------------------------------


def _install_stdio_types(types: TypeRegistry) -> None:
    mode = types.new_type("fopen_mode", parent="cstring")
    mode.add("MODE_R", lambda ctx: ctx.cstring(b"r"))
    mode.add("MODE_W", lambda ctx: ctx.cstring(b"w"))
    mode.add("MODE_A", lambda ctx: ctx.cstring(b"a"))
    mode.add("MODE_RB", lambda ctx: ctx.cstring(b"rb"))
    mode.add("MODE_RPLUS", lambda ctx: ctx.cstring(b"r+"))
    mode.add("MODE_BAD", lambda ctx: ctx.cstring(b"z"), exceptional=True)

    fileptr = types.new_type("fileptr")
    fileptr.add("FILE_NULL", lambda ctx: 0, exceptional=True)
    fileptr.add("FILE_NEG_ONE", lambda ctx: 0xFFFF_FFFF, exceptional=True)
    fileptr.add(
        # "a string buffer typecast to a file pointer" -- the single bad
        # parameter behind seventeen Windows CE catastrophic failures.
        "FILE_WILD_BUFFER",
        lambda ctx: ctx.cstring(b"this is not a FILE structure at all....."),
        exceptional=True,
    )
    fileptr.add(
        "FILE_UNMAPPED", lambda ctx: ctx.freed_buffer(64), exceptional=True
    )
    fileptr.add(
        "FILE_CLOSED",
        lambda ctx: ctx.crt.make_closed_stream(),
        exceptional=True,
    )
    fileptr.add(
        "FILE_OPEN_READ",
        lambda ctx: ctx.crt.open_stream_for_test(ctx.existing_file(), "r"),
    )
    fileptr.add(
        "FILE_OPEN_WRITE",
        lambda ctx: ctx.crt.open_stream_for_test(
            f"/tmp/bt_w_{ctx.process.pid}.dat", "w"
        ),
    )
    fileptr.add("FILE_STDIN", lambda ctx: ctx.crt.stdin)
    fileptr.add("FILE_STDOUT", lambda ctx: ctx.crt.stdout)


# ----------------------------------------------------------------------
# C time
# ----------------------------------------------------------------------


def _install_time_types(types: TypeRegistry) -> None:
    tval = types.new_type("time_t_val")
    tval.add("TIME_ZERO", lambda ctx: 0)
    tval.add("TIME_NOW", lambda ctx: ctx.machine.clock.unix_seconds())
    tval.add("TIME_NEG_ONE", lambda ctx: -1, exceptional=True)
    tval.add("TIME_MAX", lambda ctx: 0x7FFF_FFFF)

    tptr = types.new_type("time_t_ptr", parent="buffer")
    tptr.add("TIMEP_VALID", lambda ctx: _time_buffer(ctx))

    tm = types.new_type("tm_ptr", parent="buffer")
    tm.add("TM_VALID", lambda ctx: _tm_buffer(ctx))
    tm.add("TM_GARBAGE", lambda ctx: ctx.buffer(44, b"\x7f" * 44), exceptional=True)


def _time_buffer(ctx: TestContext) -> int:
    address = ctx.buffer(8)
    ctx.mem.write_u32(address, ctx.machine.clock.unix_seconds())
    return address


def _tm_buffer(ctx: TestContext) -> int:
    """A struct tm for 2000-06-25 12:00:00 (nine i32 fields)."""
    address = ctx.buffer(44)
    fields = [0, 0, 12, 25, 5, 100, 0, 176, 0]  # sec..tm_isdst
    for index, value in enumerate(fields):
        ctx.mem.write_i32(address + 4 * index, value)
    return address


# ----------------------------------------------------------------------
# POSIX
# ----------------------------------------------------------------------


def _install_posix_types(types: TypeRegistry) -> None:
    fd = types.new_type("fd")
    fd.add("FD_OPEN_READ", lambda ctx: _open_fd(ctx, readable=True))
    fd.add("FD_OPEN_WRITE", lambda ctx: _open_fd(ctx, readable=False))
    fd.add("FD_STDIN", lambda ctx: 0)
    fd.add("FD_STDOUT", lambda ctx: 1)
    fd.add("FD_STDERR", lambda ctx: 2)
    fd.add("FD_CLOSED", lambda ctx: _closed_fd(ctx), exceptional=True)
    fd.add("FD_NEG_ONE", lambda ctx: -1, exceptional=True)
    fd.add("FD_HUGE", lambda ctx: 9999, exceptional=True)
    fd.add("FD_PIPE_READ", lambda ctx: _pipe_fd(ctx))

    flags = types.new_type("open_flags")
    flags.add("OF_RDONLY", lambda ctx: 0)
    flags.add("OF_WRONLY", lambda ctx: 1)
    flags.add("OF_RDWR", lambda ctx: 2)
    flags.add("OF_CREAT_RDWR", lambda ctx: 0o100 | 2)
    flags.add("OF_CREAT_EXCL", lambda ctx: 0o100 | 0o200 | 2)
    flags.add("OF_TRUNC", lambda ctx: 0o1000 | 2)
    flags.add("OF_BOGUS", lambda ctx: 0x7F00_0000, exceptional=True)

    mode = types.new_type("mode_t")
    mode.add("MODE_644", lambda ctx: 0o644)
    mode.add("MODE_777", lambda ctx: 0o777)
    mode.add("MODE_000", lambda ctx: 0)
    mode.add("MODE_7777", lambda ctx: 0o7777)
    mode.add("MODE_BAD", lambda ctx: 0xFFFF, exceptional=True)

    signal = types.new_type("signal_num")
    signal.add("SIG_ZERO", lambda ctx: 0)
    signal.add("SIG_TERM", lambda ctx: 15)
    signal.add("SIG_USR1", lambda ctx: 10)
    signal.add("SIG_NEG", lambda ctx: -1, exceptional=True)
    signal.add("SIG_HUGE", lambda ctx: 999, exceptional=True)

    pid = types.new_type("pid_val")
    pid.add("PID_SELF", lambda ctx: ctx.process.pid)
    pid.add("PID_ONE", lambda ctx: 1)
    pid.add("PID_ZERO", lambda ctx: 0)
    pid.add("PID_NEG", lambda ctx: -1)
    pid.add("PID_BOGUS", lambda ctx: 999_999, exceptional=True)

    stat_buf = types.new_type("stat_buf", parent="buffer")
    stat_buf.add("STATBUF_VALID", lambda ctx: ctx.buffer(STAT_SIZE))


def _open_fd(ctx: TestContext, readable: bool) -> int:
    path = ctx.existing_file()
    open_file = ctx.machine.fs.open(path, readable=readable, writable=not readable)
    fd = ctx.process.alloc_fd(open_file, lowest=3)
    return fd


def _closed_fd(ctx: TestContext) -> int:
    fd = _open_fd(ctx, readable=True)
    ctx.process.close_fd(fd)
    return fd


def _pipe_fd(ctx: TestContext) -> int:
    from repro.sim.filesystem import Pipe
    from repro.sim.process import PipeEnd

    pipe = Pipe()
    pipe.write(b"pipe data")
    return ctx.process.alloc_fd(PipeEnd(pipe, readable=True), lowest=3)


# ----------------------------------------------------------------------
# Win32
# ----------------------------------------------------------------------


def _install_win32_types(types: TypeRegistry) -> None:
    from repro.sim.objects import (
        CURRENT_PROCESS_HANDLE,
        CURRENT_THREAD_HANDLE,
        EventObject,
    )

    handle = types.new_type("handle")
    handle.add("H_NULL", lambda ctx: 0, exceptional=True)
    handle.add("H_INVALID", lambda ctx: 0xFFFF_FFFF, exceptional=True)
    handle.add("H_SMALL_ODD", lambda ctx: 3, exceptional=True)
    handle.add("H_GARBAGE", lambda ctx: 0x0BAD_F00D, exceptional=True)
    handle.add("H_CLOSED", lambda ctx: _closed_handle(ctx), exceptional=True)
    handle.add("H_EVENT", lambda ctx: _event_handle(ctx, signaled=True))

    file_handle = types.new_type("file_handle", parent="handle")
    file_handle.add("FH_READ", lambda ctx: _file_handle(ctx, readable=True))
    file_handle.add("FH_WRITE", lambda ctx: _file_handle(ctx, readable=False))

    thread_handle = types.new_type("thread_handle", parent="handle")
    thread_handle.add("TH_CURRENT", lambda ctx: CURRENT_THREAD_HANDLE)
    thread_handle.add("TH_REAL", lambda ctx: _thread_handle(ctx))

    process_handle = types.new_type("process_handle", parent="handle")
    process_handle.add("PH_CURRENT", lambda ctx: CURRENT_PROCESS_HANDLE)
    process_handle.add("PH_REAL", lambda ctx: _process_handle(ctx))

    waitable = types.new_type("waitable_handle", parent="handle")
    waitable.add("WH_EVENT_SET", lambda ctx: _event_handle(ctx, signaled=True))
    waitable.add("WH_EVENT_UNSET", lambda ctx: _event_handle(ctx, signaled=False))
    waitable.add("WH_MUTEX", lambda ctx: _mutex_handle(ctx))

    heap = types.new_type("heap_handle", parent="handle")
    heap.add("HH_VALID", lambda ctx: _heap_handle(ctx))

    dword = types.new_type("dword")
    dword.add("DW_ZERO", lambda ctx: 0)
    dword.add("DW_ONE", lambda ctx: 1)
    dword.add("DW_16", lambda ctx: 16)
    dword.add("DW_PAGE", lambda ctx: 4096)
    dword.add("DW_64K", lambda ctx: 0x1_0000)
    dword.add("DW_HALF", lambda ctx: 0x7FFF_FFFF, exceptional=True)
    dword.add("DW_MAX", lambda ctx: 0xFFFF_FFFF, exceptional=True)

    timeout = types.new_type("timeout_ms")
    timeout.add("TO_ZERO", lambda ctx: 0)
    timeout.add("TO_SHORT", lambda ctx: 50)
    timeout.add("TO_LONG", lambda ctx: 10_000)
    timeout.add("TO_INFINITE", lambda ctx: INFINITE)

    sa = types.new_type("security_attributes")
    sa.add("SA_NULL", lambda ctx: 0)
    sa.add("SA_VALID", lambda ctx: _security_attributes(ctx))
    sa.add("SA_WILD", lambda ctx: ctx.freed_buffer(12), exceptional=True)
    sa.add("SA_NEG", lambda ctx: 0xFFFF_FFFF, exceptional=True)

    context_ptr = types.new_type("context_ptr", parent="buffer")
    context_ptr.add("CTX_VALID", lambda ctx: ctx.buffer(CONTEXT_SIZE))

    alloc_type = types.new_type("alloc_type")
    alloc_type.add("AT_COMMIT", lambda ctx: 0x1000)
    alloc_type.add("AT_RESERVE", lambda ctx: 0x2000)
    alloc_type.add("AT_BOTH", lambda ctx: 0x3000)
    alloc_type.add("AT_ZERO", lambda ctx: 0, exceptional=True)
    alloc_type.add("AT_BOGUS", lambda ctx: 0xFF, exceptional=True)

    protect = types.new_type("page_protect")
    protect.add("PP_RW", lambda ctx: 0x04)
    protect.add("PP_RO", lambda ctx: 0x02)
    protect.add("PP_RWX", lambda ctx: 0x40)
    protect.add("PP_NOACCESS", lambda ctx: 0x01)
    protect.add("PP_ZERO", lambda ctx: 0, exceptional=True)
    protect.add("PP_BOGUS", lambda ctx: 0x12345, exceptional=True)

    handle_array = types.new_type("handle_array", parent="buffer")
    handle_array.add("HA_VALID_2", lambda ctx: _handle_array(ctx, bad=False))
    handle_array.add(
        "HA_WITH_BAD", lambda ctx: _handle_array(ctx, bad=True), exceptional=True
    )

    wait_count = types.new_type("wait_count")
    wait_count.add("WC_ZERO", lambda ctx: 0, exceptional=True)
    wait_count.add("WC_ONE", lambda ctx: 1)
    wait_count.add("WC_TWO", lambda ctx: 2)
    wait_count.add("WC_HUGE", lambda ctx: 1000, exceptional=True)

    file_attrs = types.new_type("file_attrs")
    file_attrs.add("FA_NORMAL", lambda ctx: 0x80)
    file_attrs.add("FA_READONLY", lambda ctx: 0x01)
    file_attrs.add("FA_HIDDEN", lambda ctx: 0x02)
    file_attrs.add("FA_ZERO", lambda ctx: 0)
    file_attrs.add("FA_BOGUS", lambda ctx: 0xFFFF_FFFF, exceptional=True)

    access = types.new_type("access_mode")
    access.add("AM_READ", lambda ctx: 0x8000_0000)
    access.add("AM_WRITE", lambda ctx: 0x4000_0000)
    access.add("AM_RW", lambda ctx: 0xC000_0000)
    access.add("AM_ZERO", lambda ctx: 0)
    access.add("AM_BOGUS", lambda ctx: 0x1234, exceptional=True)

    share = types.new_type("share_mode")
    share.add("SM_ZERO", lambda ctx: 0)
    share.add("SM_READ", lambda ctx: 1)
    share.add("SM_RW", lambda ctx: 3)
    share.add("SM_BOGUS", lambda ctx: 0xFF, exceptional=True)

    disposition = types.new_type("creation_disp")
    disposition.add("CD_CREATE_NEW", lambda ctx: 1)
    disposition.add("CD_CREATE_ALWAYS", lambda ctx: 2)
    disposition.add("CD_OPEN_EXISTING", lambda ctx: 3)
    disposition.add("CD_OPEN_ALWAYS", lambda ctx: 4)
    disposition.add("CD_ZERO", lambda ctx: 0, exceptional=True)
    disposition.add("CD_BOGUS", lambda ctx: 99, exceptional=True)

    filetime = types.new_type("filetime_ptr", parent="buffer")
    filetime.add("FT_VALID", lambda ctx: _filetime_buffer(ctx))
    filetime.add("FT_GARBAGE", lambda ctx: _garbage_filetime(ctx), exceptional=True)

    systemtime = types.new_type("systemtime_ptr", parent="buffer")
    systemtime.add("ST_VALID", lambda ctx: ctx.buffer(16))

    env_name = types.new_type("env_name", parent="cstring")
    env_name.add("EN_EXISTING", lambda ctx: ctx.cstring(b"PATH"))
    env_name.add("EN_MISSING", lambda ctx: ctx.cstring(b"BALLISTA_NOPE"))
    env_name.add("EN_EQUALS", lambda ctx: ctx.cstring(b"A=B"), exceptional=True)

    interlocked_ptr = types.new_type("interlocked_ptr", parent="buffer")
    interlocked_ptr.add("IL_VALID", lambda ctx: _aligned_long(ctx))

    std_id = types.new_type("std_handle_id")
    std_id.add("STD_INPUT", lambda ctx: 0xFFFF_FFF6)  # (DWORD)-10
    std_id.add("STD_OUTPUT", lambda ctx: 0xFFFF_FFF5)
    std_id.add("STD_ERROR", lambda ctx: 0xFFFF_FFF4)
    std_id.add("STD_ZERO", lambda ctx: 0, exceptional=True)
    std_id.add("STD_BOGUS", lambda ctx: 77, exceptional=True)


# -- Win32 constructors -------------------------------------------------


def _event_handle(ctx: TestContext, signaled: bool) -> int:
    from repro.sim.objects import EventObject

    return ctx.process.handles.insert(
        EventObject(manual_reset=True, initial_state=signaled)
    )


def _mutex_handle(ctx: TestContext) -> int:
    from repro.sim.objects import MutexObject

    return ctx.process.handles.insert(MutexObject(initially_owned=False))


def _closed_handle(ctx: TestContext) -> int:
    handle = _event_handle(ctx, signaled=False)
    ctx.process.handles.close(handle)
    return handle


def _file_handle(ctx: TestContext, readable: bool) -> int:
    from repro.sim.objects import FileObject

    path = ctx.existing_file()
    open_file = ctx.machine.fs.open(path, readable=readable, writable=not readable)
    return ctx.process.handles.insert(FileObject(open_file, name=path))


def _thread_handle(ctx: TestContext) -> int:
    thread = ctx.process.spawn_thread(suspended=True)
    return ctx.process.handles.insert(thread)


def _process_handle(ctx: TestContext) -> int:
    return ctx.process.handles.insert(ctx.process.kernel_object)


def _heap_handle(ctx: TestContext) -> int:
    from repro.sim.objects import HeapObject

    return ctx.process.handles.insert(HeapObject(0x1000, 0x10000))


def _security_attributes(ctx: TestContext) -> int:
    address = ctx.buffer(12)
    ctx.mem.write_u32(address, 12)  # nLength
    return address


def _handle_array(ctx: TestContext, bad: bool) -> int:
    first = _event_handle(ctx, signaled=True)
    second = 0xDEAD if bad else _event_handle(ctx, signaled=True)
    address = ctx.buffer(8)
    ctx.mem.write_u32(address, first)
    ctx.mem.write_u32(address + 4, second)
    return address


def _filetime_buffer(ctx: TestContext) -> int:
    address = ctx.buffer(8)
    # FILETIME: 100ns intervals since 1601-01-01.
    unix = ctx.machine.clock.unix_seconds()
    ctx.mem.write_u64(address, (unix + 11_644_473_600) * 10_000_000)
    return address


def _garbage_filetime(ctx: TestContext) -> int:
    address = ctx.buffer(8)
    ctx.mem.write_u64(address, 0xFFFF_FFFF_FFFF_FFFF)
    return address


def _aligned_long(ctx: TestContext) -> int:
    address = ctx.buffer(8)
    ctx.mem.write_i32(address, 41)
    return address
