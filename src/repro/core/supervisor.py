"""Self-healing supervision for parallel campaigns.

The paper's harness kept a multi-week campaign alive on physical
machines that its own test cases were crashing: the Ballista server
noticed a dead SUT, rebooted it, and continued from where the plan
stood, flagging what could not be re-measured.  This module is that
supervise-reboot-continue loop for the simulated fleet.  Three
mechanisms, layered over :class:`~repro.core.parallel.ParallelCampaign`:

* **Automatic restart.**  A worker that dies -- SIGKILLed from outside,
  OOM-killed, or felled by an internal error -- is relaunched from its
  per-variant shard checkpoint with exponential backoff, up to a
  per-variant restart budget.  Because the per-variant loop is
  restart-safe at any plan cursor (completed MuTs skip, machine wear
  restores), the healed run's results are byte-identical to an
  undisturbed run's.

* **Wall-clock watchdog.**  The simulated clock's watchdog catches
  hangs *inside* the simulation, but a MuT implementation that loops in
  real Python never advances the simulated clock at all.  Workers
  stream throttled ``(variant, "api:name", case_index)`` heartbeats
  over the existing event queue; a worker whose heartbeat goes stale
  past the real-time deadline is SIGKILLed and restarted from its
  shard.

* **Poison-MuT quarantine.**  A MuT that kills or hangs its worker more
  than ``max_mut_retries`` times is withdrawn: the restarted worker
  records it as a harness-level QUARANTINED outcome (no case array,
  excluded from rates, footnoted in the analysis tables next to the
  ``!`` partial-variant flag) and the variant's plan continues -- the
  campaign finishes instead of burning its restart budget on one
  input.

Every decision is logged; the log rides on in-flight checkpoint
documents (so a resumed run sees its fault history) and is cleared from
the final one, preserving the byte-identity guarantee.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import queue
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.campaign import CampaignConfig
from repro.core.parallel import ParallelCampaign
from repro.obs import events as obs_events
from repro.obs.recorder import Recorder
from repro.core.results_io import (
    CampaignCheckpoint,
    ResultFormatError,
    checkpoint_from_dict,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.personality import Personality


def _env_value(name: str, default: str) -> str:
    return os.environ.get(name, default)


def default_mut_deadline() -> float | None:
    """Wall-clock heartbeat deadline: ``BALLISTA_MUT_DEADLINE`` seconds,
    default 300.  ``0`` disables the watchdog.  Raises
    :class:`ValueError` naming the variable on junk, so callers (the
    CLI) can report it cleanly."""
    raw = _env_value("BALLISTA_MUT_DEADLINE", "300")
    try:
        deadline = float(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_MUT_DEADLINE must be a number of seconds "
            f"(0 disables the watchdog), got {raw!r}"
        ) from None
    if deadline < 0:
        raise ValueError(
            f"BALLISTA_MUT_DEADLINE must be >= 0, got {deadline}"
        )
    return None if deadline == 0 else deadline


def default_max_restarts() -> int:
    """Per-variant worker restart budget: ``BALLISTA_MAX_RESTARTS``,
    default 5."""
    raw = _env_value("BALLISTA_MAX_RESTARTS", "5")
    try:
        budget = int(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_MAX_RESTARTS must be an integer restart budget, "
            f"got {raw!r}"
        ) from None
    if budget < 0:
        raise ValueError(f"BALLISTA_MAX_RESTARTS must be >= 0, got {budget}")
    return budget


def default_max_mut_retries() -> int:
    """Worker deaths one MuT may cause before quarantine:
    ``BALLISTA_MAX_MUT_RETRIES``, default 1."""
    raw = _env_value("BALLISTA_MAX_MUT_RETRIES", "1")
    try:
        retries = int(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_MAX_MUT_RETRIES must be an integer retry count, "
            f"got {raw!r}"
        ) from None
    if retries < 0:
        raise ValueError(
            f"BALLISTA_MAX_MUT_RETRIES must be >= 0, got {retries}"
        )
    return retries


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for the supervision loop.

    :param mut_deadline: seconds a worker's heartbeat may go stale
        before the watchdog SIGKILLs it (``None`` = watchdog off).
    :param max_restarts: worker relaunches allowed per variant before
        the campaign fails loudly.
    :param max_mut_retries: worker deaths attributable to one MuT
        before it is quarantined (``1`` = one retry, quarantined on the
        second strike).
    :param backoff_base: sleep before the first relaunch of a variant;
        doubles per relaunch, capped at ``backoff_max``.
    :param clock: injectable monotonic clock (tests).
    """

    mut_deadline: float | None = field(default_factory=default_mut_deadline)
    max_restarts: int = field(default_factory=default_max_restarts)
    max_mut_retries: int = field(default_factory=default_max_mut_retries)
    backoff_base: float = 0.25
    backoff_max: float = 15.0
    clock: Callable[[], float] = time.monotonic

    def backoff(self, restart_index: int) -> float:
        """Delay before restart number ``restart_index + 1``."""
        return min(self.backoff_base * (2**restart_index), self.backoff_max)


class SupervisedCampaign(ParallelCampaign):
    """A :class:`ParallelCampaign` whose workers are supervised.

    Drop-in: same constructor and :meth:`run` contract, same
    byte-identical output on a fault-free run (and on a run healed by
    restarts).  Additions: dead workers relaunch from their shards,
    stale-heartbeat workers are killed and relaunched, and poison MuTs
    are quarantined instead of failing the campaign.  The decision
    trail lands in :attr:`supervision_log`.

    ``jobs=1`` runs the serial in-process campaign: there is no worker
    process to supervise, exactly as in the base class.
    """

    def __init__(
        self,
        variants: Sequence[Personality],
        config: CampaignConfig | None = None,
        muts: Iterable[str] | None = None,
        jobs: int | None = None,
        policy: SupervisorPolicy | None = None,
        shards: int | None = None,
        atlas_path: str | pathlib.Path | None = None,
    ) -> None:
        super().__init__(
            variants,
            config=config,
            muts=muts,
            jobs=jobs,
            shards=shards,
            atlas_path=atlas_path,
        )
        self.policy = policy or SupervisorPolicy()
        #: Chronological supervision events of the last :meth:`run`.
        self.supervision_log: list[dict] = []
        self._tempdir: str | None = None
        self._live_checkpoint_path: str | pathlib.Path | None = None

    # -- shard plumbing -------------------------------------------------

    def _shard_base(self, checkpoint_path):
        """Restart-from-shard needs shards even when the caller did not
        ask for a checkpoint file: fabricate a temporary base."""
        if checkpoint_path is not None:
            return checkpoint_path
        self._tempdir = tempfile.mkdtemp(prefix="ballista-supervised-")
        return os.path.join(self._tempdir, "campaign.ckpt")

    def _release_shard_base(self) -> None:
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
            self._tempdir = None

    def _heartbeat_interval(self) -> float:
        """Beacons must be several times faster than the deadline that
        judges them."""
        if self.policy.mut_deadline is None:
            return 1.0
        return max(0.01, min(1.0, self.policy.mut_deadline / 5.0))

    # -- supervision loop -----------------------------------------------

    def run(
        self,
        progress=None,
        checkpoint_path: str | pathlib.Path | None = None,
        checkpoint_every: int = 25,
        resume=None,
        recorder: Recorder | None = None,
    ):
        self.supervision_log = []
        # Only worker-backed runs with a real checkpoint file persist
        # the log in-flight; jobs=1 has no supervision at all.
        self._live_checkpoint_path = (
            checkpoint_path if self.jobs > 1 else None
        )
        try:
            return super().run(
                progress=progress,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                resume=resume,
                recorder=recorder,
            )
        finally:
            self._live_checkpoint_path = None

    def _log(self, event: str, variant: str, **detail) -> None:
        entry = {"event": event, "variant": variant, **detail}
        self.supervision_log.append(entry)
        path = self._live_checkpoint_path
        if path is not None and os.path.exists(path):
            # Persist the fault history onto the in-flight combined
            # document (the base runner wrote it before spawning any
            # worker) so an operator resuming an interrupted run sees
            # what the supervisor already survived.  The *final*
            # checkpoint is rebuilt from the merged shards with an
            # empty supervision log, keeping byte-identity with an
            # undisturbed run.
            try:
                live = load_checkpoint(path)
            except (OSError, ResultFormatError):  # pragma: no cover
                return
            live.supervision = list(self.supervision_log)
            save_checkpoint(live, path)

    def _note_replay(self, spec, recorder: Recorder | None) -> None:
        super()._note_replay(spec, recorder)
        # Replays are settlement corrections, not faults: they ride the
        # supervision log for the operator but never burn the slice's
        # restart budget.
        self._log(
            "shard_replay",
            spec["variant"],
            index=spec["shard"]["index"],
            why="speculative base wear was stale",
        )

    def _pump_timeout(self) -> float:
        """Queue poll interval.  Floored at 50 ms: a tight MuT deadline
        used to drive this down to 10 ms, turning the pump into a busy
        loop that spent its time on liveness scans instead of events.
        The watchdog only needs the poll to be comfortably shorter than
        the deadline, not a fixed fraction of it."""
        if self.policy.mut_deadline is None:
            return 0.2
        return max(0.05, min(0.2, self.policy.mut_deadline / 4.0))

    def _run_workers(self, specs, progress, recorder: Recorder | None = None):
        policy = self.policy
        ctx = multiprocessing.get_context("spawn")
        events = ctx.Queue()
        # Specs route by tag (the variant key unless a caller tagged
        # them -- the campaign service runs several jobs that share a
        # variant and tags "<job>/<variant>"); every dict below is
        # keyed by that same tag, matching the workers' messages.
        spec_by_key = {
            (spec.get("tag") or spec["variant"]): spec for spec in specs
        }
        pending = list(specs)
        running: dict[str, object] = {}
        shards: dict[str, CampaignCheckpoint] = {}
        errors: dict[str, str] = {}
        restarts: dict[str, int] = {}
        strikes: dict[tuple[str, str], int] = {}
        inflight: dict[str, tuple[str, int]] = {}
        last_seen: dict[str, float] = {}
        resume_at: dict[str, float] = {}

        def emit(event) -> None:
            if recorder is not None:
                recorder.emit(event)

        def handle_death(
            key: str, kind: str, why: str, exitcode: int | None = None
        ) -> None:
            """One dead worker: attribute, maybe quarantine, maybe
            relaunch."""
            running.pop(key, None)
            used = restarts[key] = restarts.get(key, 0) + 1
            emit(obs_events.WorkerDied(key, kind, why, exitcode=exitcode))
            mut_case = inflight.pop(key, None)
            if mut_case is not None:
                mut, case_index = mut_case
                count = strikes[(key, mut)] = strikes.get((key, mut), 0) + 1
                if count > policy.max_mut_retries:
                    reason = (
                        f"{kind} its worker {count} times "
                        f"(last at case {case_index}); quarantined after "
                        f"{policy.max_mut_retries} retries"
                    )
                    spec_by_key[key]["quarantine"][mut] = reason
                    self._log(
                        "quarantine", key, mut=mut, strikes=count, why=reason
                    )
            if used > policy.max_restarts:
                errors[key] = (
                    f"restart budget exhausted ({policy.max_restarts}) "
                    f"after worker {why}"
                )
                self._log(
                    "budget_exhausted", key, restarts=used - 1, why=why
                )
                emit(obs_events.BudgetExhausted(key, used - 1, why))
                return
            delay = policy.backoff(used - 1)
            resume_at[key] = policy.clock() + delay
            pending.append(spec_by_key[key])
            self._log(
                "restart", key, attempt=used, backoff_s=delay,
                kind=kind, why=why,
            )
            emit(obs_events.WorkerRestarted(key, used, delay, kind))

        try:
            while pending or running:
                if not running and pending and not errors:
                    # Nothing alive to produce events: sleep out the
                    # earliest backoff instead of spinning on the queue.
                    wait = min(
                        resume_at.get(s.get("tag") or s["variant"], 0.0)
                        for s in pending
                    ) - policy.clock()
                    if wait > 0:
                        time.sleep(min(wait, 0.05))
                now = policy.clock()
                for spec in list(pending):
                    if len(running) >= self.jobs:
                        break
                    key = spec.get("tag") or spec["variant"]
                    if key in errors or resume_at.get(key, 0.0) > now:
                        continue
                    if self._planner is not None and not self._planner.ready(
                        key
                    ):
                        continue  # slice base unknown: predecessor first
                    pending.remove(spec)
                    if self._planner is not None:
                        self._planner.mark_spawned(key)
                    worker = self._spawn(ctx, spec, events)
                    running[key] = worker
                    last_seen[key] = policy.clock()
                    emit(
                        obs_events.WorkerSpawned(
                            key, worker.pid or 0, restarts.get(key, 0) + 1
                        )
                    )
                if not running and not any(
                    (s.get("tag") or s["variant"]) not in errors
                    for s in pending
                ):
                    break  # only budget-exhausted variants remain
                message = None
                try:
                    message = events.get(timeout=self._pump_timeout())
                except queue.Empty:
                    pass
                if message is not None:
                    kind, key = message[0], message[1]
                    last_seen[key] = policy.clock()
                    if kind == "progress":
                        self._forward_progress(progress, message)
                    elif kind == "heartbeat":
                        inflight[key] = (message[2], message[3])
                    elif kind == "obs":
                        if recorder is not None:
                            recorder.record(message[2])
                    elif kind == "done":
                        inflight.pop(key, None)
                        self._retire(running, key)
                        emit(obs_events.WorkerFinished(key))
                        # A watchdog race can park a respawn for a
                        # variant that actually finished: cancel it
                        # (before the settlement cascade, which may
                        # legitimately re-queue this very slice as a
                        # replay).
                        pending[:] = [
                            s
                            for s in pending
                            if (s.get("tag") or s["variant"]) != key
                        ]
                        self._absorb_done(
                            key,
                            checkpoint_from_dict(message[2]),
                            shards,
                            pending,
                            recorder,
                        )
                    else:  # "error": an exception inside the worker
                        worker = running.get(key)
                        if worker is not None:
                            worker.join(timeout=10)
                        handle_death(
                            key,
                            "crashed",
                            f"raised:\n{message[2]}",
                        )
                # Wall-clock watchdog: a silent worker is hung in real
                # time (the simulated watchdog cannot see it).
                if policy.mut_deadline is not None:
                    for key, worker in list(running.items()):
                        stale = policy.clock() - last_seen.get(key, now)
                        if stale > policy.mut_deadline:
                            mut_case = inflight.get(key)
                            self._log(
                                "watchdog_kill", key,
                                stale_s=round(stale, 3),
                                mut=mut_case[0] if mut_case else None,
                            )
                            worker.kill()
                            worker.join(timeout=10)
                            handle_death(
                                key,
                                "hung",
                                f"heartbeat stale {stale:.1f}s "
                                f"(deadline {policy.mut_deadline}s)",
                            )
                # Reap workers killed from outside (OOM, SIGKILL).
                # Sentinel-gated: an idle-but-healthy fleet must not
                # pay a per-worker liveness scan (or emit death
                # telemetry) on every pump tick.
                for key in self._dead_workers(running):
                    worker = running.get(key)
                    if worker is None:
                        continue
                    worker.join(timeout=1.0)  # let the exit code settle
                    if not worker.is_alive() and worker.exitcode != 0:
                        handle_death(
                            key,
                            "killed",
                            f"exited with code {worker.exitcode}",
                            exitcode=worker.exitcode,
                        )
        finally:
            self._stop_workers(running, events)
        if errors:
            detail = "\n".join(
                f"--- worker [{key}] ---\n{text}"
                for key, text in sorted(errors.items())
            )
            raise RuntimeError(
                f"supervised campaign gave up on {sorted(errors)}:\n{detail}"
            )
        return shards
