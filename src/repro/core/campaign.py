"""Campaign orchestration: run every MuT on every requested OS variant.

A campaign reproduces the paper's measurement procedure:

* per variant, one simulated machine is booted and persists across test
  cases (so shared-state corruption can accumulate);
* each MuT's test-case sequence is generated deterministically (identical
  across variants) and each case runs in a fresh process;
* a Catastrophic failure interrupts testing of that MuT -- the machine is
  rebooted and the campaign moves to the next MuT, and the MuT is
  excluded from rate averages, exactly as in the paper;
* results land in a :class:`~repro.core.results.ResultSet`.

The per-MuT cap defaults to the ``BALLISTA_CAP`` environment variable
(300 when unset) so test/bench runs stay fast; set ``BALLISTA_CAP=5000``
for the paper-scale campaign.
"""

from __future__ import annotations

import os
import pathlib
import warnings
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.crash_scale import CaseCode
from repro.core.executor import CaseOutcome, Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuT, MuTRegistry, default_registry
from repro.core.results import ResultSet
from repro.core.results_io import (
    CampaignCheckpoint,
    checkpoint_plan,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.types import TypeRegistry, default_types
from repro.obs import events as obs_events
from repro.obs.recorder import Recorder
from repro.sim.faults import FAULT_FAMILIES
from repro.sim.machine import Machine
from repro.sim.personality import Personality

#: Detail-string marker for crashes caused by accumulated corruption.
_INTERFERENCE_MARKER = "accumulated corruption"


def default_cap() -> int:
    """Per-MuT case cap: ``BALLISTA_CAP`` env var, default 300.

    Raises a :class:`ValueError` naming the variable when it holds
    something other than a positive integer, so callers (notably the
    CLI) can report it cleanly instead of leaking a traceback.
    """
    raw = os.environ.get("BALLISTA_CAP", "300")
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_CAP must be an integer number of test cases "
            f"(e.g. 300 or 5000), got {raw!r}"
        ) from None
    if cap < 1:
        raise ValueError(f"BALLISTA_CAP must be a positive integer, got {cap}")
    return cap


@dataclass
class CampaignConfig:
    """Tunable knobs for a campaign.

    :param cap: per-MuT test-case cap (paper: 5000).
    :param watchdog_ticks: per-call hang budget in virtual ms.
    :param machine_per_case: ablation switch -- boot a fresh machine for
        *every* case (full isolation).  Interference crashes disappear in
        this mode, demonstrating why the paper could not reproduce the
        ``*`` crashes outside the harness.
    :param count_thrown_exceptions_as_abort: ablation switch for the
        paper's "more than fair" policy of assuming all thrown Win32
        exceptions are recoverable error reports.  When True, *every*
        thrown exception counts as an Abort.
    :param mode: ``"case"`` (the paper's per-case campaign) or
        ``"sequence"`` (stateful k-call sequences as the unit of work;
        see :mod:`repro.core.sequences`).
    :param sequences: sequences planned per variant (sequence mode).
    :param sequence_length: calls per sequence (sequence mode).
    :param sequence_seed: campaign-level seed for sequence planning.
    :param dirty_machine: sequence mode only -- skip the
        between-sequence reboot, so each sequence starts on the wear
        its predecessors accumulated.
    :param fault_families: exhaustion families eligible for seeded
        injection in sequence mode (subset of
        :data:`repro.sim.faults.FAULT_FAMILIES`); empty disables
        injection.
    """

    cap: int = field(default_factory=default_cap)
    watchdog_ticks: int = 30_000
    machine_per_case: bool = False
    count_thrown_exceptions_as_abort: bool = False
    mode: str = "case"
    sequences: int = 50
    sequence_length: int = 6
    sequence_seed: int = 0
    dirty_machine: bool = False
    fault_families: tuple = FAULT_FAMILIES

    def __post_init__(self) -> None:
        if self.mode not in ("case", "sequence"):
            raise ValueError(
                f"mode must be 'case' or 'sequence', got {self.mode!r}"
            )
        # Workers rebuild configs from plain JSON-ish dicts, where the
        # families arrive as a list; normalise so equality and plan
        # seeding cannot depend on the container type.
        self.fault_families = tuple(self.fault_families)


ProgressFn = Callable[[str, str, int, int], None]

#: Per-case liveness callback: ``(variant, "api:name", case_index)``.
#: The supervisor's wall-clock watchdog consumes these -- a worker whose
#: heartbeats stop mid-MuT is hung in *real* time (outside the simulated
#: clock's reach) and gets terminated and restarted from its shard.
HeartbeatFn = Callable[[str, str, int], None]


def mut_key(mut: MuT) -> str:
    """The unambiguous ``api:name`` identity used in heartbeats and
    quarantine specs (bare names can repeat across APIs, e.g. the libc
    and syscall ``rename``)."""
    return f"{mut.api}:{mut.name}"


class Campaign:
    """Runs MuTs across OS variants and collects results."""

    def __init__(
        self,
        variants: Sequence[Personality],
        registry: MuTRegistry | None = None,
        types: TypeRegistry | None = None,
        config: CampaignConfig | None = None,
        muts: Iterable[str] | None = None,
        shard: dict | None = None,
    ) -> None:
        """
        :param variants: OS personalities to test.
        :param muts: optional subset of bare MuT names to run.
        :param shard: intra-variant slice assignment for a sharded
            campaign worker (single-variant campaigns only): the
            checkpoint ``shard`` block --
            ``{"variant", "index", "start", "stop", "resumed",
            "base_wear"}``.  The plan is restricted to positions
            ``[start, stop)`` and the machine boots from ``base_wear``
            (the exact serial wear at the slice's first position;
            ``None`` = fresh boot), so the slice classifies byte-
            identically to the same positions of a serial run.
        """
        self.variants = list(variants)
        self.registry = registry or default_registry()
        self.types = types or default_types()
        self.config = config or CampaignConfig()
        self.generator = CaseGenerator(self.types, cap=self.config.cap)
        self._mut_filter = set(muts) if muts is not None else None
        if shard is not None and len(self.variants) != 1:
            raise ValueError(
                "an intra-variant shard assignment needs a single-variant "
                f"campaign, got {len(self.variants)} variants"
            )
        self._shard = dict(shard) if shard is not None else None
        #: Set by :meth:`run`: the run's final checkpoint (results plus
        #: plan cursors and machine wear), whether or not it was saved.
        self.last_checkpoint: CampaignCheckpoint | None = None
        # Materialise every per-MuT case plan up front: a plan is a pure
        # function of (MuT name, pools, cap), so one list serves all of
        # the campaign's variants, shard slices, and sequences.  Doing
        # it at construction keeps plan decoding out of the per-case
        # loop.  Shard workers skip the warm-up -- their slice may touch
        # a fraction of the plan, and the per-MuT cache fills lazily.
        if self._shard is None:
            seen: set[str] = set()
            for personality in self.variants:
                for mut in self.muts_for(personality):
                    if mut.name not in seen:
                        seen.add(mut.name)
                        self.generator.cases(mut)

    # ------------------------------------------------------------------

    def muts_for(self, personality: Personality) -> list[MuT]:
        muts = self.registry.for_variant(personality)
        if self._mut_filter is not None:
            muts = [m for m in muts if m.name in self._mut_filter]
        return muts

    def sequence_plans(self, personality: Personality) -> list:
        """The variant's deterministic sequence plan (sequence mode)."""
        from repro.core.sequences import SequencePlanner

        return SequencePlanner(
            self.muts_for(personality),
            self.generator,
            count=self.config.sequences,
            length=self.config.sequence_length,
            seed=self.config.sequence_seed,
            fault_families=self.config.fault_families,
        ).plans()

    def plan_identities(
        self, personality: Personality
    ) -> list[tuple[str, str]]:
        """The variant's ordered plan as ``(api, name)`` identities --
        the currency of checkpoint splitting/merging and the wear atlas.
        One entry per MuT in case mode, one per sequence (under the
        reserved ``"seq"`` namespace) in sequence mode."""
        if self.config.mode == "sequence":
            from repro.core.sequences import SEQUENCE_API, sequence_name

            return [
                (SEQUENCE_API, sequence_name(index))
                for index in range(self.config.sequences)
            ]
        return [(m.api, m.name) for m in self.muts_for(personality)]

    def run(
        self,
        progress: ProgressFn | None = None,
        checkpoint_path: str | pathlib.Path | None = None,
        checkpoint_every: int = 25,
        resume: CampaignCheckpoint | str | pathlib.Path | None = None,
        quarantine: dict[str, str] | None = None,
        heartbeat: HeartbeatFn | None = None,
        recorder: Recorder | None = None,
    ) -> ResultSet:
        """Execute the full campaign and return the result set.

        :param checkpoint_path: write a restartable checkpoint document
            here every ``checkpoint_every`` completed MuTs (and at each
            variant boundary).  Writes are atomic, so killing the run
            mid-checkpoint never loses the previous one.
        :param resume: a :class:`CampaignCheckpoint` (or path to one)
            from an interrupted run.  Already-completed MuTs are skipped
            and per-variant machine wear (accumulated corruption, clock)
            is restored, so the final result set matches an
            uninterrupted run.
        :param quarantine: ``{"api:name": reason}`` MuTs the supervisor
            has withdrawn; each is recorded as QUARANTINED and skipped.
        :param heartbeat: per-case liveness callback (see
            :data:`HeartbeatFn`); the supervisor's watchdog feeds on it.
        :param recorder: optional telemetry sink (see :mod:`repro.obs`);
            receives typed campaign events as the run progresses.
        """
        keys = [p.key for p in self.variants]
        if isinstance(resume, (str, pathlib.Path)):
            resume = load_checkpoint(resume)
        if resume is not None:
            if not resume.cap:
                # Hand-built checkpoints may omit the cap; the case
                # sequences are a function of it, so a silent mismatch
                # would splice incompatible plans.  Warn loudly.
                warnings.warn(
                    f"checkpoint does not record its cap; resuming at "
                    f"cap={self.config.cap} without compatibility "
                    f"checking",
                    stacklevel=2,
                )
            elif resume.cap != self.config.cap:
                raise ValueError(
                    f"checkpoint was taken at cap={resume.cap}, cannot "
                    f"resume at cap={self.config.cap}"
                )
            if resume.variants is not None and set(resume.variants) != set(
                keys
            ):
                raise ValueError(
                    f"checkpoint was taken for variants "
                    f"{sorted(resume.variants)}, cannot resume with "
                    f"{sorted(keys)}"
                )
            mine = checkpoint_plan(self.config)
            if resume.plan != mine and not (
                resume.plan is None and mine is not None
            ):
                # The sequence plan is a function of these parameters
                # exactly as the case plan is of the cap; a mismatch
                # would splice incompatible plans.
                raise ValueError(
                    f"checkpoint records campaign plan {resume.plan}, "
                    f"cannot resume with {mine}"
                )
            if resume.plan is None and mine is not None:
                # Hand-built checkpoints may omit the plan block; as
                # with a missing cap, warn rather than refuse.
                warnings.warn(
                    "checkpoint does not record its campaign plan; "
                    "resuming in sequence mode without compatibility "
                    "checking",
                    stacklevel=2,
                )
                resume.plan = mine
            checkpoint = resume
        else:
            checkpoint = CampaignCheckpoint(
                ResultSet(),
                cap=self.config.cap,
                variants=keys,
                plan=checkpoint_plan(self.config),
            )
        plan_slice = None
        if self._shard is not None:
            # The slice's checkpoints carry their shard block (merge
            # validates seams from it) and the machine boots from the
            # exact serial wear at the slice's first plan position --
            # unless a resumed slice already recorded fresher mid-slice
            # wear, which supersedes the base.
            checkpoint.shard = dict(self._shard)
            plan_slice = (self._shard["start"], self._shard["stop"])
            base_wear = self._shard.get("base_wear")
            if base_wear is not None and keys[0] not in checkpoint.machine_wear:
                checkpoint.machine_wear[keys[0]] = dict(base_wear)
        results = checkpoint.results
        if recorder is not None:
            recorder.emit(
                obs_events.CampaignStarted(tuple(keys), self.config.cap)
            )
        for personality in self.variants:
            if self.config.mode == "sequence":
                from repro.core.sequences import run_variant_sequences

                run_variant_sequences(
                    personality,
                    self.sequence_plans(personality),
                    self.generator,
                    self.config,
                    results,
                    progress,
                    checkpoint,
                    checkpoint_path,
                    checkpoint_every,
                    quarantine=quarantine,
                    heartbeat=heartbeat,
                    recorder=recorder,
                    plan_slice=plan_slice,
                )
                continue
            run_variant(
                personality,
                self.muts_for(personality),
                self.generator,
                self.config,
                results,
                progress,
                checkpoint,
                checkpoint_path,
                checkpoint_every,
                quarantine=quarantine,
                heartbeat=heartbeat,
                recorder=recorder,
                plan_slice=plan_slice,
            )
        checkpoint.complete = True
        #: The final checkpoint of the last run (cursors + machine wear
        #: included); the parallel runner merges these across workers.
        self.last_checkpoint = checkpoint
        if checkpoint_path is not None:
            save_checkpoint(checkpoint, checkpoint_path)
            if recorder is not None:
                recorder.emit(
                    obs_events.CheckpointWritten(
                        "campaign", str(checkpoint_path), len(results)
                    )
                )
        if recorder is not None:
            recorder.emit(obs_events.CampaignFinished(results.total_cases()))
        return results


# ----------------------------------------------------------------------
# The per-variant campaign loop
# ----------------------------------------------------------------------


def run_variant(
    personality: Personality,
    muts: Sequence[MuT],
    generator: CaseGenerator,
    config: CampaignConfig,
    results: ResultSet,
    progress: ProgressFn | None,
    checkpoint: CampaignCheckpoint,
    checkpoint_path: str | pathlib.Path | None,
    checkpoint_every: int,
    quarantine: dict[str, str] | None = None,
    heartbeat: HeartbeatFn | None = None,
    recorder: Recorder | None = None,
    plan_slice: tuple[int, int] | None = None,
) -> None:
    """Run one variant's full MuT plan (the campaign inner loop).

    A standalone module-level function so the parallel runner
    (:mod:`repro.core.parallel`) can reference it from spawn-started
    worker processes; :meth:`Campaign.run` drives it directly for the
    serial path, so both paths classify identically by construction.

    The entry is restart-safe at an arbitrary plan cursor: MuTs already
    present in ``results`` (or already quarantined there) from an
    interrupted run's checkpoint are skipped, and machine wear restored
    from the checkpoint puts the simulated machine back exactly where
    the dead worker left it, so a supervisor can kill and relaunch this
    loop mid-variant without perturbing a single classification.  In
    ``machine_per_case`` mode there is no cross-MuT machine state, so no
    wear is captured into (or restored from) the checkpoint -- recording
    the throwaway per-case machine's wear would restore meaningless
    corruption onto a resumed run.

    ``quarantine`` maps ``"api:name"`` keys to reason strings: the
    supervisor's verdict that a MuT repeatedly killed or hung its
    worker.  Each is recorded as a harness-level QUARANTINED outcome
    (no case array, excluded from rates) and the plan moves on -- the
    paper's reboot-and-continue loop, minus the reboot.

    ``plan_slice=(start, stop)`` restricts execution to that half-open
    range of plan positions -- one intra-variant shard.  Positions (and
    so the per-MuT case sequences, which are seeded by MuT name) are
    identical to the serial plan's; the caller is responsible for
    booting the machine from the exact serial wear at ``start`` (via
    the checkpoint's ``machine_wear``), which makes the slice's
    classifications byte-identical to the same span of a serial run.
    The plan cursor still counts global positions, and lands on
    ``stop`` when the slice completes even if its tail was skipped, so
    merged slice chains reproduce the serial cursor.
    """
    quarantine = quarantine or {}
    start, stop = plan_slice if plan_slice is not None else (0, len(muts))
    machine = Machine(personality, watchdog_ticks=config.watchdog_ticks)
    wear = checkpoint.machine_wear.get(personality.key)
    if wear and not config.machine_per_case:
        machine.restore_wear(wear)
    executor = Executor(machine, generator)
    since_checkpoint = 0
    #: Lazy wear capture: the expensive machine snapshot
    #: (:meth:`Machine.wear_state`) is taken only when a checkpoint is
    #: actually about to be written (and once at end of variant), not
    #: after every MuT -- the machine state at capture time is exactly
    #: the state after the last completed MuT, so the captured image is
    #: byte-identical to the eager per-MuT capture it replaces.
    wear_dirty = False

    def capture_wear() -> None:
        nonlocal wear_dirty
        if wear_dirty:
            checkpoint.machine_wear[personality.key] = machine.wear_state()
            wear_dirty = False

    def emit(event: "obs_events.Event") -> None:
        if recorder is not None:
            recorder.emit(event)

    def save_and_tell(position: int) -> None:
        capture_wear()
        save_checkpoint(checkpoint, checkpoint_path)
        emit(
            obs_events.CheckpointWritten(
                personality.key, str(checkpoint_path), position
            )
        )

    emit(obs_events.VariantStarted(personality.key, len(muts)))
    for position in range(start, stop):
        mut = muts[position]
        if results.has(personality.key, mut.name, api=mut.api):
            continue  # already recorded by the interrupted run
        if results.is_quarantined(personality.key, mut.api, mut.name):
            continue  # quarantined by the interrupted run
        key = mut_key(mut)
        if key in quarantine:
            results.quarantine(
                personality.key, mut.api, mut.name, quarantine[key]
            )
            emit(
                obs_events.MutQuarantined(
                    personality.key, key, quarantine[key]
                )
            )
            checkpoint.cursors[personality.key] = position + 1
            since_checkpoint += 1
            if (
                checkpoint_path is not None
                and since_checkpoint >= checkpoint_every
            ):
                save_and_tell(position + 1)
                since_checkpoint = 0
            continue
        if progress is not None:
            progress(personality.key, mut.name, position, len(muts))
        result = results.new_result(
            personality.key, mut.name, mut.api, mut.group
        )
        result.planned_cases = generator.case_count(mut)
        result.capped = generator.is_capped(mut)
        per_case_machine = config.machine_per_case
        reclass_thrown = config.count_thrown_exceptions_as_abort
        for case in generator.cases(mut):
            if heartbeat is not None:
                heartbeat(personality.key, key, case.index)
            if per_case_machine:
                # Full isolation as a copy-on-write revert: observable
                # state identical to booting a fresh machine per case,
                # without rebuilding machine and executor objects.
                machine.revert()
            outcome = executor.run_case(mut, case)
            # Inline _apply_policies (one guarded branch beats a
            # function call on the per-case hot path).
            if (
                reclass_thrown
                and outcome.code is CaseCode.PASS_ERROR
                and outcome.detail.startswith("thrown ")
            ):
                outcome = _apply_policies(config, outcome)
            result.record(
                case.index,
                outcome.code,
                outcome.exceptional_input,
                outcome.detail,
                outcome.value_names,
                error_code=outcome.error_code,
            )
            if recorder is not None:
                # Hot path -- one event per test case: build the plain
                # record directly instead of routing through the
                # CaseExecuted dataclass (same wire shape, ~2x cheaper;
                # bench_obs.py pins the budget).
                recorder.record(
                    {
                        "kind": "case_executed",
                        "variant": personality.key,
                        "mut": key,
                        "case": case.index,
                        "code": int(outcome.code),
                        "exceptional": outcome.exceptional_input,
                        "sim_ticks": machine.clock.ticks,
                    }
                )
            if outcome.code is CaseCode.CATASTROPHIC:
                # The crash interrupts testing of this function: the
                # case set is incomplete and the machine reboots.
                if _INTERFERENCE_MARKER in outcome.detail:
                    result.interference_crash = True
                machine.reboot()
                break
        if recorder is not None:
            # Guarded so the histogram is only computed when there is a
            # sink to receive it.
            recorder.emit(
                obs_events.MutFinished(
                    personality.key,
                    key,
                    mut.group,
                    len(result.codes),
                    _outcome_histogram(result.codes),
                    result.catastrophic,
                    result.interference_crash,
                    machine.clock.ticks,
                )
            )
        checkpoint.cursors[personality.key] = position + 1
        wear_dirty = not config.machine_per_case
        since_checkpoint += 1
        if (
            checkpoint_path is not None
            and since_checkpoint >= checkpoint_every
        ):
            save_and_tell(position + 1)
            since_checkpoint = 0
    if plan_slice is not None:
        # A slice that ends on skipped (already-recorded) positions
        # still completed its span: the cursor must land on ``stop`` so
        # the merged chain matches the serial cursor byte for byte.
        checkpoint.cursors[personality.key] = max(
            checkpoint.cursors.get(personality.key, 0), stop
        )
    capture_wear()
    emit(
        obs_events.VariantFinished(
            personality.key,
            results.total_cases(personality.key),
            machine.clock.ticks,
        )
    )
    if checkpoint_path is not None:
        save_and_tell(stop)


_CODE_NAMES = {code.value: code.name for code in CaseCode}


def _outcome_histogram(codes: bytearray) -> dict[str, int]:
    """Per-MuT outcome counts keyed by CaseCode name, keys sorted (the
    deterministic form that rides on ``mut_finished`` events)."""
    counts: dict[str, int] = {}
    for code in codes:
        name = _CODE_NAMES[code]
        counts[name] = counts.get(name, 0) + 1
    return {name: counts[name] for name in sorted(counts)}


def _apply_policies(config: CampaignConfig, outcome: CaseOutcome) -> CaseOutcome:
    if (
        config.count_thrown_exceptions_as_abort
        and outcome.code is CaseCode.PASS_ERROR
        and outcome.detail.startswith("thrown ")
    ):
        return CaseOutcome(
            CaseCode.ABORT,
            outcome.detail,
            outcome.exceptional_input,
            outcome.value_names,
            error_code=outcome.error_code,
        )
    return outcome


# ----------------------------------------------------------------------
# Single-case replay
# ----------------------------------------------------------------------


def run_single_case(
    personality: Personality,
    mut_name: str,
    value_names: Sequence[str],
    registry: MuTRegistry | None = None,
    types: TypeRegistry | None = None,
    config: CampaignConfig | None = None,
) -> CaseOutcome:
    """Replay one test case on a freshly booted machine -- the analogue
    of the paper's "brief single-test program representing a single test
    case" (e.g. Listing 1).  Interference (``*``) crashes do not
    reproduce here; immediate Catastrophic crashes do.

    Pass the campaign's :class:`CampaignConfig` to replay under the same
    knobs -- in particular ``watchdog_ticks``, without which a case the
    campaign classified as a hang could replay differently under the
    default watchdog budget.
    """
    registry = registry or default_registry()
    types = types or default_types()
    config = config or CampaignConfig()
    mut = registry.find(mut_name) if ":" not in mut_name else registry.get(
        *mut_name.split(":", 1)
    )
    if not mut.available_on(personality):
        raise ValueError(f"{mut_name} is not available on {personality.name}")
    machine = Machine(personality, watchdog_ticks=config.watchdog_ticks)
    generator = CaseGenerator(types, cap=config.cap)
    case = TestCase(mut.name, 0, tuple(value_names))
    return Executor(machine, generator).run_case(mut, case)
