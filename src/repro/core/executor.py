"""Execution of individual test cases in isolated simulated processes.

"A single Ballista test case involves selecting a set of test values,
executing constructors associated with those test values to initialize
essential system state, executing a call to the MuT with the selected
test values in its parameter list, measuring whether the MuT behaves in
a robust manner in that situation, and cleaning up any lingering system
state in preparation for the next test." (paper, section 2)

Isolation granularity matters: every test case gets a **fresh process**,
but the **machine persists** across the cases of a campaign (just as the
paper's physical test machines did).  That is what lets shared-state
corruption accumulate and reproduce the paper's ``*`` crashes that
"could not be reproduced outside of the test harness".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import classify_exception
from repro.core.context import TestContext
from repro.core.crash_scale import CaseCode
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuT
from repro.sim.errors import MachineCrashed, SimFault, SystemCrash
from repro.sim.filesystem import FileSystemError
from repro.sim.machine import Machine


@dataclass(frozen=True, slots=True)
class CaseOutcome:
    """The classified result of one executed test case."""

    code: CaseCode
    detail: str
    exceptional_input: bool
    value_names: tuple[str, ...]
    #: errno / GetLastError value reported by the call (0 when none) --
    #: the raw material for Hindering-failure estimation.
    error_code: int = 0


class Executor:
    """Runs test cases for one OS variant on one simulated machine."""

    def __init__(self, machine: Machine, generator: CaseGenerator) -> None:
        self.machine = machine
        self.generator = generator
        #: The machine's API family never changes over the executor's
        #: life; resolved once so classification does not chase
        #: ``machine.personality.api`` on every call under test.
        self._api_family = machine.personality.api

    def run_case(self, mut: MuT, case: TestCase) -> CaseOutcome:
        """Execute one test case in a fresh process and classify it.

        Raises :class:`MachineCrashed` if called while the machine is
        down (the campaign must reboot first).
        """
        machine = self.machine
        machine.check_alive()
        process = machine.spawn_process()
        ctx = TestContext(machine, process)
        values, exceptional = self.generator.resolve_case(mut, case)

        # -- constructors ------------------------------------------------
        args: list = []
        try:
            for value in values:
                args.append(value.construct(ctx))
        except SystemCrash as exc:
            return CaseOutcome(
                CaseCode.CATASTROPHIC, str(exc), exceptional, case.value_names
            )
        except (SimFault, FileSystemError) as exc:
            self._teardown(ctx, values, args)
            return CaseOutcome(
                CaseCode.SETUP_SKIP,
                f"constructor failed: {exc}",
                exceptional,
                case.value_names,
            )

        # -- the call under test ------------------------------------------
        outcome = self._call_under_test(
            ctx, mut, args, exceptional, case.value_names
        )

        # -- destructors ---------------------------------------------------
        if not self.machine.crashed:
            self._teardown(ctx, values, args)
        return outcome

    def run_step(
        self,
        ctx: TestContext,
        mut: MuT,
        case: TestCase,
        inject_fault: bool = False,
    ) -> CaseOutcome:
        """Execute one *sequence step* inside a persistent context.

        The sequence-campaign twin of :meth:`run_case`: constructors and
        the call run in the caller's process (``ctx.process``), so the
        handles, streams, and files a step creates are still there for
        the next step -- and nothing is torn down here.  The sequence
        runner owns the process lifetime and terminates it once at the
        end of the sequence.

        With ``inject_fault`` the machine's armed fault family may fire
        inside the call window (never during constructors), and a call
        that *reports failure* under injection while leaving residue in
        durable machine wear is reclassified
        :attr:`~repro.core.crash_scale.CaseCode.FAULT_ATOMICITY` -- it
        broke the failure-atomic expectation and dirtied the machine the
        next step runs on.
        """
        self.machine.check_alive()
        values, exceptional = self.generator.resolve_case(mut, case)

        args: list = []
        try:
            for value in values:
                args.append(value.construct(ctx))
        except SystemCrash as exc:
            return CaseOutcome(
                CaseCode.CATASTROPHIC, str(exc), exceptional, case.value_names
            )
        except (SimFault, FileSystemError) as exc:
            return CaseOutcome(
                CaseCode.SETUP_SKIP,
                f"constructor failed: {exc}",
                exceptional,
                case.value_names,
            )

        faults = self.machine.faults
        residue_before = self.machine.wear_residue() if inject_fault else ""
        fired_before = faults.fired
        outcome = self._call_under_test(
            ctx,
            mut,
            args,
            exceptional,
            case.value_names,
            inject_fault=inject_fault,
        )
        if (
            inject_fault
            and faults.fired > fired_before
            and outcome.code in (CaseCode.PASS_ERROR, CaseCode.ABORT)
            and not self.machine.crashed
            and self.machine.wear_residue() != residue_before
        ):
            detail = (
                f"failed call left wear residue under "
                f"{faults.family} exhaustion"
            )
            if outcome.detail:
                detail += f" [{outcome.detail}]"
            outcome = CaseOutcome(
                CaseCode.FAULT_ATOMICITY,
                detail,
                exceptional,
                case.value_names,
                error_code=outcome.error_code,
            )
        return outcome

    def _call_under_test(
        self,
        ctx: TestContext,
        mut: MuT,
        args: list,
        exceptional: bool,
        value_names: tuple[str, ...],
        inject_fault: bool = False,
    ) -> CaseOutcome:
        """Invoke the MuT and classify the result (shared by the
        per-case and sequence-step paths)."""
        ctx.reset_error_state()
        # Every call costs one tick of virtual time, so the per-step
        # sim-tick stamps on sequence outcomes are strictly ordered even
        # when no call in the sequence sleeps or waits.
        self.machine.clock.begin_call_tick(mut.name)
        api_family = self._api_family
        try:
            if inject_fault:
                with self.machine.faults.window():
                    mut.call(ctx, tuple(args))
            else:
                mut.call(ctx, tuple(args))
        except SimFault as exc:
            code, detail = classify_exception(exc, api_family)
            return CaseOutcome(code, detail, exceptional, value_names)
        code = (
            CaseCode.PASS_ERROR
            if ctx.error_reported()
            else CaseCode.PASS_NO_ERROR
        )
        reported = ctx.process.errno or ctx.process.last_error
        return CaseOutcome(
            code, "", exceptional, value_names, error_code=reported
        )

    def _teardown(self, ctx: TestContext, values: list, args: list) -> None:
        """Run per-value cleanups and release the process, swallowing
        faults (a broken destructor must not poison classification --
        but lingering state is exactly what the shared machine keeps)."""
        for value, arg in zip(values, args):
            if value.cleanup is not None:
                try:
                    value.cleanup(ctx, arg)
                except (SimFault, MachineCrashed):
                    pass
        ctx.run_cleanups()
        try:
            ctx.process.terminate()
        except (SimFault, MachineCrashed):
            pass
