"""Ballista's data-type-based test value system.

Each parameter position of a Module under Test names a
:class:`ParamType`.  A type owns a pool of :class:`TestValue` definitions
-- exceptional *and* valid cases, so that robust handling of one
parameter cannot mask broken handling of another -- and may inherit the
pool of a parent type (Ballista's type inheritance: ``cstring`` inherits
all the raw ``buffer`` pointers and adds string-shaped cases on top).

A :class:`TestValue` is *lazy*: its ``construct`` callable receives the
per-test :class:`~repro.core.context.TestContext` and builds the concrete
parameter value inside the fresh simulated process (allocating buffers,
creating files, opening handles...).  ``cleanup`` releases any state that
must not leak into the next test case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import TestContext

Constructor = Callable[["TestContext"], Any]
Cleanup = Callable[["TestContext", Any], None]


@dataclass(frozen=True, slots=True)
class TestValue:
    """One named test value in a type's pool.

    :param name: stable identifier, e.g. ``"PTR_NULL"``; test cases are
        reported as tuples of these names so any single case can be
        replayed in isolation.
    :param construct: builds the concrete value inside the test process.
    :param exceptional: ground-truth annotation -- is this value outside
        the parameter's legitimate domain?  Used by the validation suite
        and the Silent-failure ground truth, never by the classifier.
    :param cleanup: optional teardown run after the call under test.
    """

    name: str
    construct: Constructor
    exceptional: bool = False
    cleanup: Cleanup | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "!" if self.exceptional else ""
        return f"<TestValue {self.name}{flag}>"


class ParamType:
    """A named parameter type owning a pool of test values.

    :param name: type name used in MuT signatures (``"cstring"``).
    :param parent: optional base type whose values are inherited.
    """

    #: Class-wide pool generation: bumped by every :meth:`add` on any
    #: type.  Memoized pool views are tagged with the generation current
    #: when they were built, so a single integer compare validates them
    #: on the hot lookup paths.  Any pool change anywhere conservatively
    #: invalidates every cache -- pools only ever grow during registry
    #: install, so rebuilds are a startup cost, not a steady-state one.
    _generation = 0

    def __init__(self, name: str, parent: "ParamType | None" = None) -> None:
        self.name = name
        self.parent = parent
        self._own: list[TestValue] = []
        self._all_cache: tuple[int, tuple[TestValue, ...]] | None = None
        self._find_cache: tuple[int, dict[str, TestValue]] | None = None

    def add(
        self,
        name: str,
        construct: Constructor,
        exceptional: bool = False,
        cleanup: Cleanup | None = None,
    ) -> TestValue:
        """Define a value in this type's own pool."""
        value = TestValue(name, construct, exceptional, cleanup)
        self._own.append(value)
        ParamType._generation += 1
        return value

    def value(self, exceptional: bool = False) -> Callable[[Constructor], Constructor]:
        """Decorator form of :meth:`add` (value name = function name)."""

        def register(fn: Constructor) -> Constructor:
            self.add(fn.__name__.upper(), fn, exceptional)
            return fn

        return register

    @property
    def own_values(self) -> tuple[TestValue, ...]:
        return tuple(self._own)

    def all_values(self) -> tuple[TestValue, ...]:
        """Own values plus everything inherited, parents first (so the
        combination order is stable and identical across variants).
        Memoized: the tuple is rebuilt only after a pool change."""
        cached = self._all_cache
        if cached is None or cached[0] != ParamType._generation:
            inherited = self.parent.all_values() if self.parent else ()
            cached = (ParamType._generation, inherited + tuple(self._own))
            self._all_cache = cached
        return cached[1]

    def find_map(self) -> dict[str, TestValue]:
        """The name -> value lookup table for the current pool state
        (first match wins, matching the scan order of
        :meth:`all_values`).  Callers must treat it as read-only."""
        cached = self._find_cache
        if cached is None or cached[0] != ParamType._generation:
            index: dict[str, TestValue] = {}
            for value in self.all_values():
                index.setdefault(value.name, value)
            cached = (ParamType._generation, index)
            self._find_cache = cached
        return cached[1]

    def find(self, value_name: str) -> TestValue:
        """Look a value up by name; memoized as a dict per pool state."""
        try:
            return self.find_map()[value_name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no test value {value_name!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ParamType {self.name} ({len(self.all_values())} values)>"


class TypeRegistry:
    """All parameter types known to the harness."""

    def __init__(self) -> None:
        self._types: dict[str, ParamType] = {}

    def new_type(self, name: str, parent: str | None = None) -> ParamType:
        if name in self._types:
            raise ValueError(f"type {name!r} already registered")
        parent_type = self._types[parent] if parent else None
        param_type = ParamType(name, parent_type)
        self._types[name] = param_type
        return param_type

    def get(self, name: str) -> ParamType:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError(f"unknown parameter type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self) -> list[str]:
        return sorted(self._types)

    def total_values(self) -> int:
        """Distinct test values across all types (the paper quotes 3 430
        for POSIX and 1 073 for Windows at its pool sizes)."""
        return sum(len(t.own_values) for t in self._types.values())


_default_types: TypeRegistry | None = None


def default_types() -> TypeRegistry:
    """The process-wide registry with all builtin pools loaded."""
    # Process-local lazy singleton: a spawned worker rebuilds the same
    # pools deterministically, so parent/worker divergence cannot
    # happen.  # lint: allow(concurrency-contract)
    global _default_types
    if _default_types is None:
        from repro.core import values

        _default_types = TypeRegistry()
        values.install(_default_types)
    return _default_types
