"""Wear atlas: memoized seam wear for intra-variant sharding.

A sharded campaign may only *execute* a slice once it knows the exact
machine wear the serial campaign would show at the slice's first plan
position.  Cold, that wear is only learned when the predecessor slice
finishes, so a variant's slices run as a pipeline and intra-variant
parallelism is nil.  But the wear trajectory is a deterministic
function of (variant plan, cap, the simulation itself) -- so a
completed run can *memoize* the wear it observed at every seam and hand
the next run all of its slice bases up front, unlocking the full
work-stealing pool on re-runs (benchmarks, CI, two-seed fidelity
sweeps, resumed paper-scale campaigns).

A stale atlas -- the code or plan changed underneath it -- can never
corrupt results: every speculative slice records the base it actually
used, and the runner re-validates each seam against the predecessor's
real end wear when it settles, replaying the slice from the true
frontier on any mismatch.  The atlas is purely an accelerator; the
byte-identity gate never rests on it.

Seams are keyed by plan *position*, not slice index, so an atlas built
at one ``--shards`` grid still serves any other grid wherever the
boundaries coincide.  Each variant's seam table is fingerprinted by its
plan (the ordered ``api:name`` keys) and the cap; a mismatch silently
ignores that variant's seams rather than erroring -- worst case is a
cold, chained run.
"""

from __future__ import annotations

import json
import pathlib
import warnings
import zlib
from dataclasses import dataclass, field

from repro.core.results_io import _atomic_write

ATLAS_FORMAT = "ballista-wear-atlas"
ATLAS_VERSION = 1


def plan_fingerprint(plan: list, cap: int) -> str:
    """Stable fingerprint of one variant's plan: the ordered
    ``(api, name)`` identities plus the case cap (case sequences are a
    function of the cap, so seam wear is too)."""
    text = ",".join(f"{api}:{name}" for api, name in plan) + f"@{cap}"
    return f"crc32:{zlib.crc32(text.encode('utf-8')):08x}"


@dataclass
class WearAtlas:
    """Per-variant seam wear tables keyed by plan position.

    :param plans: variant key -> :func:`plan_fingerprint` of the plan
        the seams were recorded under.
    :param seams: variant key -> {plan position -> wear image}.  The
        wear at position ``p`` is the machine state after executing
        plan positions ``[0, p)`` -- exactly what a slice starting at
        ``p`` must boot from.
    """

    plans: dict[str, str] = field(default_factory=dict)
    seams: dict[str, dict[int, dict]] = field(default_factory=dict)

    def seam(self, variant: str, plan: list, cap: int, position: int):
        """The memoized wear at ``position``, or ``None`` when unknown
        or recorded under a different plan/cap."""
        if self.plans.get(variant) != plan_fingerprint(plan, cap):
            return None
        return self.seams.get(variant, {}).get(position)

    def record(
        self, variant: str, plan: list, cap: int, position: int, wear: dict
    ) -> None:
        """Memoize one seam; a plan-fingerprint change drops the
        variant's stale seams first."""
        fingerprint = plan_fingerprint(plan, cap)
        if self.plans.get(variant) != fingerprint:
            self.plans[variant] = fingerprint
            self.seams[variant] = {}
        self.seams.setdefault(variant, {})[position] = wear


def atlas_to_dict(atlas: WearAtlas) -> dict:
    return {
        "format": ATLAS_FORMAT,
        "version": ATLAS_VERSION,
        "plans": dict(atlas.plans),
        "seams": {
            variant: {str(pos): wear for pos, wear in sorted(table.items())}
            for variant, table in atlas.seams.items()
        },
    }


def atlas_from_dict(document: dict) -> WearAtlas | None:
    if (
        document.get("format") != ATLAS_FORMAT
        or document.get("version") != ATLAS_VERSION
    ):
        return None
    try:
        return WearAtlas(
            plans={
                str(k): str(v) for k, v in document.get("plans", {}).items()
            },
            seams={
                str(variant): {
                    int(pos): wear for pos, wear in table.items()
                }
                for variant, table in document.get("seams", {}).items()
            },
        )
    except (TypeError, ValueError, AttributeError):
        return None


def load_atlas(path: str | pathlib.Path) -> WearAtlas:
    """Load an atlas, tolerating absence and damage: sharding without
    seam predictions is merely cold, never wrong, so a missing or
    malformed atlas degrades to an empty one (with a warning when the
    file exists but does not parse)."""
    path = pathlib.Path(path)
    if not path.exists():
        return WearAtlas()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        warnings.warn(
            f"wear atlas {path} is unreadable ({exc}); starting cold",
            stacklevel=2,
        )
        return WearAtlas()
    atlas = atlas_from_dict(document) if isinstance(document, dict) else None
    if atlas is None:
        warnings.warn(
            f"wear atlas {path} is not a recognisable atlas document; "
            f"starting cold",
            stacklevel=2,
        )
        return WearAtlas()
    return atlas


def save_atlas(atlas: WearAtlas, path: str | pathlib.Path) -> None:
    """Atomically persist the atlas (temp + rename, the checkpoint
    discipline)."""
    _atomic_write(
        path, json.dumps(atlas_to_dict(atlas), separators=(",", ":"))
    )
