"""Modules under Test (MuTs) and their registry.

A :class:`MuT` names one function or system call, the functional group it
reports under, and its typed parameter signature.  The registry is
populated by the API packages at import time
(:func:`default_registry` imports them), mirroring how the paper selected
237 Win32 calls and 183..185 POSIX/Linux calls.

Availability rules reproduce the paper's platform matrix:

* ``api="win32"`` MuTs run on Win32 personalities only, ``api="posix"``
  on POSIX personalities only.
* ``api="libc"`` MuTs (the 94 shared C functions) run everywhere, under
  the variant's C-runtime flavour, with *identical* test cases.
* per-variant gaps come from ``Personality.missing_functions`` (the 10
  calls absent from Windows 95) and the explicit ``platforms`` set
  (the Windows CE subset, and CE's UNICODE twins).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import TestContext
    from repro.sim.personality import Personality

CallImpl = Callable[["TestContext", tuple], Any]


@dataclass(frozen=True)
class MuT:
    """One Module under Test.

    :param name: API-level function name (``"GetThreadContext"``).
    :param api: ``"win32"``, ``"posix"`` or ``"libc"``.
    :param group: functional group used for normalised comparison
        (one of the twelve groups in :mod:`repro.analysis.groups`).
    :param param_types: parameter type names, in call order.
    :param call: invokes the implementation: ``call(ctx, args)``.
    :param platforms: restrict to these variant keys (``None`` = every
        variant whose API matches).
    :param exclude_platforms: drop these variant keys (used for the
        Windows CE subset).
    :param charset: ``"unicode"`` for CE wide-character twins, else
        ``"ascii"``.
    """

    name: str
    api: str
    group: str
    param_types: tuple[str, ...]
    call: CallImpl
    platforms: frozenset[str] | None = None
    exclude_platforms: frozenset[str] = field(default_factory=frozenset)
    charset: str = "ascii"

    def available_on(self, personality: "Personality") -> bool:
        if self.api != "libc" and self.api != personality.api:
            return False
        if self.platforms is not None and personality.key not in self.platforms:
            return False
        if personality.key in self.exclude_platforms:
            return False
        return personality.supports(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sig = ", ".join(self.param_types)
        return f"<MuT {self.api}:{self.name}({sig}) [{self.group}]>"


def facade_call(api: str, method: str) -> CallImpl:
    """Standard implementation adapter: look the method up on the
    api's facade and apply the constructed arguments."""

    def call(ctx: "TestContext", args: tuple) -> Any:
        return getattr(ctx.facade(api), method)(*args)

    return call


class MuTRegistry:
    """All Modules under Test known to the harness."""

    def __init__(self) -> None:
        self._muts: dict[tuple[str, str], MuT] = {}

    def register(self, mut: MuT) -> MuT:
        key = (mut.api, mut.name)
        if key in self._muts:
            raise ValueError(f"MuT {mut.api}:{mut.name} already registered")
        self._muts[key] = mut
        return mut

    def add(
        self,
        name: str,
        api: str,
        group: str,
        param_types: list[str] | tuple[str, ...],
        method: str | None = None,
        call: CallImpl | None = None,
        **kwargs: Any,
    ) -> MuT:
        """Convenience registration; by default the implementation is the
        facade method with the same name."""
        if call is None:
            call = facade_call(api, method or name)
        return self.register(
            MuT(name, api, group, tuple(param_types), call, **kwargs)
        )

    def get(self, api: str, name: str) -> MuT:
        try:
            return self._muts[(api, name)]
        except KeyError:
            raise KeyError(f"unknown MuT {api}:{name}") from None

    def find(self, name: str) -> MuT:
        """Look a MuT up by bare name across APIs (unique names only)."""
        hits = [m for m in self._muts.values() if m.name == name]
        if not hits:
            raise KeyError(f"unknown MuT {name!r}")
        if len(hits) > 1:
            apis = ", ".join(m.api for m in hits)
            raise KeyError(f"MuT name {name!r} is ambiguous across APIs: {apis}")
        return hits[0]

    def all(self) -> list[MuT]:
        return [self._muts[k] for k in sorted(self._muts)]

    def for_variant(self, personality: "Personality") -> list[MuT]:
        """Every MuT tested on the given OS variant, in stable order."""
        return [m for m in self.all() if m.available_on(personality)]

    def by_api(self, api: str) -> list[MuT]:
        return [m for m in self.all() if m.api == api]

    def __len__(self) -> int:
        return len(self._muts)


_default_registry: MuTRegistry | None = None


def default_registry() -> MuTRegistry:
    """The process-wide registry with every API package's MuTs loaded."""
    # Process-local lazy singleton: a spawned worker re-derives the
    # identical registry deterministically, so parent/worker divergence
    # cannot happen.  # lint: allow(concurrency-contract)
    global _default_registry
    if _default_registry is None:
        registry = MuTRegistry()
        from repro.libc import register as register_libc
        from repro.posix import register as register_posix
        from repro.win32 import register as register_win32

        register_libc(registry)
        register_win32(registry)
        register_posix(registry)
        _default_registry = registry
    return _default_registry
