"""Per-test-case execution context.

A :class:`TestContext` is created for every test case around a fresh
simulated process.  Test-value constructors use it to build concrete
parameter values (buffers, file names, open handles, ``FILE*`` streams);
MuT implementations use it to reach the API facade they belong to
(``ctx.crt`` for the C library, ``ctx.win32`` / ``ctx.posix`` for system
calls).  A deferred-cleanup stack mirrors Ballista's per-test
constructor/destructor discipline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.errors import SimFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.libc.runtime import CRuntime
    from repro.posix.system import PosixSystem
    from repro.sim.machine import Machine
    from repro.sim.process import Process
    from repro.win32.system import Win32System


class TestContext:
    """Everything one test case may touch."""

    __slots__ = (
        "machine",
        "process",
        "personality",
        "mem",
        "_crt",
        "_win32",
        "_posix",
        "_cleanups",
        "scratch",
    )

    def __init__(self, machine: "Machine", process: "Process") -> None:
        self.machine = machine
        self.process = process
        self.personality = machine.personality
        self.mem = process.memory
        self._crt: "CRuntime | None" = None
        self._win32: "Win32System | None" = None
        self._posix: "PosixSystem | None" = None
        self._cleanups: list[Callable[[], None]] = []
        #: Scratch storage for constructors that need to pass state to
        #: their cleanups (keyed by value name).
        self.scratch: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # API facades (lazy so that core does not import the API packages)
    # ------------------------------------------------------------------

    @property
    def crt(self) -> "CRuntime":
        """The C runtime for this process, in the personality's flavour."""
        if self._crt is None:
            from repro.libc.runtime import CRuntime

            self._crt = CRuntime(self.process)
        return self._crt

    @property
    def win32(self) -> "Win32System":
        if self._win32 is None:
            from repro.win32.system import Win32System

            self._win32 = Win32System(self.process)
        return self._win32

    @property
    def posix(self) -> "PosixSystem":
        if self._posix is None:
            from repro.posix.system import PosixSystem

            self._posix = PosixSystem(self.process)
        return self._posix

    def facade(self, api: str) -> Any:
        """Resolve the facade for a MuT's ``api`` field."""
        if api == "libc":
            return self.crt
        if api == "win32":
            return self.win32
        if api == "posix":
            return self.posix
        raise ValueError(f"unknown api {api!r}")

    # ------------------------------------------------------------------
    # Error-reporting observation
    # ------------------------------------------------------------------

    def reset_error_state(self) -> None:
        """Clear error indications before invoking the call under test.
        (Unrolled: this runs once per test case, and most cases have at
        most one live facade.)"""
        process = self.process
        process.errno = 0
        process.last_error = 0
        f = self._crt
        if f is not None:
            f.error_reported = False
        f = self._win32
        if f is not None:
            f.error_reported = False
        f = self._posix
        if f is not None:
            f.error_reported = False

    def error_reported(self) -> bool:
        """Did the call under test report an error through one of the
        API error channels (errno, GetLastError, error return path)?

        Only the facade-level flags count: they are set by the
        implementations' error paths, not by value-transporting calls
        like ``SetLastError`` itself.
        """
        f = self._crt
        if f is not None and f.error_reported:
            return True
        f = self._win32
        if f is not None and f.error_reported:
            return True
        f = self._posix
        return f is not None and f.error_reported

    # ------------------------------------------------------------------
    # Constructor helpers
    # ------------------------------------------------------------------

    def defer(self, fn: Callable[[], None]) -> None:
        """Register teardown to run after the call under test."""
        self._cleanups.append(fn)

    def run_cleanups(self) -> list[Exception]:
        """Run deferred teardowns (LIFO); collect rather than raise
        non-crash errors so one bad destructor cannot poison the others."""
        errors: list[Exception] = []
        while self._cleanups:
            fn = self._cleanups.pop()
            try:
                fn()
            except SimFault as exc:
                errors.append(exc)
        return errors

    # -- memory ---------------------------------------------------------

    def buffer(self, size: int = 64, fill: bytes = b"") -> int:
        """A fresh writable buffer; returns its address."""
        return self.mem.alloc(fill.ljust(size, b"\x00"), tag="testbuf")

    def cstring(
        self, text: bytes, terminated: bool = True, round_to: int = 4
    ) -> int:
        return self.mem.alloc_cstring(
            text, terminated=terminated, round_to=round_to
        )

    def freed_buffer(self, size: int = 64) -> int:
        """A dangling pointer: allocate then unmap."""
        region = self.mem.map(size, tag="freed")
        self.mem.unmap(region)
        return region.start

    def readonly_buffer(self, data: bytes = b"readonly\x00") -> int:
        from repro.sim.memory import Protection

        return self.mem.alloc(data, protection=Protection.READ, tag="ro")

    # -- filesystem ------------------------------------------------------

    def existing_file(self, content: bytes = b"ballista file contents\n") -> str:
        """Create (and register cleanup for) a real file; returns path."""
        name = f"/tmp/bt_{self.process.pid}_{len(self._cleanups)}.dat"
        self.machine.fs.create_file(name, content)

        def remove() -> None:
            try:
                self.machine.fs.unlink(name)
            except Exception:
                pass

        self.defer(remove)
        return name

    def missing_path(self) -> str:
        return f"/tmp/bt_missing_{self.process.pid}.dat"
