"""Classification of a single call's behaviour onto the CRASH scale.

The executor invokes the MuT inside a catch-everything boundary that
mirrors the paper's instrumentation:

* POSIX personalities: signals (SIGSEGV, SIGBUS, SIGFPE, SIGABRT)
  indicate Abort failures.
* Win32 personalities: the harness replaces the top-level exception
  filter, recording unrecoverable structured exceptions as Abort
  failures, while *thrown* integer/string exceptions are -- "to be more
  than fair" -- assumed to be valid, recoverable error reports.
* A watchdog turns never-returning calls into Restart failures.
* A kernel-mode fault or shared-state corruption limit takes down the
  simulated machine: Catastrophic.
"""

from __future__ import annotations

from repro.core.crash_scale import CaseCode
from repro.sim.errors import (
    HardwareFault,
    ResourceExhausted,
    SimFault,
    SoftwareAbort,
    SystemCrash,
    TaskHang,
    ThrownException,
)


def classify_exception(exc: SimFault, api_family: str) -> tuple[CaseCode, str]:
    """Map a fault raised during the call under test to a case code and
    a human-readable detail (signal or exception name).

    :param api_family: ``"win32"`` or ``"posix"`` -- which naming scheme
        the detail string should use.
    """
    if isinstance(exc, SystemCrash):
        return CaseCode.CATASTROPHIC, f"system crash: {exc.reason}"
    if isinstance(exc, TaskHang):
        return CaseCode.RESTART, "task hang (watchdog)"
    if isinstance(exc, ThrownException):
        if exc.recoverable:
            # Treated as a legitimate error report, not a failure.
            return CaseCode.PASS_ERROR, f"thrown {exc.value!r}"
        return CaseCode.ABORT, f"unrecoverable exception {exc.value!r}"
    if isinstance(exc, ResourceExhausted):
        # An injected exhaustion fault escaped the API boundary: the
        # implementation did not convert "machine out of X" into an
        # error report, so the task terminated abnormally.
        return (
            CaseCode.ABORT,
            f"unhandled {exc.family} exhaustion ({exc.resource})",
        )
    if isinstance(exc, (HardwareFault, SoftwareAbort)):
        detail = (
            exc.win32_exception if api_family == "win32" else exc.posix_signal
        )
        return CaseCode.ABORT, detail
    # Unknown SimFault subclasses are still abnormal terminations.
    return CaseCode.ABORT, type(exc).__name__
