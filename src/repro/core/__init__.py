"""The Ballista robustness-testing harness (the paper's contribution).

The harness is a combination of software-testing and fault-injection
techniques: exceptional parameter values, organised by *data type* rather
than by function, are injected through an API and the response of each
Module under Test (MuT) is classified on the **CRASH** severity scale.

Pipeline::

    TypeRegistry  -- parameter types + test-value pools (with inheritance)
        |
    MuTRegistry   -- functions/system calls to test, with typed signatures
        |
    CaseGenerator -- exhaustive or 5000-capped pseudorandom combinations
        |                (identical order across OS variants)
    Executor      -- one fresh simulated process per test case on a
        |                persistent simulated machine
    Classifier    -- CRASH scale: Catastrophic / Restart / Abort /
        |                Silent / Hindering / pass
    ResultSet     -- per-case codes, per-MuT rates, campaign aggregates
"""

from repro.core.campaign import Campaign, CampaignConfig, run_single_case
from repro.core.crash_scale import CaseCode, Severity
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuT, MuTRegistry, default_registry
from repro.core.parallel import ParallelCampaign, default_jobs
from repro.core.results import MuTResult, QuarantineRecord, ResultSet
from repro.core.results_io import load_results, save_results
from repro.core.supervisor import SupervisedCampaign, SupervisorPolicy
from repro.core.types import ParamType, TestValue, TypeRegistry, default_types

__all__ = [
    "Campaign",
    "CampaignConfig",
    "ParallelCampaign",
    "QuarantineRecord",
    "SupervisedCampaign",
    "SupervisorPolicy",
    "default_jobs",
    "CaseCode",
    "CaseGenerator",
    "MuT",
    "MuTRegistry",
    "MuTResult",
    "ParamType",
    "ResultSet",
    "Severity",
    "TestCase",
    "TestValue",
    "TypeRegistry",
    "default_registry",
    "default_types",
    "load_results",
    "save_results",
    "run_single_case",
]
