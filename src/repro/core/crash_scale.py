"""The CRASH severity scale and per-case result codes.

CRASH (Kropp, Koopman & Siewiorek, FTCS-28) is an acronym for the five
robustness failure classes:

* **C**atastrophic -- the whole system crashes; a reboot is required.
* **R**estart -- the task hangs and must be killed and restarted.
* **A**bort -- abnormal task termination (signal / unhandled exception).
* **S**ilent -- an exceptional call "succeeds" with no error indication.
* **H**indering -- an incorrect error indication is returned.

Ballista detects Catastrophic, Restart, and Abort automatically.  Silent
and Hindering failures require extra analysis; the paper estimates Silent
failures by voting identical test cases across Win32 implementations
(:mod:`repro.analysis.silent`).  This reproduction additionally knows the
ground truth (each test value is annotated ``exceptional``), which the
validation suite uses to sanity-check the voting estimator.
"""

from __future__ import annotations

import enum


class Severity(enum.IntEnum):
    """CRASH classes ordered most- to least-severe, plus PASS."""

    CATASTROPHIC = 0
    RESTART = 1
    ABORT = 2
    SILENT = 3
    HINDERING = 4
    PASS = 5


class CaseCode(enum.IntEnum):
    """Compact per-test-case outcome stored in result arrays.

    ``PASS_NO_ERROR`` vs ``PASS_ERROR`` preserves whether the MuT
    reported an error indication, which is what the Silent-failure
    voting estimator consumes.
    """

    PASS_NO_ERROR = 0  #: returned success, no error indication
    PASS_ERROR = 1  #: returned an error indication (robust handling)
    ABORT = 2  #: signal / unhandled exception killed the task
    RESTART = 3  #: task hung; watchdog fired
    CATASTROPHIC = 4  #: machine crashed
    SETUP_SKIP = 5  #: test-value constructor could not build the case
    NOT_RUN = 6  #: testing interrupted (after a machine crash)
    #: Harness-level outcome for sequence campaigns: a call that
    #: *reported failure* under an injected exhaustion fault nonetheless
    #: left residue in durable machine wear (filesystem, shared arena,
    #: corruption) -- it broke the failure-atomic expectation, so the
    #: next step runs on a machine the failed call dirtied.
    FAULT_ATOMICITY = 7

    @property
    def is_failure(self) -> bool:
        return self in (
            CaseCode.ABORT,
            CaseCode.RESTART,
            CaseCode.CATASTROPHIC,
            CaseCode.FAULT_ATOMICITY,
        )

    @property
    def counts_as_executed(self) -> bool:
        return self not in (CaseCode.SETUP_SKIP, CaseCode.NOT_RUN)


#: Map from case codes to the CRASH class they directly evidence.
CODE_TO_SEVERITY = {
    CaseCode.ABORT: Severity.ABORT,
    CaseCode.RESTART: Severity.RESTART,
    CaseCode.CATASTROPHIC: Severity.CATASTROPHIC,
}
