"""Test-case generation: exhaustive combinations with a sampling cap.

"Because many Win32 calls have four or more parameters, a very large
number of test cases could be generated ...  Therefore, testing was
capped at 5000 randomly selected test cases per MuT. ... In order to
fairly compare the desktop Windows variants, the same pseudorandom
sampling of test cases was performed in the same order for each system
call or C function tested across the different Windows variants."
(paper, section 3.1)

Determinism contract: for a given (MuT name, parameter pools, cap) the
sequence of test cases is identical on every OS variant and on every run.
The seed is derived from the MuT name only, so results are comparable
case-by-case across variants -- the property the Silent-failure voting
estimator relies on.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from math import prod
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mut import MuT
    from repro.core.types import TestValue, TypeRegistry

#: The paper's per-MuT test-case cap.
PAPER_CAP = 5000


@dataclass(frozen=True)
class TestCase:
    """One concrete test case: a MuT plus one chosen value per parameter.

    ``value_names`` makes any case replayable in isolation (the paper's
    "brief single-test program representing a single test case").
    """

    mut_name: str
    index: int
    value_names: tuple[str, ...]

    def describe(self) -> str:
        return f"{self.mut_name}({', '.join(self.value_names)})"


class CaseGenerator:
    """Generates the deterministic test-case sequence for MuTs.

    :param types: the type registry providing value pools.
    :param cap: per-MuT test-case cap (the paper used 5000; smaller caps
        keep CI-scale campaigns fast and, per the paper's prior findings,
        random sampling tracks exhaustive testing well).
    """

    def __init__(self, types: "TypeRegistry", cap: int = PAPER_CAP) -> None:
        self.types = types
        self.cap = cap

    # ------------------------------------------------------------------

    def pools(self, mut: "MuT") -> list[tuple["TestValue", ...]]:
        """The value pool for each parameter position."""
        return [self.types.get(name).all_values() for name in mut.param_types]

    def combination_count(self, mut: "MuT") -> int:
        """Size of the full cross-product for this MuT."""
        return prod(len(pool) for pool in self.pools(mut)) if mut.param_types else 1

    def is_capped(self, mut: "MuT") -> bool:
        return self.combination_count(mut) > self.cap

    def case_count(self, mut: "MuT") -> int:
        return min(self.combination_count(mut), self.cap)

    # ------------------------------------------------------------------

    def cases(self, mut: "MuT") -> Iterator[TestCase]:
        """Yield the test-case sequence for ``mut``.

        Exhaustive (odometer order) when the cross-product fits under the
        cap; otherwise a seeded sample without replacement, in sampling
        order.  Either way the sequence is a pure function of the MuT
        name and the pools.
        """
        pools = self.pools(mut)
        sizes = [len(pool) for pool in pools]
        total = self.combination_count(mut)
        if total <= self.cap:
            for index in range(total):
                yield self._case_at(mut, pools, sizes, index, index)
            return

        rng = random.Random(self._seed(mut.name))
        seen: set[int] = set()
        emitted = 0
        while emitted < self.cap:
            flat = rng.randrange(total)
            if flat in seen:
                continue
            seen.add(flat)
            yield self._case_at(mut, pools, sizes, flat, emitted)
            emitted += 1

    def resolve(self, mut: "MuT", case: TestCase) -> list["TestValue"]:
        """Map a case's value names back to TestValue objects."""
        values = []
        for type_name, value_name in zip(mut.param_types, case.value_names):
            values.append(self.types.get(type_name).find(value_name))
        return values

    # ------------------------------------------------------------------

    @staticmethod
    def _seed(mut_name: str) -> int:
        """Stable cross-run, cross-variant seed from the MuT name."""
        return zlib.crc32(mut_name.encode("utf-8"))

    @staticmethod
    def _case_at(
        mut: "MuT",
        pools: list[tuple["TestValue", ...]],
        sizes: list[int],
        flat_index: int,
        case_index: int,
    ) -> TestCase:
        """Decode a flat cross-product index into one value per pool
        (mixed-radix, last parameter fastest)."""
        names: list[str] = []
        remainder = flat_index
        for size, pool in zip(reversed(sizes), reversed(pools)):
            remainder, digit = divmod(remainder, size)
            names.append(pool[digit].name)
        names.reverse()
        return TestCase(mut.name, case_index, tuple(names))
