"""Test-case generation: exhaustive combinations with a sampling cap.

"Because many Win32 calls have four or more parameters, a very large
number of test cases could be generated ...  Therefore, testing was
capped at 5000 randomly selected test cases per MuT. ... In order to
fairly compare the desktop Windows variants, the same pseudorandom
sampling of test cases was performed in the same order for each system
call or C function tested across the different Windows variants."
(paper, section 3.1)

Determinism contract: for a given (MuT name, parameter pools, cap) the
sequence of test cases is identical on every OS variant and on every run.
The seed is derived from the MuT name only, so results are comparable
case-by-case across variants -- the property the Silent-failure voting
estimator relies on.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from math import prod
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mut import MuT
    from repro.core.types import TestValue, TypeRegistry

#: The paper's per-MuT test-case cap.
PAPER_CAP = 5000


@dataclass(frozen=True, slots=True)
class TestCase:
    """One concrete test case: a MuT plus one chosen value per parameter.

    ``value_names`` makes any case replayable in isolation (the paper's
    "brief single-test program representing a single test case").
    """

    mut_name: str
    index: int
    value_names: tuple[str, ...]

    def describe(self) -> str:
        return f"{self.mut_name}({', '.join(self.value_names)})"


class CaseGenerator:
    """Generates the deterministic test-case sequence for MuTs.

    :param types: the type registry providing value pools.
    :param cap: per-MuT test-case cap (the paper used 5000; smaller caps
        keep CI-scale campaigns fast and, per the paper's prior findings,
        random sampling tracks exhaustive testing well).
    """

    def __init__(self, types: "TypeRegistry", cap: int = PAPER_CAP) -> None:
        self.types = types
        self.cap = cap
        #: Memoized per-MuT case plans and value lookups.  A plan is a
        #: pure function of ``(MuT name, pools, cap)`` and pools are
        #: fixed after registry install, so one materialised plan serves
        #: every variant, shard slice, and sequence of the campaign --
        #: the cross-variant sharing the determinism contract already
        #: guarantees is safe.
        self._plan_cache: dict[str, list[TestCase]] = {}
        self._resolve_cache: dict[tuple[str, tuple[str, ...]], tuple] = {}
        self._finder_cache: dict[str, tuple] = {}
        self._count_cache: dict[str, int] = {}

    # ------------------------------------------------------------------

    def pools(self, mut: "MuT") -> list[tuple["TestValue", ...]]:
        """The value pool for each parameter position."""
        return [self.types.get(name).all_values() for name in mut.param_types]

    def combination_count(self, mut: "MuT") -> int:
        """Size of the full cross-product for this MuT (memoized: the
        pools are fixed for the life of the plan caches)."""
        count = self._count_cache.get(mut.name)
        if count is None:
            count = (
                prod(len(pool) for pool in self.pools(mut))
                if mut.param_types
                else 1
            )
            self._count_cache[mut.name] = count
        return count

    def is_capped(self, mut: "MuT") -> bool:
        return self.combination_count(mut) > self.cap

    def case_count(self, mut: "MuT") -> int:
        return min(self.combination_count(mut), self.cap)

    # ------------------------------------------------------------------

    def cases(self, mut: "MuT") -> Iterator[TestCase]:
        """Yield the test-case sequence for ``mut``.

        Exhaustive (odometer order) when the cross-product fits under the
        cap; otherwise a seeded sample without replacement, in sampling
        order.  Either way the sequence is a pure function of the MuT
        name and the pools -- which is why the materialised plan is
        memoized per MuT and shared across variants.
        """
        plan = self._plan_cache.get(mut.name)
        if plan is None:
            plan = list(self._generate(mut))
            self._plan_cache[mut.name] = plan
        return iter(plan)

    def _generate(self, mut: "MuT") -> Iterator[TestCase]:
        pools = self.pools(mut)
        sizes = [len(pool) for pool in pools]
        total = self.combination_count(mut)
        if total <= self.cap:
            for index in range(total):
                yield self._case_at(mut, pools, sizes, index, index)
            return

        rng = random.Random(self._seed(mut.name))
        seen: set[int] = set()
        emitted = 0
        while emitted < self.cap:
            flat = rng.randrange(total)
            if flat in seen:
                continue
            seen.add(flat)
            yield self._case_at(mut, pools, sizes, flat, emitted)
            emitted += 1

    def resolve(self, mut: "MuT", case: TestCase) -> list["TestValue"]:
        """Map a case's value names back to TestValue objects.

        Memoized per ``(MuT name, value names)``: the same case resolves
        to the same values on every variant, so the list is built once.
        Callers must treat the returned list as read-only.
        """
        return self.resolve_case(mut, case)[0]

    def resolve_case(
        self, mut: "MuT", case: TestCase
    ) -> tuple[list["TestValue"], bool]:
        """:meth:`resolve` plus the case's exceptional-input flag (any
        resolved value annotated exceptional), computed once per memo
        entry so the per-case loop does not rescan the value list."""
        cache_key = (mut.name, case.value_names)
        entry = self._resolve_cache.get(cache_key)
        if entry is None:
            finders = self._finder_cache.get(mut.name)
            if finders is None:
                finders = tuple(
                    self.types.get(name) for name in mut.param_types
                )
                self._finder_cache[mut.name] = finders
            try:
                values = [
                    param.find_map()[name]
                    for param, name in zip(finders, case.value_names)
                ]
            except KeyError:
                # Re-resolve through find() so an unknown name reports
                # which type rejected it.
                values = [
                    param.find(name)
                    for param, name in zip(finders, case.value_names)
                ]
            exceptional = False
            for value in values:
                if value.exceptional:
                    exceptional = True
                    break
            entry = (values, exceptional)
            self._resolve_cache[cache_key] = entry
        return entry

    # ------------------------------------------------------------------

    @staticmethod
    def _seed(mut_name: str) -> int:
        """Stable cross-run, cross-variant seed from the MuT name."""
        return zlib.crc32(mut_name.encode("utf-8"))

    @staticmethod
    def _case_at(
        mut: "MuT",
        pools: list[tuple["TestValue", ...]],
        sizes: list[int],
        flat_index: int,
        case_index: int,
    ) -> TestCase:
        """Decode a flat cross-product index into one value per pool
        (mixed-radix, last parameter fastest)."""
        names: list[str] = []
        remainder = flat_index
        for size, pool in zip(reversed(sizes), reversed(pools)):
            remainder, digit = divmod(remainder, size)
            names.append(pool[digit].name)
        names.reverse()
        return TestCase(mut.name, case_index, tuple(names))
