"""Result-set and checkpoint persistence.

Campaigns are cheap at CI caps but expensive at the paper's 5000-case
scale, so result sets can be saved to a compact JSON document and
reloaded for analysis without re-running anything:

    save_results(results, "campaign.json")
    results = load_results("campaign.json")

The format is versioned and self-describing; per-case code/exceptional
arrays are hex-encoded to keep files small (one byte per test case).
Version 2 adds the partial-variant flags; version-1 documents (which
predate them) still load.

A second document kind, the **campaign checkpoint**, makes paper-scale
runs restartable: it bundles the partial :class:`ResultSet` with a
per-variant plan cursor and the per-variant machine wear (accumulated
shared-state corruption, reboot count, clock) needed to resume without
re-executing completed MuTs.  Checkpoints are written atomically
(temp file + rename) so a crash mid-write never corrupts the previous
checkpoint.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from dataclasses import dataclass, field

from repro.core.crash_scale import CaseCode
from repro.core.results import ResultSet

FORMAT_VERSION = 3
#: Older document versions that still load (missing fields default).
#: Version 3 adds the per-row ``sequence`` extension recorded by
#: sequence-mode campaigns; per-case rows omit it, so version-2 readers
#: of case-mode documents lose nothing.
SUPPORTED_VERSIONS = {1, 2, 3}

CHECKPOINT_FORMAT = "ballista-checkpoint"
CHECKPOINT_VERSION = 3
#: Older checkpoint versions that still load (version 1 predates the
#: intra-variant ``shard`` block, version 2 the sequence-mode ``plan``
#: block; both default to the pre-existing semantics on load).
CHECKPOINT_SUPPORTED_VERSIONS = {1, 2, 3}


class ResultFormatError(ValueError):
    """The document is not a recognisable result-set dump."""


def _row_stamp(row) -> tuple:
    """Cheap mutation fingerprint of a result row.

    Every write path a row has (``record()`` appends to codes /
    exceptional / error_codes and inserts into details / failing_cases;
    the campaign sets the flags before the first checkpoint that could
    serialise the row; sequence records are assigned wholesale) moves at
    least one of these, so an unchanged stamp proves the cached
    serialised form is still exact."""
    return (
        len(row.codes),
        len(row.error_codes),
        len(row.details),
        len(row.failing_cases),
        row.interference_crash,
        row.planned_cases,
        row.capped,
        row.sequence is None,
    )


def _row_to_dict(row) -> dict:
    """Serialise one result row, memoized on the row object.

    Periodic checkpointing used to re-serialise every completed row on
    every save -- O(rows²) hex-encoding over a long campaign.  Rows are
    completed before the cursor moves past them and never mutate again,
    so the serialised dict is cached on the row and reused by every
    later checkpoint/result save; :func:`_row_stamp` guards the cache
    against the append-only mutations an in-flight row can still see.
    """
    cached = getattr(row, "_serialized", None)
    stamp = _row_stamp(row)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    entry = {
        "variant": row.variant,
        "mut": row.mut_name,
        "api": row.api,
        "group": row.group,
        "codes": bytes(row.codes).hex(),
        "exceptional": bytes(row.exceptional).hex(),
        "error_codes": list(row.error_codes),
        "details": {str(k): v for k, v in row.details.items()},
        "failing_cases": {
            str(k): list(v) for k, v in row.failing_cases.items()
        },
        "interference": row.interference_crash,
        "planned": row.planned_cases,
        "capped": row.capped,
    }
    if row.sequence is not None:
        # Version-3 sequence-record extension; omitted on per-case
        # rows so case-mode documents keep their version-2 shape.
        entry["sequence"] = row.sequence
    row._serialized = (stamp, entry)
    return entry


def results_to_dict(results: ResultSet) -> dict:
    """Serialise a ResultSet to plain JSON-compatible data."""
    rows = [_row_to_dict(row) for row in results]
    document = {
        "format": "ballista-results",
        "version": FORMAT_VERSION,
        "results": rows,
    }
    partial = sorted(results.partial_variants())
    if partial:
        document["partial"] = partial
    quarantined = results.quarantined_records()
    if quarantined:
        # Harness-level QUARANTINED outcomes: MuTs the supervisor
        # withdrew after they repeatedly killed or hung their worker.
        # Serialised only when present so undisturbed runs stay
        # byte-identical to pre-supervision documents.
        document["quarantined"] = [
            {
                "variant": record.variant,
                "api": record.api,
                "mut": record.mut_name,
                "reason": record.reason,
            }
            for record in quarantined
        ]
    return document


def results_from_dict(document: dict) -> ResultSet:
    """Rebuild a ResultSet from :func:`results_to_dict` output."""
    if document.get("format") != "ballista-results":
        raise ResultFormatError("not a ballista-results document")
    if document.get("version") not in SUPPORTED_VERSIONS:
        raise ResultFormatError(
            f"unsupported version {document.get('version')!r}"
        )
    results = ResultSet()
    for row in document.get("results", []):
        try:
            result = results.new_result(
                row["variant"], row["mut"], row["api"], row["group"]
            )
            codes = bytes.fromhex(row["codes"])
            exceptional = bytes.fromhex(row["exceptional"])
            error_codes = row.get("error_codes") or [0] * len(codes)
            details = {int(k): v for k, v in row.get("details", {}).items()}
            failing = {
                int(k): tuple(v)
                for k, v in row.get("failing_cases", {}).items()
            }
            for index, (code, exc) in enumerate(zip(codes, exceptional)):
                result.record(
                    index,
                    CaseCode(code),
                    bool(exc),
                    detail=details.get(index, ""),
                    value_names=failing.get(index),
                    error_code=error_codes[index],
                )
            result.interference_crash = bool(row.get("interference"))
            result.planned_cases = int(row.get("planned", len(codes)))
            result.capped = bool(row.get("capped"))
            if row.get("sequence") is not None:
                result.sequence = dict(row["sequence"])
        except (KeyError, ValueError, TypeError) as exc:
            raise ResultFormatError(f"malformed result row: {exc}") from exc
    for variant in document.get("partial", []):
        results.mark_partial(variant)
    for record in document.get("quarantined", []):
        try:
            results.quarantine(
                record["variant"],
                record["api"],
                record["mut"],
                str(record.get("reason", "")),
            )
        except (KeyError, TypeError) as exc:
            raise ResultFormatError(
                f"malformed quarantine record: {exc}"
            ) from exc
    return results


def _atomic_write(path: str | pathlib.Path, text: str) -> None:
    """Write via a sibling temp file + rename so readers never observe
    a half-written document (a crash mid-checkpoint keeps the old one)."""
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def save_results(results: ResultSet, path: str | pathlib.Path) -> None:
    """Write a ResultSet to ``path`` as JSON."""
    document = results_to_dict(results)
    _atomic_write(path, json.dumps(document, separators=(",", ":")))


def load_results(path: str | pathlib.Path) -> ResultSet:
    """Read a ResultSet saved by :func:`save_results`.

    Checkpoint documents are accepted too: the embedded (partial)
    result set is returned, so interrupted campaigns can be analysed
    directly.
    """
    document = _read_json(path)
    if document.get("format") == CHECKPOINT_FORMAT:
        return checkpoint_from_dict(document).results
    return results_from_dict(document)


def _read_json(path: str | pathlib.Path) -> dict:
    try:
        document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ResultFormatError(f"not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ResultFormatError("top-level JSON value must be an object")
    return document


# ----------------------------------------------------------------------
# Campaign checkpoints
# ----------------------------------------------------------------------


@dataclass
class CampaignCheckpoint:
    """A restartable snapshot of a campaign in flight.

    :param results: every fully-recorded MuT result so far (checkpoints
        are only taken at MuT boundaries, so no row is half-filled).
    :param cursors: per-variant index of the next MuT position in the
        deterministic plan order.
    :param machine_wear: per-variant machine state that outcomes can
        depend on across MuTs: accumulated shared-arena corruption,
        reboot count, the virtual clock, and an image of the simulated
        filesystem and shared arena (files leaked by earlier MuTs change
        later classifications).
    :param cap: the per-MuT case cap the run was started with; resuming
        under a different cap would splice incompatible case sequences,
        so it is refused.
    :param variants: the variant keys the campaign was started with
        (``None`` on hand-built checkpoints: the check is skipped).
        Resuming with a different variant set is refused -- it would
        silently re-run or drop whole variants.
    :param complete: True once the campaign finished normally.
    :param supervision: the supervisor's event log (worker restarts,
        watchdog kills, quarantines) for a run still in flight.
        Operational state, not measurement data: it is persisted on
        in-flight documents so a resumed run can see its fault history,
        and cleared once the campaign completes -- a supervised run that
        survived faults leaves a final checkpoint byte-identical to an
        undisturbed run's.
    :param shard: intra-variant slice metadata (version 2), present only
        on the per-worker shard documents of a sharded campaign:
        ``{"variant", "index", "start", "stop", "resumed", "base_wear"}``.
        ``start``/``stop`` bound the slice's half-open plan-position
        range; ``base_wear`` is the exact machine wear the slice started
        from (``None`` = fresh boot) so :func:`merge_checkpoints` can
        prove each seam matches the serial wear trajectory before
        splicing rows; ``resumed`` marks slices whose base came from an
        authoritative combined checkpoint rather than a predecessor
        slice (the seam check is skipped -- same trust as any resume).
        ``None`` on serial, combined, and whole-variant documents.
    :param plan: the plan-defining campaign parameters beyond ``cap``
        (version 3), present on ``--mode sequence`` documents:
        ``{"mode", "sequences", "sequence_length", "sequence_seed",
        "dirty_machine", "fault_families"}``.  Like the cap, these fix
        the deterministic plan the cursors index into, so resuming
        under different values would splice incompatible plans and is
        refused.  ``None`` on per-case documents (and all pre-v3 ones).
    """

    results: ResultSet
    cursors: dict[str, int] = field(default_factory=dict)
    machine_wear: dict[str, dict] = field(default_factory=dict)
    cap: int = 0
    variants: list[str] | None = None
    complete: bool = False
    supervision: list[dict] = field(default_factory=list)
    shard: dict | None = None
    plan: dict | None = None


def checkpoint_plan(config) -> dict | None:
    """The :attr:`CampaignCheckpoint.plan` block for a campaign config:
    ``None`` for per-case mode (whose plan the cap alone defines), else
    the sequence-mode parameters the plan is a function of.
    ``fault_families`` keeps its order -- the planner indexes into it."""
    if config.mode == "case":
        return None
    return {
        "mode": config.mode,
        "sequences": config.sequences,
        "sequence_length": config.sequence_length,
        "sequence_seed": config.sequence_seed,
        "dirty_machine": bool(config.dirty_machine),
        "fault_families": list(config.fault_families),
    }


def checkpoint_to_dict(checkpoint: CampaignCheckpoint) -> dict:
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "cap": checkpoint.cap,
        "variants": checkpoint.variants,
        "complete": checkpoint.complete,
        "cursors": dict(checkpoint.cursors),
        "machine_wear": {
            variant: dict(wear)
            for variant, wear in checkpoint.machine_wear.items()
        },
        "results": results_to_dict(checkpoint.results),
    }
    if checkpoint.supervision:
        document["supervision"] = [dict(e) for e in checkpoint.supervision]
    if checkpoint.shard is not None:
        document["shard"] = dict(checkpoint.shard)
    if checkpoint.plan is not None:
        document["plan"] = dict(checkpoint.plan)
    return document


def checkpoint_from_dict(document: dict) -> CampaignCheckpoint:
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ResultFormatError("not a ballista-checkpoint document")
    if document.get("version") not in CHECKPOINT_SUPPORTED_VERSIONS:
        raise ResultFormatError(
            f"unsupported checkpoint version {document.get('version')!r}"
        )
    try:
        variants = document.get("variants")
        return CampaignCheckpoint(
            results=results_from_dict(document["results"]),
            cursors={k: int(v) for k, v in document.get("cursors", {}).items()},
            machine_wear={
                variant: {
                    k: int(v) if isinstance(v, (int, bool)) else v
                    for k, v in wear.items()
                }
                for variant, wear in document.get("machine_wear", {}).items()
            },
            cap=int(document.get("cap", 0)),
            variants=None if variants is None else [str(v) for v in variants],
            complete=bool(document.get("complete", False)),
            supervision=[
                dict(entry) for entry in document.get("supervision", [])
            ],
            shard=(
                dict(document["shard"])
                if document.get("shard") is not None
                else None
            ),
            plan=(
                dict(document["plan"])
                if document.get("plan") is not None
                else None
            ),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ResultFormatError(f"malformed checkpoint: {exc}") from exc


# ----------------------------------------------------------------------
# Checkpoint shards (parallel campaigns)
# ----------------------------------------------------------------------


def shard_path(base: str | pathlib.Path, variant: str) -> pathlib.Path:
    """Where a parallel worker checkpoints one variant's slice of the
    campaign whose combined checkpoint lives at ``base``."""
    base = pathlib.Path(base)
    return base.with_name(f"{base.name}.{variant}.shard")


def split_checkpoint(
    checkpoint: CampaignCheckpoint,
    variant: str,
    plan: list | None = None,
    span: tuple[int, int] | None = None,
) -> CampaignCheckpoint:
    """Extract one variant's shard from a combined checkpoint, so a
    parallel worker can resume exactly where the serial semantics would:
    completed MuT rows, the plan cursor, and the machine wear for that
    variant only.  Rows are shared, not copied -- shards are written or
    shipped across a process boundary immediately.

    With ``span=(start, stop)`` the shard is one intra-variant slice:
    only rows (and quarantine records) whose plan position falls inside
    the half-open range are kept.  ``plan`` -- the variant's ordered
    ``(api, name)`` plan -- maps rows to positions and is required with
    a span.  The cursor is clamped into the span, and machine wear
    travels only with the slice holding the wear frontier (the combined
    cursor ``c`` satisfies ``start < c <= stop``): serial wear at plan
    position ``c`` belongs to the seam between slice rows ``c-1`` and
    ``c``, so exactly one slice may restore it.
    """
    if span is not None and plan is None:
        raise ValueError("split_checkpoint: span requires the variant plan")
    cursor = checkpoint.cursors.get(variant)
    if span is None:
        keep = None
        start, stop = 0, None
    else:
        start, stop = span
        positions = {identity: i for i, identity in enumerate(plan)}

        def keep(api: str, name: str) -> bool:
            position = positions.get((api, name))
            return position is not None and start <= position < stop

    results = ResultSet()
    for row in checkpoint.results:
        if row.variant != variant:
            continue
        if keep is not None and not keep(row.api, row.mut_name):
            continue
        results.add(row)
    for record in checkpoint.results.quarantined_records():
        if record.variant != variant:
            continue
        if keep is not None and not keep(record.api, record.mut_name):
            continue
        results.quarantine(variant, record.api, record.mut_name, record.reason)
    if checkpoint.results.is_partial(variant):
        results.mark_partial(variant)
    cursors = {}
    wear = {}
    if span is None:
        if cursor is not None:
            cursors[variant] = cursor
        if variant in checkpoint.machine_wear:
            wear[variant] = dict(checkpoint.machine_wear[variant])
        complete = checkpoint.complete
    else:
        frontier = cursor if cursor is not None else 0
        if frontier > start:
            cursors[variant] = min(frontier, stop)
        if start < frontier <= stop and variant in checkpoint.machine_wear:
            wear[variant] = dict(checkpoint.machine_wear[variant])
        complete = frontier >= stop
    return CampaignCheckpoint(
        results=results,
        cursors=cursors,
        machine_wear=wear,
        cap=checkpoint.cap,
        variants=[variant],
        complete=complete,
        plan=None if checkpoint.plan is None else dict(checkpoint.plan),
    )


def wear_fingerprint(wear: dict | None) -> str:
    """Canonical byte form of a machine-wear image (``None`` = fresh
    boot).  Two slices join at a valid seam exactly when the
    predecessor's end-wear fingerprint equals the successor's base-wear
    fingerprint -- execution is deterministic, so equal wear here proves
    the successor ran on the very machine state the serial campaign
    would have handed it."""
    return json.dumps(wear, sort_keys=True, separators=(",", ":"))


def merge_checkpoints(
    shards: list,
    cap: int = 0,
    variants: list[str] | None = None,
) -> CampaignCheckpoint:
    """Merge per-variant shards back into one campaign checkpoint.

    Each entry may be a loaded :class:`CampaignCheckpoint` or a path to
    one on disk.  A path whose document is truncated or corrupt (a
    worker killed mid-write by something that defeated the atomic
    rename, a filesystem fault) is *quarantined* rather than fatal: the
    file is set aside as ``<path>.corrupt``, a warning naming the shard
    path is emitted, and the merge proceeds without it -- the merged
    document is marked incomplete so a resume re-runs that slice.

    The merged document is independent of shard completion order:
    result rows serialise sorted by key, and cursors/wear are keyed by
    variant.  ``complete`` only when every shard completed.

    Shards carrying an intra-variant ``shard`` block (checkpoint
    version 2) merge as a *validated chain* per variant: slices are
    ordered by plan position and spliced back only while each slice's
    recorded base wear byte-matches the previous slice's end wear (or
    the slice was resumed from an authoritative combined document).
    The first gap, seam mismatch, or incomplete slice ends the chain --
    later slices are speculative work whose machine state cannot be
    proven serial-equivalent, so their rows are dropped with a warning
    and the merged document is left incomplete for a resume to re-earn
    them.  The spliced output is byte-identical to the serial document:
    rows serialise sorted by key, the cursor lands on the last proven
    seam, and the wear image is the chain frontier's."""
    merged = CampaignCheckpoint(
        ResultSet(),
        cap=cap,
        variants=None if variants is None else list(variants),
    )
    complete = bool(shards)
    sliced: dict[str, list[CampaignCheckpoint]] = {}
    for shard in shards:
        if isinstance(shard, (str, pathlib.Path)):
            path = pathlib.Path(shard)
            try:
                shard = load_checkpoint(path)
            except (OSError, ResultFormatError) as exc:
                quarantined = path.with_name(path.name + ".corrupt")
                try:
                    os.replace(path, quarantined)
                    where = f"; set aside as {quarantined}"
                except OSError:
                    where = ""
                warnings.warn(
                    f"shard checkpoint {path} is unreadable ({exc}); "
                    f"merging without it{where}",
                    stacklevel=2,
                )
                complete = False
                continue
        if merged.plan is None and shard.plan is not None:
            merged.plan = dict(shard.plan)
        if shard.shard is not None:
            sliced.setdefault(str(shard.shard.get("variant")), []).append(
                shard
            )
            continue
        merged.results.merge(shard.results)
        merged.cursors.update(shard.cursors)
        for variant, wear in shard.machine_wear.items():
            merged.machine_wear[variant] = dict(wear)
        complete = complete and shard.complete
    # Chain order follows the campaign's variant order (the serial
    # cursor/wear dicts are keyed in execution order, and dict order
    # lands in the serialised document byte for byte).
    ordered = [v for v in (variants or []) if v in sliced]
    ordered += sorted(v for v in sliced if v not in set(ordered))
    for variant in ordered:
        complete = _merge_slice_chain(merged, variant, sliced[variant]) and (
            complete
        )
    merged.complete = complete
    return merged


def _merge_slice_chain(
    merged: CampaignCheckpoint,
    variant: str,
    entries: list[CampaignCheckpoint],
) -> bool:
    """Splice one variant's intra-variant slices into ``merged`` as far
    as the seam-validated chain reaches; returns True when the chain
    covers the whole plan with every slice complete."""
    entries.sort(
        key=lambda e: (
            int(e.shard.get("start", 0)),
            int(e.shard.get("index", 0)),
        )
    )
    position = 0
    frontier_fp = wear_fingerprint(None)
    cursor: int | None = None
    wear: dict | None = None
    merged_upto = 0
    for count, entry in enumerate(entries):
        info = entry.shard
        start = int(info.get("start", 0))
        stop = int(info.get("stop", 0))
        if start != position:
            warnings.warn(
                f"shard chain for [{variant}] has a gap at plan position "
                f"{position} (next slice starts at {start}); dropping "
                f"{len(entries) - count} unproven slice(s)",
                stacklevel=3,
            )
            break
        if not info.get("resumed") and (
            wear_fingerprint(info.get("base_wear")) != frontier_fp
        ):
            warnings.warn(
                f"shard [{variant}#{info.get('index')}] base wear does "
                f"not match the chain frontier at plan position "
                f"{position}; dropping {len(entries) - count} unproven "
                f"slice(s) -- a resume will re-run them",
                stacklevel=3,
            )
            break
        merged.results.merge(entry.results)
        if variant in entry.cursors:
            cursor = entry.cursors[variant]
        if variant in entry.machine_wear:
            wear = dict(entry.machine_wear[variant])
        merged_upto = count + 1
        if not entry.complete:
            if count + 1 < len(entries):
                warnings.warn(
                    f"shard chain for [{variant}] is incomplete at plan "
                    f"position {cursor if cursor is not None else start}; "
                    f"dropping {len(entries) - count - 1} unproven "
                    f"slice(s)",
                    stacklevel=3,
                )
            break
        position = stop
        frontier_fp = wear_fingerprint(wear)
    if cursor is not None:
        merged.cursors[variant] = cursor
    if wear is not None:
        merged.machine_wear[variant] = wear
    return merged_upto == len(entries) and all(
        entry.complete for entry in entries
    )


def save_checkpoint(
    checkpoint: CampaignCheckpoint, path: str | pathlib.Path
) -> None:
    """Atomically write a checkpoint document to ``path``."""
    _atomic_write(
        path, json.dumps(checkpoint_to_dict(checkpoint), separators=(",", ":"))
    )


def load_checkpoint(path: str | pathlib.Path) -> CampaignCheckpoint:
    """Read a checkpoint saved by :func:`save_checkpoint`."""
    return checkpoint_from_dict(_read_json(path))
