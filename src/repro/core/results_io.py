"""Result-set persistence.

Campaigns are cheap at CI caps but expensive at the paper's 5000-case
scale, so result sets can be saved to a compact JSON document and
reloaded for analysis without re-running anything:

    save_results(results, "campaign.json")
    results = load_results("campaign.json")

The format is versioned and self-describing; per-case code/exceptional
arrays are hex-encoded to keep files small (one byte per test case).
"""

from __future__ import annotations

import json
import pathlib

from repro.core.crash_scale import CaseCode
from repro.core.results import ResultSet

FORMAT_VERSION = 1


class ResultFormatError(ValueError):
    """The document is not a recognisable result-set dump."""


def results_to_dict(results: ResultSet) -> dict:
    """Serialise a ResultSet to plain JSON-compatible data."""
    rows = []
    for row in results:
        rows.append(
            {
                "variant": row.variant,
                "mut": row.mut_name,
                "api": row.api,
                "group": row.group,
                "codes": bytes(row.codes).hex(),
                "exceptional": bytes(row.exceptional).hex(),
                "error_codes": list(row.error_codes),
                "details": {str(k): v for k, v in row.details.items()},
                "failing_cases": {
                    str(k): list(v) for k, v in row.failing_cases.items()
                },
                "interference": row.interference_crash,
                "planned": row.planned_cases,
                "capped": row.capped,
            }
        )
    return {
        "format": "ballista-results",
        "version": FORMAT_VERSION,
        "results": rows,
    }


def results_from_dict(document: dict) -> ResultSet:
    """Rebuild a ResultSet from :func:`results_to_dict` output."""
    if document.get("format") != "ballista-results":
        raise ResultFormatError("not a ballista-results document")
    if document.get("version") != FORMAT_VERSION:
        raise ResultFormatError(
            f"unsupported version {document.get('version')!r}"
        )
    results = ResultSet()
    for row in document.get("results", []):
        try:
            result = results.new_result(
                row["variant"], row["mut"], row["api"], row["group"]
            )
            codes = bytes.fromhex(row["codes"])
            exceptional = bytes.fromhex(row["exceptional"])
            error_codes = row.get("error_codes") or [0] * len(codes)
            details = {int(k): v for k, v in row.get("details", {}).items()}
            failing = {
                int(k): tuple(v)
                for k, v in row.get("failing_cases", {}).items()
            }
            for index, (code, exc) in enumerate(zip(codes, exceptional)):
                result.record(
                    index,
                    CaseCode(code),
                    bool(exc),
                    detail=details.get(index, ""),
                    value_names=failing.get(index),
                    error_code=error_codes[index],
                )
            result.interference_crash = bool(row.get("interference"))
            result.planned_cases = int(row.get("planned", len(codes)))
            result.capped = bool(row.get("capped"))
        except (KeyError, ValueError, TypeError) as exc:
            raise ResultFormatError(f"malformed result row: {exc}") from exc
    return results


def save_results(results: ResultSet, path: str | pathlib.Path) -> None:
    """Write a ResultSet to ``path`` as JSON."""
    document = results_to_dict(results)
    pathlib.Path(path).write_text(
        json.dumps(document, separators=(",", ":")), encoding="utf-8"
    )


def load_results(path: str | pathlib.Path) -> ResultSet:
    """Read a ResultSet saved by :func:`save_results`."""
    try:
        document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ResultFormatError(f"not valid JSON: {exc}") from exc
    return results_from_dict(document)
