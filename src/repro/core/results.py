"""Result storage and per-MuT robustness failure rates.

Per (variant, MuT) the store keeps one compact byte per test case (a
:class:`~repro.core.crash_scale.CaseCode`), in generation order.  Because
the generator produces the *same case sequence for every variant*, code
arrays line up case-by-case across variants -- the property the
Silent-failure voting estimator exploits.

Rates follow the paper's normalisation: the failure rate of a MuT is
(failed cases / executed cases); group rates average MuT rates with
uniform weights; MuTs that suffered a Catastrophic failure are excluded
from rate averages (their case set is incomplete) and reported
separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.crash_scale import CaseCode


@dataclass(frozen=True)
class QuarantineRecord:
    """A MuT the supervisor withdrew from a variant's plan.

    A *harness-level* outcome, not a per-case code: a quarantined MuT
    repeatedly killed or hung its worker process, so it has no case
    array at all -- the campaign skipped it to keep the variant alive
    (the analogue of the paper's entries that could only be measured by
    rebooting the physical test machine and moving on).  Quarantined
    MuTs are excluded from rate averages exactly like Catastrophic-
    failure MuTs, and the analysis tables flag them with a footnote
    marker alongside the ``!`` partial-variant flag.
    """

    variant: str
    api: str
    mut_name: str
    reason: str


@dataclass
class MuTResult:
    """All outcomes for one MuT on one OS variant."""

    variant: str
    mut_name: str
    api: str
    group: str
    codes: bytearray = field(default_factory=bytearray)
    #: Parallel ground-truth bits: does case *i* include at least one
    #: exceptional input value?
    exceptional: bytearray = field(default_factory=bytearray)
    #: Parallel errno / GetLastError values (0 = none reported); feeds
    #: the Hindering-failure estimator.
    error_codes: list[int] = field(default_factory=list)
    #: Detail strings for failures, keyed by case index.
    details: dict[int, str] = field(default_factory=dict)
    #: Value-name tuples for failures, for replay / Table 3 reporting.
    failing_cases: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: True when testing this MuT crashed the machine.
    catastrophic: bool = False
    #: True when the crash needed accumulated state (the paper's ``*``).
    interference_crash: bool = False
    planned_cases: int = 0
    capped: bool = False
    #: Sequence-campaign extension (format version 3): present only on
    #: rows recorded by ``--mode sequence``, where one row is one k-call
    #: sequence and case index *i* is step *i*.  Carries the step
    #: identities (api, MuT, values), per-step sim-tick timestamps, the
    #: armed fault (family + step), and the crash attribution
    #: (first-failure step pointer, origin step, origin-vs-propagated
    #: classification).  ``None`` on per-case rows, which therefore
    #: serialise byte-identically to format version 2 documents.
    sequence: dict | None = None

    def record(
        self,
        case_index: int,
        code: CaseCode,
        exceptional: bool,
        detail: str = "",
        value_names: tuple[str, ...] | None = None,
        error_code: int = 0,
    ) -> None:
        assert case_index == len(self.codes), "cases must arrive in order"
        self.codes.append(int(code))
        self.exceptional.append(1 if exceptional else 0)
        self.error_codes.append(error_code & 0xFFFF_FFFF)
        if detail:
            self.details[case_index] = detail
        if code.is_failure and value_names is not None:
            self.failing_cases[case_index] = value_names
        if code is CaseCode.CATASTROPHIC:
            self.catastrophic = True

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------

    def count(self, *codes: CaseCode) -> int:
        wanted = {int(c) for c in codes}
        return sum(1 for c in self.codes if c in wanted)

    @property
    def executed(self) -> int:
        return sum(
            1 for c in self.codes if CaseCode(c).counts_as_executed
        )

    def rate(self, *codes: CaseCode) -> float:
        """Failure rate for the given codes over executed cases."""
        executed = self.executed
        return self.count(*codes) / executed if executed else 0.0

    @property
    def abort_rate(self) -> float:
        return self.rate(CaseCode.ABORT)

    @property
    def restart_rate(self) -> float:
        return self.rate(CaseCode.RESTART)

    @property
    def pass_no_error_rate(self) -> float:
        return self.rate(CaseCode.PASS_NO_ERROR)

    def silent_ground_truth_rate(self) -> float:
        """Ground-truth Silent rate: exceptional input, completed with no
        error indication.  (Unavailable to the paper; used here to
        validate the voting estimator.)"""
        executed = 0
        silent = 0
        for code, exc in zip(self.codes, self.exceptional):
            if not CaseCode(code).counts_as_executed:
                continue
            executed += 1
            if code == int(CaseCode.PASS_NO_ERROR) and exc:
                silent += 1
        return silent / executed if executed else 0.0


class ResultSet:
    """All MuT results for a campaign (any number of variants)."""

    def __init__(self) -> None:
        self._results: dict[tuple[str, str, str], MuTResult] = {}
        #: Variants whose campaign did not run to completion (dead
        #: client, expired lease, interrupted run).  Their rows are
        #: real measurements, but coverage is incomplete and the
        #: analysis layer flags them.
        self._partial: set[str] = set()
        #: MuTs the supervisor withdrew after they repeatedly killed or
        #: hung their worker; keyed like results, holding the record.
        self._quarantined: dict[tuple[str, str, str], QuarantineRecord] = {}

    def mark_partial(self, variant: str) -> None:
        self._partial.add(variant)

    def is_partial(self, variant: str) -> bool:
        return variant in self._partial

    def partial_variants(self) -> set[str]:
        return set(self._partial)

    # ------------------------------------------------------------------
    # Quarantine (harness-level QUARANTINED outcome)
    # ------------------------------------------------------------------

    def quarantine(
        self, variant: str, api: str, mut_name: str, reason: str
    ) -> QuarantineRecord:
        """Record a poison MuT as QUARANTINED on ``variant``.

        Idempotent: re-recording an already-quarantined MuT keeps the
        first record (a resumed run replays the supervisor's decision).
        A quarantined MuT has no :class:`MuTResult` row, so it never
        contributes to rates -- mirroring the paper's exclusion of MuTs
        whose case set is incomplete.
        """
        key = (variant, api, mut_name)
        if key not in self._quarantined:
            self._quarantined[key] = QuarantineRecord(
                variant, api, mut_name, reason
            )
        return self._quarantined[key]

    def is_quarantined(self, variant: str, api: str, mut_name: str) -> bool:
        return (variant, api, mut_name) in self._quarantined

    def quarantined_records(self) -> list[QuarantineRecord]:
        """Every quarantine record, sorted by (variant, api, mut)."""
        return [self._quarantined[k] for k in sorted(self._quarantined)]

    def quarantined_for(self, variant: str) -> list[QuarantineRecord]:
        return [r for r in self.quarantined_records() if r.variant == variant]

    def new_result(
        self, variant: str, mut_name: str, api: str, group: str
    ) -> MuTResult:
        key = (variant, api, mut_name)
        if key in self._results:
            raise ValueError(f"duplicate result for {key}")
        result = MuTResult(variant, mut_name, api, group)
        self._results[key] = result
        return result

    def add(self, result: MuTResult) -> MuTResult:
        """Adopt a fully-built row (e.g. from another worker's shard).

        Iteration order is sorted by key, not insertion order, so adding
        rows in any order yields the same serialised document.
        """
        key = (result.variant, result.api, result.mut_name)
        if key in self._results:
            raise ValueError(f"duplicate result for {key}")
        self._results[key] = result
        return result

    def merge(self, other: "ResultSet") -> None:
        """Fold another result set into this one.

        Used to combine per-variant worker shards into the campaign
        result set; overlapping (variant, api, mut) rows are a merge
        error and raise :class:`ValueError`.  Partial-variant flags are
        unioned.
        """
        for row in other:
            self.add(row)
        for variant in other.partial_variants():
            self.mark_partial(variant)
        for record in other.quarantined_records():
            self.quarantine(
                record.variant, record.api, record.mut_name, record.reason
            )

    def get(self, variant: str, mut_name: str, api: str | None = None) -> MuTResult:
        """Look a result up; ``api`` disambiguates names tested through
        both the C library and a system-call API (e.g. ``rename``)."""
        if api is not None:
            return self._results[(variant, api, mut_name)]
        hits = [
            r
            for (v, _a, n), r in self._results.items()
            if v == variant and n == mut_name
        ]
        if not hits:
            raise KeyError((variant, mut_name))
        if len(hits) > 1:
            raise KeyError(f"{mut_name!r} is ambiguous on {variant}; pass api=")
        return hits[0]

    def has(self, variant: str, mut_name: str, api: str | None = None) -> bool:
        try:
            self.get(variant, mut_name, api)
            return True
        except KeyError:
            return False

    def for_variant(self, variant: str) -> list[MuTResult]:
        return [
            r for (v, _a, _n), r in sorted(self._results.items()) if v == variant
        ]

    def variants(self) -> list[str]:
        return sorted({v for v, _a, _n in self._results})

    def mut_names(self, variant: str) -> list[str]:
        return [r.mut_name for r in self.for_variant(variant)]

    def __iter__(self) -> Iterator[MuTResult]:
        return iter(self._results[k] for k in sorted(self._results))

    def __len__(self) -> int:
        return len(self._results)

    # ------------------------------------------------------------------
    # Aggregates (paper Table 1 building blocks)
    # ------------------------------------------------------------------

    @staticmethod
    def _mean(rates: Iterable[float]) -> float:
        rates = list(rates)
        return sum(rates) / len(rates) if rates else 0.0

    def uniform_rate(
        self,
        variant: str,
        code: CaseCode,
        apis: set[str] | None = None,
        include_catastrophic: bool = False,
    ) -> float:
        """Uniformly weighted mean of per-MuT rates (the paper's
        normalised failure rate).  MuTs with Catastrophic failures are
        excluded unless requested, as in the paper."""
        rates = [
            r.rate(code)
            for r in self.for_variant(variant)
            if (apis is None or r.api in apis)
            and (include_catastrophic or not r.catastrophic)
        ]
        return self._mean(rates)

    def catastrophic_muts(
        self, variant: str, apis: set[str] | None = None
    ) -> list[MuTResult]:
        return [
            r
            for r in self.for_variant(variant)
            if r.catastrophic and (apis is None or r.api in apis)
        ]

    def total_cases(self, variant: str | None = None) -> int:
        return sum(
            len(r.codes)
            for r in self._results.values()
            if variant is None or r.variant == variant
        )
