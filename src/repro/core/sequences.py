"""Stateful call-sequence campaigns with sequence-level attribution.

Per-case campaigns (:mod:`repro.core.campaign`) spend one fresh process
per test case, so the only state a case inherits is *machine* wear.  A
**sequence campaign** makes the k-call sequence the unit of work: the
whole sequence runs inside one spawned process, so handles, ``FILE*``
streams, and file descriptors opened by one step are genuinely live for
the next -- the setting in which real applications meet the Win32 API,
and the one the paper's ``*`` interference crashes point at.

Three pieces live here:

* :class:`SequencePlanner` -- a seeded generator of
  :class:`SequencePlan` objects.  Plans are a pure function of
  ``(sequence name, seed, MuT pool, value pools)``: the same planner
  inputs yield byte-identical plans in every worker process, which is
  what lets sequences shard and heal exactly like cases.
* :func:`run_variant_sequences` -- the sequence twin of
  :func:`repro.core.campaign.run_variant`, with the same
  checkpoint/heartbeat/progress/slice contract.  Each sequence becomes
  one result row under the reserved ``api="seq"`` namespace (step index
  = case index), so checkpoint splitting, merging, supervision, and the
  deterministic event stream all work unchanged.
* **Fault injection and attribution.**  A plan may arm one
  fault family (:data:`~repro.sim.faults.FAULT_FAMILIES`) for one step;
  the executor scopes it to the call window, and a call that reports
  failure while leaving durable wear residue is classified
  :attr:`~repro.core.crash_scale.CaseCode.FAULT_ATOMICITY`.  A
  Catastrophic step is attributed: an immediate kernel fault is an
  ``"origin"`` crash of its own step, while an accumulated-corruption
  crash is ``"propagated"`` from the first corrupting step of the
  sequence (or inherited from pre-sequence wear in dirty-machine mode,
  recorded as ``origin_step = None``).

Dirty-machine mode (``CampaignConfig.dirty_machine``) skips the
between-sequence reboot, so sequences start on the wear every earlier
sequence left behind -- the multi-week-uptime regime the paper's test
machines actually lived in.
"""

from __future__ import annotations

import pathlib
import random
import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.core.campaign import (
    _INTERFERENCE_MARKER,
    _apply_policies,
    _outcome_histogram,
    CampaignConfig,
    HeartbeatFn,
    ProgressFn,
)
from repro.core.context import TestContext
from repro.core.crash_scale import CaseCode
from repro.core.executor import Executor
from repro.core.generator import CaseGenerator, TestCase
from repro.core.mut import MuT
from repro.core.results import MuTResult, ResultSet
from repro.core.results_io import CampaignCheckpoint, save_checkpoint
from repro.obs import events as obs_events
from repro.obs.recorder import Recorder
from repro.sim.errors import MachineCrashed, SimFault, SystemCrash
from repro.sim.faults import FAULT_FAMILIES
from repro.sim.machine import Machine
from repro.sim.personality import Personality

#: Reserved ``api`` namespace for sequence result rows.  The lint
#: registry contract forbids real MuTs from registering under it, so a
#: sequence row can never collide with a per-case row.
SEQUENCE_API = "seq"

#: Group name carried by sequence rows (analysis tables select by api,
#: so sequence rows never leak into the paper's per-group rates).
SEQUENCE_GROUP = "sequence"

#: Fraction of sequences that arm a fault (as a rational, so the seeded
#: draw stays exact): 2 of every 3 planned sequences inject, the rest
#: stay clean for contrast.
_FAULT_NUMERATOR, _FAULT_DENOMINATOR = 2, 3


def sequence_name(index: int) -> str:
    """The plan identity of sequence ``index`` (``seq00042``)."""
    return f"seq{index:05d}"


@dataclass(frozen=True)
class SequenceStep:
    """One call in a sequence: a MuT plus concrete test-value names.

    ``fault_family`` is the triage-replay form of the campaign's
    injection decision: the campaign addresses the armed step by index
    (:attr:`SequencePlan.fault_step`), but delta-debugging drops steps,
    so a replayed step carries its own fault marker and the arming
    travels with the call it belongs to.
    """

    api: str
    mut_name: str
    value_names: tuple[str, ...]
    fault_family: str | None = None

    def describe(self) -> str:
        call = f"{self.mut_name}({', '.join(self.value_names)})"
        if self.fault_family is not None:
            call += f" [{self.fault_family} exhaustion]"
        return call


@dataclass(frozen=True)
class SequencePlan:
    """One planned k-call sequence (plus its resolved MuT objects).

    ``fault_family``/``fault_step`` record the injection decision:
    ``None`` for a clean sequence, else the armed family and the step
    whose call window it fires in.
    """

    name: str
    index: int
    steps: tuple[SequenceStep, ...]
    muts: tuple[MuT, ...]
    fault_family: str | None = None
    fault_step: int | None = None


class SequencePlanner:
    """Seeded generator of call-sequence plans for one variant.

    :param pool: the MuTs sequences may draw steps from (the variant's
        registry population, already filtered by availability and any
        ``--muts`` subset).  Sorted internally, so pool construction
        order cannot perturb plans.
    :param generator: the campaign's case generator (provides the
        per-parameter value pools).
    :param count: sequences to plan.
    :param length: calls per sequence (the paper-style ``k``).
    :param seed: campaign-level sequence seed; two campaigns at the
        same seed plan identical sequences.
    :param fault_families: families eligible for injection; empty
        disables injection entirely.
    """

    def __init__(
        self,
        pool: Sequence[MuT],
        generator: CaseGenerator,
        count: int,
        length: int,
        seed: int = 0,
        fault_families: Sequence[str] = FAULT_FAMILIES,
    ) -> None:
        self.pool = sorted(pool, key=lambda m: (m.api, m.name))
        self.generator = generator
        self.count = count
        self.length = length
        self.seed = seed
        self.fault_families = tuple(fault_families)
        for family in self.fault_families:
            if family not in FAULT_FAMILIES:
                raise ValueError(
                    f"unknown fault family {family!r}; expected a subset "
                    f"of {', '.join(FAULT_FAMILIES)}"
                )
        if self.length < 1:
            raise ValueError(f"sequence length must be >= 1, got {length}")

    def _rng(self, name: str) -> random.Random:
        """Per-sequence RNG, seeded like the case generator: a stable
        function of the sequence name (plus the campaign seed), never of
        interpreter hash state."""
        return random.Random(
            (self.seed & 0xFFFF_FFFF) * 0x1_0000_0000
            + zlib.crc32(name.encode("utf-8"))
        )

    def plan(self, index: int) -> SequencePlan:
        """The plan for sequence ``index`` (pure; any order, any
        process)."""
        if not self.pool:
            raise ValueError("cannot plan sequences from an empty MuT pool")
        name = sequence_name(index)
        rng = self._rng(name)
        steps: list[SequenceStep] = []
        muts: list[MuT] = []
        for _ in range(self.length):
            mut = self.pool[rng.randrange(len(self.pool))]
            values = tuple(
                pool[rng.randrange(len(pool))].name
                for pool in self.generator.pools(mut)
            )
            steps.append(SequenceStep(mut.api, mut.name, values))
            muts.append(mut)
        fault_family: str | None = None
        fault_step: int | None = None
        if self.fault_families and (
            rng.randrange(_FAULT_DENOMINATOR) < _FAULT_NUMERATOR
        ):
            fault_family = self.fault_families[
                rng.randrange(len(self.fault_families))
            ]
            fault_step = rng.randrange(self.length)
        return SequencePlan(
            name, index, tuple(steps), tuple(muts), fault_family, fault_step
        )

    def plans(self) -> list[SequencePlan]:
        return [self.plan(index) for index in range(self.count)]


# ----------------------------------------------------------------------
# The per-variant sequence-campaign loop
# ----------------------------------------------------------------------


def run_variant_sequences(
    personality: Personality,
    plans: Sequence[SequencePlan],
    generator: CaseGenerator,
    config: CampaignConfig,
    results: ResultSet,
    progress: ProgressFn | None,
    checkpoint: CampaignCheckpoint,
    checkpoint_path: str | pathlib.Path | None,
    checkpoint_every: int,
    quarantine: dict[str, str] | None = None,
    heartbeat: HeartbeatFn | None = None,
    recorder: Recorder | None = None,
    plan_slice: tuple[int, int] | None = None,
) -> None:
    """Run one variant's sequence plan (the ``--mode sequence`` inner
    loop) -- the sequence twin of
    :func:`repro.core.campaign.run_variant`, with the identical
    checkpoint / heartbeat / progress / quarantine / slice contract.

    Each plan position is one sequence; its result row lives under
    ``(variant, "seq", plan.name)`` with one case code per step, so the
    entry is restart-safe at any plan cursor exactly like the per-case
    loop: recorded sequences skip, machine wear restores, and a slice
    runs from the serial wear at its first position.  The machine
    reboots between sequences (each starts pristine) unless
    ``config.dirty_machine``, in which case wear accumulates across
    sequences -- a Catastrophic step still forces a reboot either way,
    since a crashed machine cannot run the next sequence.
    """
    quarantine = quarantine or {}
    start, stop = plan_slice if plan_slice is not None else (0, len(plans))
    machine = Machine(personality, watchdog_ticks=config.watchdog_ticks)
    wear = checkpoint.machine_wear.get(personality.key)
    if wear:
        machine.restore_wear(wear)
    executor = Executor(machine, generator)
    since_checkpoint = 0
    #: Lazy wear capture, exactly as in the per-case loop: snapshot the
    #: machine only when a checkpoint is written or the variant ends.
    wear_dirty = False

    def capture_wear() -> None:
        nonlocal wear_dirty
        if wear_dirty:
            checkpoint.machine_wear[personality.key] = machine.wear_state()
            wear_dirty = False

    def emit(event: "obs_events.Event") -> None:
        if recorder is not None:
            recorder.emit(event)

    def save_and_tell(position: int) -> None:
        capture_wear()
        save_checkpoint(checkpoint, checkpoint_path)
        emit(
            obs_events.CheckpointWritten(
                personality.key, str(checkpoint_path), position
            )
        )

    emit(obs_events.VariantStarted(personality.key, len(plans)))
    for position in range(start, stop):
        plan = plans[position]
        if results.has(personality.key, plan.name, api=SEQUENCE_API):
            continue  # already recorded by the interrupted run
        if results.is_quarantined(personality.key, SEQUENCE_API, plan.name):
            continue
        key = f"{SEQUENCE_API}:{plan.name}"
        if key in quarantine:
            results.quarantine(
                personality.key, SEQUENCE_API, plan.name, quarantine[key]
            )
            emit(
                obs_events.MutQuarantined(
                    personality.key, key, quarantine[key]
                )
            )
            checkpoint.cursors[personality.key] = position + 1
            since_checkpoint += 1
            if (
                checkpoint_path is not None
                and since_checkpoint >= checkpoint_every
            ):
                save_and_tell(position + 1)
                since_checkpoint = 0
            continue
        if progress is not None:
            progress(personality.key, plan.name, position, len(plans))
        result = results.new_result(
            personality.key, plan.name, SEQUENCE_API, SEQUENCE_GROUP
        )
        result.planned_cases = len(plan.steps)
        if recorder is not None:
            recorder.record(
                {
                    "kind": "sequence_started",
                    "variant": personality.key,
                    "sequence": plan.name,
                    "length": len(plan.steps),
                    "fault_family": plan.fault_family,
                    "fault_step": plan.fault_step,
                }
            )
        rebooted = _run_sequence(
            executor,
            machine,
            plan,
            config,
            result,
            personality,
            heartbeat,
            recorder,
            key,
        )
        if recorder is not None:
            recorder.emit(
                obs_events.MutFinished(
                    personality.key,
                    key,
                    SEQUENCE_GROUP,
                    len(result.codes),
                    _outcome_histogram(result.codes),
                    result.catastrophic,
                    result.interference_crash,
                    machine.clock.ticks,
                )
            )
        if recorder is not None:
            seq = result.sequence or {}
            recorder.record(
                {
                    "kind": "sequence_finished",
                    "variant": personality.key,
                    "sequence": plan.name,
                    "steps_run": len(result.codes),
                    "crash_step": seq.get("crash_step"),
                    "classification": seq.get("classification"),
                    "sim_ticks": machine.clock.ticks,
                }
            )
        if not config.dirty_machine and not rebooted:
            # Clean mode: every sequence starts on a pristine machine
            # (the crash path already rebooted).
            machine.reboot()
        checkpoint.cursors[personality.key] = position + 1
        wear_dirty = True
        since_checkpoint += 1
        if (
            checkpoint_path is not None
            and since_checkpoint >= checkpoint_every
        ):
            save_and_tell(position + 1)
            since_checkpoint = 0
    if plan_slice is not None:
        checkpoint.cursors[personality.key] = max(
            checkpoint.cursors.get(personality.key, 0), stop
        )
    capture_wear()
    emit(
        obs_events.VariantFinished(
            personality.key,
            results.total_cases(personality.key),
            machine.clock.ticks,
        )
    )
    if checkpoint_path is not None:
        save_and_tell(stop)


def _run_sequence(
    executor: Executor,
    machine: Machine,
    plan: SequencePlan,
    config: CampaignConfig,
    result: MuTResult,
    personality: Personality,
    heartbeat: HeartbeatFn | None,
    recorder: Recorder | None,
    key: str,
) -> bool:
    """Execute one sequence in one process; fill ``result`` (one case
    code per step plus the ``sequence`` attribution record).  Returns
    True when a Catastrophic step forced a machine reboot."""
    base_wear = machine.wear_state() if config.dirty_machine else None
    step_ticks: list[int] = []
    deltas: list[int] = []
    fault_fired = 0
    ctx: TestContext | None = None
    crash_detail = ""
    try:
        process = machine.spawn_process()
        ctx = TestContext(machine, process)
    except (SystemCrash, MachineCrashed) as exc:
        # A heavily worn machine (dirty mode) can go down spawning the
        # sequence's process: the sequence inherits the crash at step 0.
        result.record(0, CaseCode.CATASTROPHIC, False, str(exc), None)
        step_ticks.append(machine.clock.ticks)
        deltas.append(0)
        crash_detail = str(exc)
    if ctx is not None:
        for index, (step, mut) in enumerate(zip(plan.steps, plan.muts)):
            if heartbeat is not None:
                heartbeat(personality.key, key, index)
            case = TestCase(mut.name, index, step.value_names)
            inject = plan.fault_step == index and plan.fault_family is not None
            level_before = machine.corruption_level
            if inject:
                machine.faults.arm(plan.fault_family)
            try:
                outcome = executor.run_step(
                    ctx, mut, case, inject_fault=inject
                )
            finally:
                if inject:
                    fault_fired = machine.faults.fired
                    machine.faults.disarm()
            outcome = _apply_policies(config, outcome)
            result.record(
                index,
                outcome.code,
                outcome.exceptional_input,
                outcome.detail,
                outcome.value_names,
                error_code=outcome.error_code,
            )
            step_ticks.append(machine.clock.ticks)
            deltas.append(machine.corruption_level - level_before)
            if recorder is not None:
                # Same hot-path dict form as the per-case loop, so the
                # deterministic stream machinery treats a sequence like
                # one MuT whose cases are its steps.
                recorder.record(
                    {
                        "kind": "case_executed",
                        "variant": personality.key,
                        "mut": key,
                        "case": index,
                        "code": int(outcome.code),
                        "exceptional": outcome.exceptional_input,
                        "sim_ticks": machine.clock.ticks,
                    }
                )
                if inject and fault_fired:
                    recorder.record(
                        {
                            "kind": "fault_injected",
                            "variant": personality.key,
                            "sequence": plan.name,
                            "step": index,
                            "family": plan.fault_family,
                            "fired": fault_fired,
                        }
                    )
                if outcome.code is CaseCode.FAULT_ATOMICITY:
                    recorder.record(
                        {
                            "kind": "atomicity_violation",
                            "variant": personality.key,
                            "sequence": plan.name,
                            "step": index,
                            "family": plan.fault_family,
                        }
                    )
            if outcome.code.is_failure:
                # The sequence's task (or machine) is gone: Abort and
                # Restart kill the process the remaining steps needed,
                # an atomicity break invalidates their baseline, and a
                # Catastrophic crash takes the machine down.  The case
                # set is incomplete, exactly like a crashed per-case
                # MuT.
                crash_detail = outcome.detail
                break
    rebooted = False
    if machine.crashed:
        machine.reboot()
        rebooted = True
    elif ctx is not None:
        # End-of-sequence teardown: deferred constructor cleanups, then
        # the process (closing every handle/fd the sequence still held).
        ctx.run_cleanups()
        try:
            ctx.process.terminate()
        except (SimFault, MachineCrashed):  # pragma: no cover - defensive
            pass
    result.sequence = _attribute(
        plan, result, step_ticks, deltas, fault_fired, crash_detail, base_wear
    )
    return rebooted


def _attribute(
    plan: SequencePlan,
    result: MuTResult,
    step_ticks: list[int],
    deltas: list[int],
    fault_fired: int,
    crash_detail: str,
    base_wear: dict | None,
) -> dict:
    """Build the sequence record (format v3 ``sequence`` field): step
    identities, per-step sim ticks, the fault decision, and the crash
    attribution."""
    codes = [CaseCode(code) for code in result.codes]
    first_failure = next(
        (i for i, code in enumerate(codes) if code.is_failure), None
    )
    crash_step = next(
        (
            i
            for i, code in enumerate(codes)
            if code is CaseCode.CATASTROPHIC
        ),
        None,
    )
    origin_step: int | None = None
    classification: str | None = None
    if crash_step is not None:
        if _INTERFERENCE_MARKER in crash_detail:
            # The crash needed accumulated corruption: attribute it to
            # the first step of this sequence that corrupted shared
            # state.  No such step means the corruption was inherited
            # from pre-sequence wear (dirty-machine mode).
            result.interference_crash = True
            classification = "propagated"
            origin_step = next(
                (
                    i
                    for i, delta in enumerate(deltas[: crash_step + 1])
                    if delta > 0
                ),
                None,
            )
        else:
            classification = "origin"
            origin_step = crash_step
    record: dict = {
        "length": len(plan.steps),
        "steps": [
            {
                "api": step.api,
                "mut": step.mut_name,
                "values": list(step.value_names),
            }
            for step in plan.steps
        ],
        "step_ticks": step_ticks,
        "fault": (
            None
            if plan.fault_family is None
            else {
                "family": plan.fault_family,
                "step": plan.fault_step,
                "fired": fault_fired,
            }
        ),
        "first_failure": first_failure,
        "crash_step": crash_step,
        "origin_step": origin_step,
        "classification": classification,
    }
    if base_wear is not None and crash_step is not None:
        # A dirty-mode crash may need the inherited wear to reproduce:
        # carry the sequence's starting wear so triage can replay it.
        record["base_wear"] = base_wear
    return record
