"""Parallel campaign execution: one worker process per OS variant.

The paper ran its >2 million test cases over seven OS variants; each
variant boots an independent simulated :class:`~repro.sim.machine.Machine`,
so variants never share state and can run concurrently.  *Within* a
variant, however, machine wear (shared-arena corruption, the virtual
clock) accumulates across MuTs -- the source of the paper's ``*``
interference crashes -- so the unit of parallelism is the variant, never
the MuT.

:class:`ParallelCampaign` fans each variant out to a ``spawn``-started
``multiprocessing`` worker.  Workers rebuild the MuT/type registries
in-process (their call implementations are closures and cannot cross a
spawn boundary), run the exact serial per-variant loop
(:func:`repro.core.campaign.run_variant` via a single-variant
:class:`~repro.core.campaign.Campaign`), and stream progress events and
their final checkpoint back over a queue.  The parent merges the
per-variant shards into one :class:`CampaignCheckpoint` whose serialised
form is byte-identical to the serial run's -- result rows serialise
sorted by key, so completion order cannot leak into the output.

Checkpoint/resume semantics match the serial runner: with a
``checkpoint_path`` each worker checkpoints its own shard
(``<path>.<variant>.shard``) and the parent writes the combined
checkpoint (and removes the shards) once every variant finishes.  On
restart, a variant whose shard survived a killed worker resumes from the
shard; otherwise its slice is split out of the combined ``resume``
checkpoint.  Completed MuTs are skipped per variant either way.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pathlib
import queue
import signal
import time
import traceback
import warnings
from typing import Iterable, Sequence

from repro.core.campaign import Campaign, CampaignConfig, ProgressFn
from repro.core.results import ResultSet
from repro.obs import events as obs_events
from repro.obs.recorder import Recorder
from repro.core.results_io import (
    CampaignCheckpoint,
    ResultFormatError,
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_checkpoint,
    merge_checkpoints,
    save_checkpoint,
    shard_path,
    split_checkpoint,
)
from repro.sim.personality import Personality


def default_jobs(variant_count: int) -> int:
    """Worker count when the caller does not choose: one per variant,
    but never more than the machine has cores."""
    return max(1, min(variant_count, os.cpu_count() or 1))


def _fault_injector(events=None):
    """Env-triggered worker faults for resilience tests and CI drills.

    ``BALLISTA_FAULT_KILL="variant|api:name|case_index[|marker_path]"``
    SIGKILLs the worker when the matching case starts -- with a marker
    path the kill fires only once (the marker file records that it
    already happened, so the restarted worker survives), without one it
    fires on every attempt.  ``BALLISTA_FAULT_HANG`` with the same
    triple makes the worker loop in *real* Python, invisible to the
    simulated clock's watchdog -- exactly the failure mode the
    supervisor's wall-clock deadline exists for.

    Returns a callback for the worker's heartbeat path, or ``None``
    when neither variable is set (the common case: zero overhead).
    """
    kill_spec = os.environ.get("BALLISTA_FAULT_KILL")
    hang_spec = os.environ.get("BALLISTA_FAULT_HANG")
    if not kill_spec and not hang_spec:
        return None

    def parse(raw):
        parts = raw.split("|")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"fault spec must be 'variant|api:name|case[|marker]', "
                f"got {raw!r}"
            )
        marker = parts[3] if len(parts) == 4 else None
        return parts[0], parts[1], int(parts[2]), marker

    kill = parse(kill_spec) if kill_spec else None
    hang = parse(hang_spec) if hang_spec else None

    def fire(variant: str, mut: str, case_index: int) -> None:
        if kill and (variant, mut, case_index) == kill[:3]:
            marker = kill[3]
            if marker is None or not os.path.exists(marker):
                if marker is not None:
                    pathlib.Path(marker).touch()
                if events is not None:
                    # Flush already-queued telemetry to the parent before
                    # dying: SIGKILL would otherwise race the queue's
                    # feeder thread and silently drop the doomed
                    # attempt's partial case events.
                    events.close()
                    events.join_thread()
                os.kill(os.getpid(), signal.SIGKILL)
        if hang and (variant, mut, case_index) == hang[:3]:
            # A faithful hang: ignore polite SIGTERM (native code stuck
            # in a loop would too), so only the supervisor's SIGKILL
            # escalation ends it.
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time.sleep(0.05)

    return fire


class _ObsForwarder(Recorder):
    """Worker-side telemetry bridge: ships event dicts to the parent as
    ``("obs", tag, event_dict)`` queue messages (the tag is the
    worker's routing key -- the variant, unless the spec set one).

    Campaign-scope events are dropped here: each worker drives a
    single-variant :class:`Campaign`, whose campaign-level bookkeeping
    (``campaign_started``/``campaign_finished``, the final combined-
    checkpoint save) duplicates what the parent already emits for the
    whole run.  Variant-scoped events pass through untouched, so the
    parent's recorder sees exactly the serial runner's per-variant
    stream.
    """

    _DROP_KINDS = frozenset({"campaign_started", "campaign_finished"})

    def __init__(self, events_queue, tag: str) -> None:
        self._queue = events_queue
        self._tag = tag

    def record(self, data: dict) -> None:
        if data.get("kind") in self._DROP_KINDS:
            return
        if data.get("kind") == "checkpoint_written" and (
            data.get("scope") == "campaign"
        ):
            return  # the worker's "combined" save is just its shard
        self._queue.put(("obs", self._tag, data))


def _personality_by_key(key: str) -> Personality:
    from repro import ALL_VARIANTS

    for personality in ALL_VARIANTS:
        if personality.key == key:
            return personality
    raise KeyError(f"unknown variant key {key!r}")


def _variant_worker(spec: dict, events) -> None:
    """Child-process entry point: run one variant's slice.

    ``spec`` is a plain picklable dict (variant key, MuT-name filter,
    config fields, shard path, resume document, quarantine verdicts,
    heartbeat throttle); everything else -- registries, generator,
    machine -- is rebuilt inside the worker.  Emits ``("progress",
    tag, mut, position, total)`` events while running, throttled
    ``("heartbeat", tag, "api:name", case_index)`` liveness beacons
    for the supervisor's wall-clock watchdog, and finishes with either
    ``("done", tag, checkpoint_dict)`` or ``("error", tag,
    traceback_text)``.

    ``tag`` is ``spec["tag"]`` when present, else the variant key.  The
    campaign runners never set one (their unit of work *is* the
    variant), but the multi-tenant campaign service leases the same
    variant to several concurrent jobs and needs each worker's messages
    routed to its own shard, so it tags specs ``"<job>/<variant>"``.
    """
    key = spec["variant"]
    tag = spec.get("tag") or key
    try:
        personality = _personality_by_key(key)
        config = CampaignConfig(**spec["config"])
        campaign = Campaign([personality], config=config, muts=spec["muts"])
        shard = spec["shard_path"]
        resume = None
        if shard is not None and os.path.exists(shard):
            # A previous worker for this variant was killed mid-run:
            # its shard is strictly fresher than any combined resume
            # document, so the shard wins.
            try:
                resume = load_checkpoint(shard)
            except (OSError, ResultFormatError) as exc:
                # A shard that did not survive its worker's death is
                # set aside, not fatal: fall back to the combined
                # resume document (or a cold start) and re-earn it.
                try:
                    os.replace(shard, shard + ".corrupt")
                except OSError:  # pragma: no cover - best effort
                    pass
                warnings.warn(
                    f"shard checkpoint {shard} is unreadable ({exc}); "
                    f"worker [{key}] restarting without it"
                )
        if resume is None and spec["resume"] is not None:
            resume = checkpoint_from_dict(spec["resume"])

        def forward(variant: str, mut: str, position: int, total: int) -> None:
            events.put(("progress", tag, mut, position, total))

        fault = _fault_injector(events)
        recorder = _ObsForwarder(events, tag) if spec.get("events") else None
        hb_interval = spec.get("heartbeat_interval", 1.0)
        last_beat = 0.0

        def heartbeat(variant: str, mut: str, case_index: int) -> None:
            nonlocal last_beat
            if fault is not None:
                fault(variant, mut, case_index)
            now = time.monotonic()
            # Every MuT announces itself (case 0) so the supervisor can
            # attribute a death to the MuT in flight; within a MuT the
            # beacons are throttled to keep the queue quiet.
            if case_index == 0 or now - last_beat >= hb_interval:
                last_beat = now
                events.put(("heartbeat", tag, mut, case_index))

        campaign.run(
            progress=forward,
            checkpoint_path=shard,
            checkpoint_every=spec["checkpoint_every"],
            resume=resume,
            quarantine=spec.get("quarantine"),
            heartbeat=heartbeat,
            recorder=recorder,
        )
        events.put(
            ("done", tag, checkpoint_to_dict(campaign.last_checkpoint))
        )
    except BaseException:
        events.put(("error", tag, traceback.format_exc()))


class ParallelCampaign:
    """Drop-in campaign runner that fans variants out across processes.

    Mirrors :meth:`Campaign.run`'s signature and semantics; the merged
    result set (and the rendered tables built from it) is byte-identical
    to the serial run at the same cap.

    :param variants: OS personalities to test (must be among
        :data:`repro.ALL_VARIANTS` -- workers rebuild them by key).
    :param muts: optional subset of bare MuT names, as on
        :class:`Campaign`.  Custom registry objects cannot cross the
        spawn boundary; filter the default registry by name instead.
    :param jobs: concurrent worker processes (default: one per variant,
        capped at the core count).  ``jobs=1`` runs the serial
        :class:`Campaign` in-process, skipping spawn overhead.
    """

    def __init__(
        self,
        variants: Sequence[Personality],
        config: CampaignConfig | None = None,
        muts: Iterable[str] | None = None,
        jobs: int | None = None,
    ) -> None:
        self.variants = list(variants)
        self.config = config or CampaignConfig()
        self._muts = sorted(muts) if muts is not None else None
        self.jobs = jobs if jobs is not None else default_jobs(len(self.variants))
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.last_checkpoint: CampaignCheckpoint | None = None

    # ------------------------------------------------------------------

    def run(
        self,
        progress: ProgressFn | None = None,
        checkpoint_path: str | pathlib.Path | None = None,
        checkpoint_every: int = 25,
        resume: CampaignCheckpoint | str | pathlib.Path | None = None,
        recorder: Recorder | None = None,
    ) -> ResultSet:
        """Execute the campaign across worker processes and return the
        merged result set.  See :meth:`Campaign.run` for the checkpoint
        and resume contract -- it holds unchanged here, with shards as
        described in the module docstring.  ``recorder`` receives the
        workers' forwarded campaign events plus the parent's operational
        events (worker spawns/deaths, merges)."""
        keys = [p.key for p in self.variants]
        if isinstance(resume, (str, pathlib.Path)):
            resume = load_checkpoint(resume)
        if resume is not None:
            self._validate_resume(resume, keys)
        if self.jobs == 1:
            campaign = Campaign(
                self.variants, config=self.config, muts=self._muts
            )
            results = campaign.run(
                progress=progress,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                resume=resume,
                recorder=recorder,
            )
            self.last_checkpoint = campaign.last_checkpoint
            return results
        if recorder is not None:
            recorder.emit(
                obs_events.CampaignStarted(tuple(keys), self.config.cap)
            )

        if checkpoint_path is not None:
            # Write the combined document up front (the serial runner's
            # file exists from its first periodic save).  A run killed
            # before any merge then still leaves a loadable checkpoint
            # recording cap + variants; per-variant progress lives in
            # the shards, which win over this document on resume.
            initial = CampaignCheckpoint(
                resume.results if resume is not None else ResultSet(),
                cursors=dict(resume.cursors) if resume is not None else {},
                machine_wear=(
                    {k: dict(v) for k, v in resume.machine_wear.items()}
                    if resume is not None
                    else {}
                ),
                cap=self.config.cap,
                variants=keys,
            )
            save_checkpoint(initial, checkpoint_path)
        shard_base = self._shard_base(checkpoint_path)
        specs = self._build_specs(
            resume, shard_base, checkpoint_every, events=recorder is not None
        )
        try:
            shards = self._run_workers(specs, progress, recorder)
            merged = merge_checkpoints(
                [shards[key] for key in keys],
                cap=self.config.cap,
                variants=keys,
            )
            merged.complete = True
            self.last_checkpoint = merged
            if checkpoint_path is not None:
                save_checkpoint(merged, checkpoint_path)
                if recorder is not None:
                    recorder.emit(
                        obs_events.CheckpointWritten(
                            "campaign",
                            str(checkpoint_path),
                            len(merged.results),
                        )
                    )
            if shard_base is not None:
                for spec in specs:
                    if spec["shard_path"] is not None:
                        try:
                            os.remove(spec["shard_path"])
                        except OSError:  # pragma: no cover - already gone
                            pass
        finally:
            self._release_shard_base()
        if recorder is not None:
            recorder.emit(
                obs_events.CampaignFinished(merged.results.total_cases())
            )
        return merged.results

    # ------------------------------------------------------------------

    def _shard_base(
        self, checkpoint_path: str | pathlib.Path | None
    ) -> str | pathlib.Path | None:
        """Where workers checkpoint their shards.  The base runner only
        shards when the caller asked for checkpoints; the supervisor
        overrides this (restart-from-shard needs shards even when the
        user did not request a checkpoint file)."""
        return checkpoint_path

    def _release_shard_base(self) -> None:
        """Hook for subclasses that fabricate a temporary shard base."""

    def _heartbeat_interval(self) -> float:
        """Worker-side throttle for heartbeat events.  The base runner
        has no watchdog, so a slow beacon is plenty."""
        return 1.0

    def _validate_resume(
        self, resume: CampaignCheckpoint, keys: list[str]
    ) -> None:
        """The serial runner's compatibility checks, applied up front so
        an incompatible checkpoint fails before any worker spawns."""
        if not resume.cap:
            warnings.warn(
                f"checkpoint does not record its cap; resuming at "
                f"cap={self.config.cap} without compatibility checking",
                stacklevel=3,
            )
        elif resume.cap != self.config.cap:
            raise ValueError(
                f"checkpoint was taken at cap={resume.cap}, cannot "
                f"resume at cap={self.config.cap}"
            )
        if resume.variants is not None and set(resume.variants) != set(keys):
            raise ValueError(
                f"checkpoint was taken for variants "
                f"{sorted(resume.variants)}, cannot resume with "
                f"{sorted(keys)}"
            )

    def _build_specs(
        self,
        resume: CampaignCheckpoint | None,
        shard_base: str | pathlib.Path | None,
        checkpoint_every: int,
        events: bool = False,
    ) -> list[dict]:
        config_fields = {
            "cap": self.config.cap,
            "watchdog_ticks": self.config.watchdog_ticks,
            "machine_per_case": self.config.machine_per_case,
            "count_thrown_exceptions_as_abort": (
                self.config.count_thrown_exceptions_as_abort
            ),
        }
        specs = []
        for personality in self.variants:
            key = personality.key
            resume_doc = None
            if resume is not None:
                shard = split_checkpoint(resume, key)
                shard.complete = False
                resume_doc = checkpoint_to_dict(shard)
            specs.append(
                {
                    "variant": key,
                    "muts": self._muts,
                    "config": config_fields,
                    "shard_path": (
                        None
                        if shard_base is None
                        else str(shard_path(shard_base, key))
                    ),
                    "checkpoint_every": checkpoint_every,
                    "resume": resume_doc,
                    "quarantine": {},
                    "heartbeat_interval": self._heartbeat_interval(),
                    "events": events,
                }
            )
        return specs

    def _run_workers(
        self,
        specs: list[dict],
        progress: ProgressFn | None,
        recorder: Recorder | None = None,
    ) -> dict[str, CampaignCheckpoint]:
        """Spawn at most ``self.jobs`` concurrent workers, pump their
        event queue, and collect one finished shard per variant."""
        ctx = multiprocessing.get_context("spawn")
        events = ctx.Queue()
        pending = list(specs)
        running: dict[str, object] = {}
        shards: dict[str, CampaignCheckpoint] = {}
        errors: dict[str, str] = {}
        try:
            while pending or running:
                while pending and len(running) < self.jobs:
                    spec = pending.pop(0)
                    worker = self._spawn(ctx, spec, events)
                    running[spec.get("tag") or spec["variant"]] = worker
                    if recorder is not None:
                        recorder.emit(
                            obs_events.WorkerSpawned(
                                spec["variant"], worker.pid or 0, 1
                            )
                        )
                try:
                    message = events.get(timeout=0.2)
                except queue.Empty:
                    # Only scan for silent deaths when a worker's
                    # sentinel actually reports one -- an idle pump over
                    # healthy workers must not burn a liveness sweep
                    # (nor emit reap telemetry) every 200 ms tick.
                    dead = self._dead_workers(running)
                    if dead:
                        self._reap_silent_deaths(
                            running, errors, dead, recorder
                        )
                    continue
                kind, key = message[0], message[1]
                if kind == "progress":
                    if progress is not None:
                        progress(*message[1:])
                elif kind == "heartbeat":
                    pass  # liveness beacons; only the supervisor consumes them
                elif kind == "obs":
                    if recorder is not None:
                        recorder.record(message[2])
                elif kind == "done":
                    shards[key] = checkpoint_from_dict(message[2])
                    self._retire(running, key)
                    if recorder is not None:
                        recorder.emit(obs_events.WorkerFinished(key))
                else:  # "error"
                    errors[key] = message[2]
                    self._retire(running, key)
                    if recorder is not None:
                        recorder.emit(
                            obs_events.WorkerDied(key, "crashed", message[2])
                        )
        finally:
            self._stop_workers(running, events)
        if errors:
            detail = "\n".join(
                f"--- worker [{key}] ---\n{text}"
                for key, text in sorted(errors.items())
            )
            raise RuntimeError(
                f"parallel campaign worker(s) failed for "
                f"{sorted(errors)}:\n{detail}"
            )
        return shards

    @staticmethod
    def _spawn(ctx, spec: dict, events):
        """Start one variant worker process from its spec."""
        worker = ctx.Process(
            target=_variant_worker, args=(spec, events), daemon=True
        )
        worker.start()
        return worker

    @staticmethod
    def _retire(running: dict[str, object], key: str) -> None:
        worker = running.pop(key, None)
        if worker is not None:
            worker.join(timeout=10)

    @staticmethod
    def _dead_workers(running: dict[str, object]) -> list[str]:
        """Variant keys whose worker process has exited, checked via the
        process sentinels in one ``connection.wait`` poll -- the cheap
        liveness gate in front of the reap scan."""
        if not running:
            return []
        sentinels = {w.sentinel: k for k, w in running.items()}
        try:
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=0
            )
        except OSError:  # pragma: no cover - sentinel closed under us
            return [k for k, w in running.items() if not w.is_alive()]
        return [sentinels[s] for s in ready]

    @staticmethod
    def _reap_silent_deaths(
        running: dict[str, object],
        errors: dict[str, str],
        dead: list[str],
        recorder: Recorder | None = None,
    ) -> None:
        """A worker killed from outside (OOM, SIGKILL) never posts a
        message; notice its nonzero exit code so the run fails loudly
        instead of hanging.  Its shard stays on disk for the next run.
        ``dead`` is the sentinel-gated candidate list -- only workers
        whose process has actually exited are examined."""
        for key in dead:
            worker = running.get(key)
            if worker is None:
                continue
            worker.join(timeout=1.0)  # let the exit code settle
            if not worker.is_alive() and worker.exitcode != 0:
                errors[key] = (
                    f"worker exited with code {worker.exitcode} without "
                    f"reporting a result"
                )
                del running[key]
                if recorder is not None:
                    recorder.emit(
                        obs_events.WorkerDied(
                            key,
                            "killed",
                            "exited without reporting a result",
                            exitcode=worker.exitcode,
                        )
                    )

    @staticmethod
    def _stop_workers(
        running: dict[str, object], events, grace: float = 5.0
    ) -> None:
        """Terminate surviving workers without deadlocking on the queue.

        A worker mid-``Queue.put`` when the parent stops pumping can
        have its feeder thread blocked on a full pipe; the process then
        cannot flush-and-exit, and one that ignores SIGTERM (a hung MuT
        loop, the BALLISTA_FAULT_HANG injector) would previously leak
        past ``join(timeout=5)``.  Drain the queue while the workers
        shut down so blocked feeders can finish, then escalate to
        SIGKILL for anything still alive.
        """
        if not running:
            return
        for worker in running.values():
            worker.terminate()
        deadline = time.monotonic() + grace
        while any(w.is_alive() for w in running.values()):
            if time.monotonic() >= deadline:
                break
            try:
                events.get(timeout=0.05)
            except queue.Empty:
                pass
        for worker in running.values():
            worker.join(timeout=0.5)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=5)
