"""Parallel campaign execution: one worker process per OS variant.

The paper ran its >2 million test cases over seven OS variants; each
variant boots an independent simulated :class:`~repro.sim.machine.Machine`,
so variants never share state and can run concurrently.  *Within* a
variant, however, machine wear (shared-arena corruption, the virtual
clock) accumulates across MuTs -- the source of the paper's ``*``
interference crashes -- so the unit of parallelism is the variant, never
the MuT.

:class:`ParallelCampaign` fans each variant out to a ``spawn``-started
``multiprocessing`` worker.  Workers rebuild the MuT/type registries
in-process (their call implementations are closures and cannot cross a
spawn boundary), run the exact serial per-variant loop
(:func:`repro.core.campaign.run_variant` via a single-variant
:class:`~repro.core.campaign.Campaign`), and stream progress events and
their final checkpoint back over a queue.  The parent merges the
per-variant shards into one :class:`CampaignCheckpoint` whose serialised
form is byte-identical to the serial run's -- result rows serialise
sorted by key, so completion order cannot leak into the output.

Checkpoint/resume semantics match the serial runner: with a
``checkpoint_path`` each worker checkpoints its own shard
(``<path>.<variant>.shard``) and the parent writes the combined
checkpoint (and removes the shards) once every variant finishes.  On
restart, a variant whose shard survived a killed worker resumes from the
shard; otherwise its slice is split out of the combined ``resume``
checkpoint.  Completed MuTs are skipped per variant either way.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pathlib
import queue
import signal
import time
import traceback
import warnings
from typing import Iterable, Sequence

from repro.core.atlas import load_atlas, save_atlas
from repro.core.campaign import Campaign, CampaignConfig, ProgressFn
from repro.core.results import ResultSet
from repro.obs import events as obs_events
from repro.obs.recorder import Recorder
from repro.core.results_io import (
    CampaignCheckpoint,
    ResultFormatError,
    checkpoint_from_dict,
    checkpoint_plan,
    checkpoint_to_dict,
    load_checkpoint,
    merge_checkpoints,
    save_checkpoint,
    shard_path,
    split_checkpoint,
    wear_fingerprint,
)
from repro.sim.personality import Personality


def default_jobs(task_count: int) -> int:
    """Worker count when the caller does not choose: one per unit of
    schedulable work -- a (variant, shard) slice -- but never more than
    the machine has cores.  Before intra-variant sharding this capped
    at the variant count (seven), silently wasting every core past
    seven; pass the *total shard count* so big boxes fill up."""
    return max(1, min(task_count, os.cpu_count() or 1))


def default_shards() -> int:
    """Per-variant slice count: ``BALLISTA_SHARDS`` env var, default 1
    (no intra-variant sharding).  Raises :class:`ValueError` naming the
    variable on junk, so the CLI can report it cleanly."""
    raw = os.environ.get("BALLISTA_SHARDS", "1")
    try:
        shards = int(raw)
    except ValueError:
        raise ValueError(
            f"BALLISTA_SHARDS must be an integer slice count per "
            f"variant (e.g. 4), got {raw!r}"
        ) from None
    if shards < 1:
        raise ValueError(
            f"BALLISTA_SHARDS must be a positive integer, got {shards}"
        )
    return shards


def shard_bounds(total: int, shards: int) -> list[tuple[int, int]]:
    """Deterministically slice ``total`` plan positions into at most
    ``shards`` contiguous half-open ``(start, stop)`` ranges whose sizes
    differ by at most one (earlier slices take the remainder).  Never
    emits an empty slice; an empty plan yields one ``(0, 0)`` slice."""
    if total <= 0:
        return [(0, 0)]
    shards = max(1, min(shards, total))
    size, extra = divmod(total, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + size + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def shard_tag(variant: str, index: int) -> str:
    """Routing key for one (variant, shard) slice's worker."""
    return f"{variant}#{index}"


def config_spec_fields(config: CampaignConfig) -> dict:
    """The plain-dict form of a :class:`CampaignConfig` that crosses the
    spawn boundary in worker specs.  Every field rides along -- a field
    omitted here would silently reset to its default inside the worker,
    so sequence-mode workers would run per-case plans."""
    return {
        "cap": config.cap,
        "watchdog_ticks": config.watchdog_ticks,
        "machine_per_case": config.machine_per_case,
        "count_thrown_exceptions_as_abort": (
            config.count_thrown_exceptions_as_abort
        ),
        "mode": config.mode,
        "sequences": config.sequences,
        "sequence_length": config.sequence_length,
        "sequence_seed": config.sequence_seed,
        "dirty_machine": config.dirty_machine,
        "fault_families": list(config.fault_families),
    }


def _fault_injector(events=None):
    """Env-triggered worker faults for resilience tests and CI drills.

    ``BALLISTA_FAULT_KILL="variant|api:name|case_index[|marker_path]"``
    SIGKILLs the worker when the matching case starts -- with a marker
    path the kill fires only once (the marker file records that it
    already happened, so the restarted worker survives), without one it
    fires on every attempt.  ``BALLISTA_FAULT_HANG`` with the same
    triple makes the worker loop in *real* Python, invisible to the
    simulated clock's watchdog -- exactly the failure mode the
    supervisor's wall-clock deadline exists for.

    Returns a callback for the worker's heartbeat path, or ``None``
    when neither variable is set (the common case: zero overhead).
    """
    kill_spec = os.environ.get("BALLISTA_FAULT_KILL")
    hang_spec = os.environ.get("BALLISTA_FAULT_HANG")
    if not kill_spec and not hang_spec:
        return None

    def parse(raw):
        parts = raw.split("|")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"fault spec must be 'variant|api:name|case[|marker]', "
                f"got {raw!r}"
            )
        marker = parts[3] if len(parts) == 4 else None
        return parts[0], parts[1], int(parts[2]), marker

    kill = parse(kill_spec) if kill_spec else None
    hang = parse(hang_spec) if hang_spec else None

    def fire(variant: str, mut: str, case_index: int) -> None:
        if kill and (variant, mut, case_index) == kill[:3]:
            marker = kill[3]
            if marker is None or not os.path.exists(marker):
                if marker is not None:
                    pathlib.Path(marker).touch()
                if events is not None:
                    # Flush already-queued telemetry to the parent before
                    # dying: SIGKILL would otherwise race the queue's
                    # feeder thread and silently drop the doomed
                    # attempt's partial case events.
                    events.close()
                    events.join_thread()
                os.kill(os.getpid(), signal.SIGKILL)
        if hang and (variant, mut, case_index) == hang[:3]:
            # A faithful hang: ignore polite SIGTERM (native code stuck
            # in a loop would too), so only the supervisor's SIGKILL
            # escalation ends it.
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            while True:
                time.sleep(0.05)

    return fire


class _ObsForwarder(Recorder):
    """Worker-side telemetry bridge: ships event dicts to the parent as
    ``("obs", tag, event_dict)`` queue messages (the tag is the
    worker's routing key -- the variant, unless the spec set one).

    Campaign-scope events are dropped here: each worker drives a
    single-variant :class:`Campaign`, whose campaign-level bookkeeping
    (``campaign_started``/``campaign_finished``, the final combined-
    checkpoint save) duplicates what the parent already emits for the
    whole run.  Variant-scoped events pass through untouched, so the
    parent's recorder sees exactly the serial runner's per-variant
    stream.
    """

    _DROP_KINDS = frozenset({"campaign_started", "campaign_finished"})

    def __init__(self, events_queue, tag: str) -> None:
        self._queue = events_queue
        self._tag = tag

    def record(self, data: dict) -> None:
        if data.get("kind") in self._DROP_KINDS:
            return
        if data.get("kind") == "checkpoint_written" and (
            data.get("scope") == "campaign"
        ):
            return  # the worker's "combined" save is just its shard
        self._queue.put(("obs", self._tag, data))


def _shard_file_matches(resume: CampaignCheckpoint, shard: dict | None) -> bool:
    """Whether an on-disk shard checkpoint belongs to the slice this
    worker was assigned.  A shard file left by a killed worker is only a
    valid resume point if it records the same slice identity (variant,
    index, span) *and* the same execution basis (base wear, resumed
    flag) -- a file from another grid or a pre-replay speculative
    attempt must be discarded, not resumed."""
    if shard is None:
        return resume.shard is None
    info = resume.shard
    if info is None:
        return False
    return (
        info.get("variant") == shard.get("variant")
        and info.get("index") == shard.get("index")
        and info.get("start") == shard.get("start")
        and info.get("stop") == shard.get("stop")
        and bool(info.get("resumed")) == bool(shard.get("resumed"))
        and wear_fingerprint(info.get("base_wear"))
        == wear_fingerprint(shard.get("base_wear"))
    )


def _personality_by_key(key: str) -> Personality:
    from repro import ALL_VARIANTS

    for personality in ALL_VARIANTS:
        if personality.key == key:
            return personality
    raise KeyError(f"unknown variant key {key!r}")


def _variant_worker(spec: dict, events) -> None:
    """Child-process entry point: run one variant's slice.

    ``spec`` is a plain picklable dict (variant key, MuT-name filter,
    config fields, shard path, resume document, quarantine verdicts,
    heartbeat throttle); everything else -- registries, generator,
    machine -- is rebuilt inside the worker.  Emits ``("progress",
    tag, mut, position, total)`` events while running, throttled
    ``("heartbeat", tag, "api:name", case_index)`` liveness beacons
    for the supervisor's wall-clock watchdog, and finishes with either
    ``("done", tag, checkpoint_dict)`` or ``("error", tag,
    traceback_text)``.

    ``tag`` is ``spec["tag"]`` when present, else the variant key.  The
    campaign runners never set one (their unit of work *is* the
    variant), but the multi-tenant campaign service leases the same
    variant to several concurrent jobs and needs each worker's messages
    routed to its own shard, so it tags specs ``"<job>/<variant>"``.
    """
    key = spec["variant"]
    tag = spec.get("tag") or key
    try:
        personality = _personality_by_key(key)
        config = CampaignConfig(**spec["config"])
        campaign = Campaign(
            [personality],
            config=config,
            muts=spec["muts"],
            shard=spec.get("shard"),
        )
        shard = spec["shard_path"]
        resume = None
        if shard is not None and os.path.exists(shard):
            # A previous worker for this variant was killed mid-run:
            # its shard is strictly fresher than any combined resume
            # document, so the shard wins.
            try:
                resume = load_checkpoint(shard)
            except (OSError, ResultFormatError) as exc:
                # A shard that did not survive its worker's death is
                # set aside, not fatal: fall back to the combined
                # resume document (or a cold start) and re-earn it.
                try:
                    os.replace(shard, shard + ".corrupt")
                except OSError:  # pragma: no cover - best effort
                    pass
                warnings.warn(
                    f"shard checkpoint {shard} is unreadable ({exc}); "
                    f"worker [{key}] restarting without it"
                )
        if resume is not None and not _shard_file_matches(
            resume, spec.get("shard")
        ):
            # The file on disk was written under a different slice
            # assignment (other grid, other base wear, or a replay
            # rebased this slice onto the true frontier).  Its rows
            # would splice a foreign wear trajectory into this slice,
            # so ignore it and re-earn the work.
            warnings.warn(
                f"shard checkpoint {shard} was written for a different "
                f"slice assignment; worker [{tag}] restarting without it"
            )
            resume = None
        if resume is None and spec["resume"] is not None:
            resume = checkpoint_from_dict(spec["resume"])

        def forward(variant: str, mut: str, position: int, total: int) -> None:
            events.put(("progress", tag, mut, position, total))

        fault = _fault_injector(events)
        recorder = _ObsForwarder(events, tag) if spec.get("events") else None
        hb_interval = spec.get("heartbeat_interval", 1.0)
        last_beat = 0.0

        def heartbeat(variant: str, mut: str, case_index: int) -> None:
            nonlocal last_beat
            if fault is not None:
                fault(variant, mut, case_index)
            now = time.monotonic()
            # Every MuT announces itself (case 0) so the supervisor can
            # attribute a death to the MuT in flight; within a MuT the
            # beacons are throttled to keep the queue quiet.
            if case_index == 0 or now - last_beat >= hb_interval:
                last_beat = now
                events.put(("heartbeat", tag, mut, case_index))

        campaign.run(
            progress=forward,
            checkpoint_path=shard,
            checkpoint_every=spec["checkpoint_every"],
            resume=resume,
            quarantine=spec.get("quarantine"),
            heartbeat=heartbeat,
            recorder=recorder,
        )
        events.put(
            ("done", tag, checkpoint_to_dict(campaign.last_checkpoint))
        )
    except BaseException:
        events.put(("error", tag, traceback.format_exc()))


class _SeamPlanner:
    """Settlement cascade for intra-variant shard slices.

    A slice is only *byte-faithful* if it executed from the exact
    machine wear the serial run would show at its first plan position.
    Slice 0's base (fresh boot, or the resume document) is authoritative
    by construction; every later slice runs from either the settled end
    wear of its predecessor (cold: the chain degenerates to a pipeline)
    or a speculative seam from the wear atlas (warm: all slices launch
    at once).  When a slice finishes, the planner walks the variant's
    chain from the front and *settles* each finished slice whose
    self-reported ``base_wear`` fingerprint matches its predecessor's
    settled end wear; a mismatch means the speculation was stale, so the
    slice's results are discarded and its spec is rebased onto the true
    frontier and re-queued.  Each slice replays at most once per
    settlement (its rebased base is authoritative), so a fully stale
    atlas costs one extra pass, never a livelock.

    ``resumed`` slices (their basis is a checkpoint document, the same
    trust extended to any resume) settle without a seam check, exactly
    as :func:`merge_checkpoints` treats them.
    """

    def __init__(self) -> None:
        #: variant -> slice entries in plan order (synthetic pre-settled
        #: resume prefixes first, then one entry per worker spec).
        self._chains: dict[str, list[dict]] = {}
        self._by_tag: dict[str, dict] = {}
        self._spawned: set[str] = set()
        #: variant -> {plan position -> settled wear} for the atlas.
        self._learned: dict[str, dict[int, dict]] = {}
        self.replays = 0

    def add_settled(
        self,
        variant: str,
        start: int,
        stop: int,
        end_known: bool,
        end_wear: dict | None,
    ) -> None:
        """A slice completed by a previous run (resume prefix): settled
        up front, no worker.  ``end_known`` is False when the resume
        document's wear frontier lies beyond this slice -- harmless,
        because every successor up to that frontier is itself settled or
        resumed and never consults this end."""
        self._chains.setdefault(variant, []).append(
            {
                "tag": None,
                "spec": None,
                "start": start,
                "stop": stop,
                "settled": True,
                "end_known": end_known,
                "end": end_wear,
                "done": None,
            }
        )

    def add_spec(self, spec: dict, base_known: bool) -> None:
        """Register a worker spec (in plan order per variant).  Specs
        with an unknown base stay unschedulable until a predecessor
        settles and hands them its end wear."""
        entry = {
            "tag": spec["tag"],
            "spec": spec,
            "start": spec["shard"]["start"],
            "stop": spec["shard"]["stop"],
            "settled": False,
            "end_known": False,
            "end": None,
            "done": None,
            "known": base_known,
        }
        self._chains.setdefault(spec["variant"], []).append(entry)
        self._by_tag[spec["tag"]] = entry

    def ready(self, tag: str) -> bool:
        """Whether the slice's execution base is known (authoritative or
        speculative) so its worker may spawn."""
        entry = self._by_tag.get(tag)
        return entry is None or entry["known"]

    def mark_spawned(self, tag: str) -> None:
        self._spawned.add(tag)

    def learned(self) -> dict[str, dict[int, dict]]:
        """Settled seam wears keyed by plan position, for the atlas."""
        return self._learned

    def on_done(
        self, tag: str, checkpoint: CampaignCheckpoint
    ) -> tuple[list[tuple[str, CampaignCheckpoint]], list[dict]]:
        """Absorb a finished slice and run the settlement cascade.

        Returns ``(accepted, replays)``: slices newly settled (tag plus
        their final checkpoint, ready for the merge) and specs whose
        speculative base proved stale (rebased, to be re-queued).
        """
        entry = self._by_tag[tag]
        entry["done"] = checkpoint
        variant = entry["spec"]["variant"]
        chain = self._chains[variant]
        accepted: list[tuple[str, CampaignCheckpoint]] = []
        replays: list[dict] = []
        prev_known, prev_end = True, None  # plan position 0: fresh boot
        for item in chain:
            if item["settled"]:
                prev_known, prev_end = item["end_known"], item["end"]
                continue
            done = item["done"]
            if done is None:
                break  # still running or unspawned; the cascade waits here
            info = done.shard or {}
            if info.get("resumed") or (
                prev_known
                and wear_fingerprint(info.get("base_wear"))
                == wear_fingerprint(prev_end)
            ):
                item["settled"] = True
                item["end_known"] = True
                if variant in done.machine_wear:
                    item["end"] = done.machine_wear.get(variant)
                elif prev_known:
                    # The slice never touched the machine (everything
                    # skipped, or per-case machines): wear unchanged.
                    item["end"] = prev_end
                else:  # pragma: no cover - resumed slice, wear unknown
                    item["end_known"] = False
                if item["end_known"] and item["end"] is not None:
                    self._learned.setdefault(variant, {})[item["stop"]] = item[
                        "end"
                    ]
                accepted.append((item["tag"], done))
                self._push_base(chain, item)
                prev_known, prev_end = item["end_known"], item["end"]
            else:
                # Stale speculation: the base this slice actually ran
                # from is not the serial wear at its first position.
                # Discard the attempt and replay from the true frontier.
                item["done"] = None
                spec = item["spec"]
                spec["shard"] = dict(
                    spec["shard"], base_wear=prev_end, resumed=False
                )
                spec["resume"] = None
                item["known"] = True
                self._spawned.discard(item["tag"])
                self.replays += 1
                replays.append(spec)
                break
        return accepted, replays

    def _push_base(self, chain: list[dict], item: dict) -> None:
        """Hand a freshly settled slice's end wear to its successor as
        the authoritative base -- unless the successor already spawned
        (its own settlement check will judge the base it actually used)
        or is a resumed slice (its basis is the resume document)."""
        index = chain.index(item)
        if index + 1 >= len(chain) or not item["end_known"]:
            return
        successor = chain[index + 1]
        spec = successor["spec"]
        if (
            spec is None
            or successor["settled"]
            or successor["tag"] in self._spawned
            or spec["shard"].get("resumed")
        ):
            return
        spec["shard"] = dict(spec["shard"], base_wear=item["end"])
        successor["known"] = True


class ParallelCampaign:
    """Drop-in campaign runner that fans variants out across processes.

    Mirrors :meth:`Campaign.run`'s signature and semantics; the merged
    result set (and the rendered tables built from it) is byte-identical
    to the serial run at the same cap.

    :param variants: OS personalities to test (must be among
        :data:`repro.ALL_VARIANTS` -- workers rebuild them by key).
    :param muts: optional subset of bare MuT names, as on
        :class:`Campaign`.  Custom registry objects cannot cross the
        spawn boundary; filter the default registry by name instead.
    :param jobs: concurrent worker processes (default: one per
        schedulable slice -- ``variants * shards`` -- capped at the core
        count).  ``jobs=1`` runs the serial :class:`Campaign`
        in-process, skipping spawn overhead.
    :param shards: slices per variant (default 1: one worker per
        variant, the pre-sharding behaviour).  With ``shards > 1`` each
        variant's plan is cut into that many contiguous slices and all
        slices across all variants feed one worker pool, so parallelism
        is no longer capped at the variant count.  Slices of one variant
        share a simulated machine, so each runs from the exact serial
        wear at its first plan position -- learned from its predecessor
        (cold) or a wear atlas (warm); see :class:`_SeamPlanner`.
    :param atlas_path: optional wear-atlas file (see
        :mod:`repro.core.atlas`).  Read for speculative slice bases at
        startup, updated with settled seams after a successful run.
        Purely an accelerator; results are byte-identical with or
        without it.
    """

    def __init__(
        self,
        variants: Sequence[Personality],
        config: CampaignConfig | None = None,
        muts: Iterable[str] | None = None,
        jobs: int | None = None,
        shards: int | None = None,
        atlas_path: str | pathlib.Path | None = None,
    ) -> None:
        self.variants = list(variants)
        self.config = config or CampaignConfig()
        self._muts = sorted(muts) if muts is not None else None
        self.shards = shards if shards is not None else default_shards()
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        self.atlas_path = atlas_path
        self.jobs = (
            jobs
            if jobs is not None
            else default_jobs(len(self.variants) * self.shards)
        )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.last_checkpoint: CampaignCheckpoint | None = None
        #: Settlement planner for the current sharded run (None when
        #: shards == 1 or between runs).
        self._planner: _SeamPlanner | None = None
        #: Per-variant plan identities of the current sharded run.
        self._plans: dict[str, list] = {}
        #: Progress aggregation state: shard progress collapses into one
        #: per-variant line (see :meth:`_forward_progress`).
        self._progress_ctx: dict | None = None

    # ------------------------------------------------------------------

    def run(
        self,
        progress: ProgressFn | None = None,
        checkpoint_path: str | pathlib.Path | None = None,
        checkpoint_every: int = 25,
        resume: CampaignCheckpoint | str | pathlib.Path | None = None,
        recorder: Recorder | None = None,
    ) -> ResultSet:
        """Execute the campaign across worker processes and return the
        merged result set.  See :meth:`Campaign.run` for the checkpoint
        and resume contract -- it holds unchanged here, with shards as
        described in the module docstring.  ``recorder`` receives the
        workers' forwarded campaign events plus the parent's operational
        events (worker spawns/deaths, merges)."""
        keys = [p.key for p in self.variants]
        if isinstance(resume, (str, pathlib.Path)):
            resume = load_checkpoint(resume)
        if resume is not None:
            self._validate_resume(resume, keys)
        if self.jobs == 1:
            campaign = Campaign(
                self.variants, config=self.config, muts=self._muts
            )
            results = campaign.run(
                progress=progress,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                resume=resume,
                recorder=recorder,
            )
            self.last_checkpoint = campaign.last_checkpoint
            return results
        if recorder is not None:
            recorder.emit(
                obs_events.CampaignStarted(tuple(keys), self.config.cap)
            )

        if checkpoint_path is not None:
            # Write the combined document up front (the serial runner's
            # file exists from its first periodic save).  A run killed
            # before any merge then still leaves a loadable checkpoint
            # recording cap + variants; per-variant progress lives in
            # the shards, which win over this document on resume.
            initial = CampaignCheckpoint(
                resume.results if resume is not None else ResultSet(),
                cursors=dict(resume.cursors) if resume is not None else {},
                machine_wear=(
                    {k: dict(v) for k, v in resume.machine_wear.items()}
                    if resume is not None
                    else {}
                ),
                cap=self.config.cap,
                variants=keys,
                plan=checkpoint_plan(self.config),
            )
            save_checkpoint(initial, checkpoint_path)
        shard_base = self._shard_base(checkpoint_path)
        if self.shards > 1:
            specs, synthetic = self._build_shard_specs(
                resume,
                shard_base,
                checkpoint_every,
                events=recorder is not None,
            )
        else:
            specs = self._build_specs(
                resume,
                shard_base,
                checkpoint_every,
                events=recorder is not None,
            )
            synthetic = []
        try:
            shards = self._run_workers(specs, progress, recorder)
            if self.shards > 1:
                entries = synthetic + [shards[spec["tag"]] for spec in specs]
            else:
                entries = [shards[key] for key in keys]
            merged = merge_checkpoints(
                entries,
                cap=self.config.cap,
                variants=keys,
            )
            merged.complete = True
            self._save_atlas_seams()
            self.last_checkpoint = merged
            if checkpoint_path is not None:
                save_checkpoint(merged, checkpoint_path)
                if recorder is not None:
                    recorder.emit(
                        obs_events.CheckpointWritten(
                            "campaign",
                            str(checkpoint_path),
                            len(merged.results),
                        )
                    )
            if shard_base is not None:
                for spec in specs:
                    if spec["shard_path"] is not None:
                        try:
                            os.remove(spec["shard_path"])
                        except OSError:  # pragma: no cover - already gone
                            pass
        finally:
            self._planner = None
            self._progress_ctx = None
            self._plans = {}
            self._release_shard_base()
        if recorder is not None:
            recorder.emit(
                obs_events.CampaignFinished(merged.results.total_cases())
            )
        return merged.results

    # ------------------------------------------------------------------

    def _shard_base(
        self, checkpoint_path: str | pathlib.Path | None
    ) -> str | pathlib.Path | None:
        """Where workers checkpoint their shards.  The base runner only
        shards when the caller asked for checkpoints; the supervisor
        overrides this (restart-from-shard needs shards even when the
        user did not request a checkpoint file)."""
        return checkpoint_path

    def _release_shard_base(self) -> None:
        """Hook for subclasses that fabricate a temporary shard base."""

    def _heartbeat_interval(self) -> float:
        """Worker-side throttle for heartbeat events.  The base runner
        has no watchdog, so a slow beacon is plenty."""
        return 1.0

    def _validate_resume(
        self, resume: CampaignCheckpoint, keys: list[str]
    ) -> None:
        """The serial runner's compatibility checks, applied up front so
        an incompatible checkpoint fails before any worker spawns."""
        if not resume.cap:
            warnings.warn(
                f"checkpoint does not record its cap; resuming at "
                f"cap={self.config.cap} without compatibility checking",
                stacklevel=3,
            )
        elif resume.cap != self.config.cap:
            raise ValueError(
                f"checkpoint was taken at cap={resume.cap}, cannot "
                f"resume at cap={self.config.cap}"
            )
        if resume.variants is not None and set(resume.variants) != set(keys):
            raise ValueError(
                f"checkpoint was taken for variants "
                f"{sorted(resume.variants)}, cannot resume with "
                f"{sorted(keys)}"
            )

    def _build_specs(
        self,
        resume: CampaignCheckpoint | None,
        shard_base: str | pathlib.Path | None,
        checkpoint_every: int,
        events: bool = False,
    ) -> list[dict]:
        config_fields = config_spec_fields(self.config)
        specs = []
        for personality in self.variants:
            key = personality.key
            resume_doc = None
            if resume is not None:
                shard = split_checkpoint(resume, key)
                shard.complete = False
                resume_doc = checkpoint_to_dict(shard)
            specs.append(
                {
                    "variant": key,
                    "muts": self._muts,
                    "config": config_fields,
                    "shard_path": (
                        None
                        if shard_base is None
                        else str(shard_path(shard_base, key))
                    ),
                    "checkpoint_every": checkpoint_every,
                    "resume": resume_doc,
                    "quarantine": {},
                    "heartbeat_interval": self._heartbeat_interval(),
                    "events": events,
                }
            )
        return specs

    def _build_shard_specs(
        self,
        resume: CampaignCheckpoint | None,
        shard_base: str | pathlib.Path | None,
        checkpoint_every: int,
        events: bool = False,
    ) -> tuple[list[dict], list[CampaignCheckpoint]]:
        """Cut each variant's plan into ``self.shards`` contiguous
        slices and build one worker spec per incomplete slice.

        Returns ``(specs, synthetic)``: the specs to schedule plus
        pre-settled checkpoint pieces for slices a resume document
        already completed (they go straight to the merge, no worker).
        Also primes the run's :class:`_SeamPlanner` and the per-variant
        progress aggregation state.
        """
        config_fields = config_spec_fields(self.config)
        atlas = (
            load_atlas(self.atlas_path) if self.atlas_path is not None else None
        )
        planner = _SeamPlanner()
        plan_source = Campaign(
            self.variants, config=self.config, muts=self._muts
        )
        specs: list[dict] = []
        synthetic: list[CampaignCheckpoint] = []
        spans: dict[str, tuple[int, int]] = {}
        totals: dict[str, int] = {}
        counts: dict[str, dict[str, int]] = {}
        self._plans = {}
        for personality in self.variants:
            key = personality.key
            plan = plan_source.plan_identities(personality)
            self._plans[key] = plan
            totals[key] = len(plan)
            cursor = resume.cursors.get(key, 0) if resume is not None else 0
            for index, (start, stop) in enumerate(
                shard_bounds(len(plan), self.shards)
            ):
                tag = shard_tag(key, index)
                if resume is not None and cursor >= stop:
                    # Completed by the interrupted run: a settled,
                    # workerless piece.  Its end wear is known exactly
                    # when the resume document's wear frontier lies in
                    # this slice (cursor == stop); earlier pieces'
                    # successors are themselves settled or resumed and
                    # never consult it.
                    piece = split_checkpoint(
                        resume, key, plan=plan, span=(start, stop)
                    )
                    piece.shard = {
                        "variant": key,
                        "index": index,
                        "start": start,
                        "stop": stop,
                        "resumed": True,
                        "base_wear": None,
                    }
                    synthetic.append(piece)
                    planner.add_settled(
                        key,
                        start,
                        stop,
                        end_known=key in piece.machine_wear,
                        end_wear=piece.machine_wear.get(key),
                    )
                    counts.setdefault(key, {})["resumed"] = (
                        counts.get(key, {}).get("resumed", 0) + (stop - start)
                    )
                    continue
                resume_doc = None
                base = None
                resumed = False
                if resume is not None and cursor >= start:
                    # The resume frontier lands in this slice: carry its
                    # rows and mid-slice wear (cursor > start), or --
                    # exactly on the boundary -- just the wear, which
                    # the split handed to the predecessor piece.
                    resumed = cursor > 0
                    if cursor > start:
                        piece = split_checkpoint(
                            resume, key, plan=plan, span=(start, stop)
                        )
                        piece.complete = False
                        resume_doc = checkpoint_to_dict(piece)
                    elif cursor > 0:
                        base = resume.machine_wear.get(key)
                    known = True
                else:
                    # Beyond the frontier (or a cold start): slice 0
                    # boots fresh; later slices wait for their
                    # predecessor's end wear unless the atlas ventures
                    # a speculative seam.
                    if atlas is not None:
                        base = atlas.seam(key, plan, self.config.cap, start)
                    known = index == 0 or base is not None
                spec = {
                    "variant": key,
                    "tag": tag,
                    "muts": self._muts,
                    "config": config_fields,
                    "shard_path": (
                        None
                        if shard_base is None
                        else str(shard_path(shard_base, tag))
                    ),
                    "checkpoint_every": checkpoint_every,
                    "resume": resume_doc,
                    "quarantine": {},
                    "heartbeat_interval": self._heartbeat_interval(),
                    "events": events,
                    "shard": {
                        "variant": key,
                        "index": index,
                        "start": start,
                        "stop": stop,
                        "resumed": resumed,
                        "base_wear": base,
                    },
                }
                specs.append(spec)
                planner.add_spec(spec, known)
                spans[tag] = (start, stop)
        self._planner = planner
        self._progress_ctx = {
            "spans": spans,
            "totals": totals,
            "counts": counts,
        }
        return specs, synthetic

    def _save_atlas_seams(self) -> None:
        """After a successful sharded run, memoize the settled seam
        wears so the next identical run launches every slice warm."""
        planner = self._planner
        if planner is None or self.atlas_path is None:
            return
        atlas = load_atlas(self.atlas_path)
        for variant, table in planner.learned().items():
            plan = self._plans.get(variant, [])
            for position, wear in table.items():
                if 0 < position < len(plan):
                    atlas.record(
                        variant, plan, self.config.cap, position, wear
                    )
        save_atlas(atlas, self.atlas_path)

    def _admit(self, pending: list[dict]) -> dict | None:
        """Pop the first schedulable spec: without a planner that is
        simply the queue head; with one, the first spec whose slice base
        is known (work-stealing order -- a slice of any variant)."""
        planner = self._planner
        for index, spec in enumerate(pending):
            tag = spec.get("tag") or spec["variant"]
            if planner is None or planner.ready(tag):
                if planner is not None:
                    planner.mark_spawned(tag)
                return pending.pop(index)
        return None

    def _absorb_done(
        self,
        key: str,
        checkpoint: CampaignCheckpoint,
        shards: dict[str, CampaignCheckpoint],
        pending: list[dict],
        recorder: Recorder | None,
    ) -> None:
        """Fold a finished worker's checkpoint into the run: directly
        (per-variant workers) or via the seam planner's settlement
        cascade (sharded), which may re-queue stale speculative slices."""
        planner = self._planner
        if planner is None:
            shards[key] = checkpoint
            return
        accepted, replays = planner.on_done(key, checkpoint)
        for tag, settled in accepted:
            shards[tag] = settled
        for spec in replays:
            shards.pop(spec["tag"], None)
            self._note_replay(spec, recorder)
            pending.append(spec)

    def _note_replay(self, spec: dict, recorder: Recorder | None) -> None:
        if recorder is not None:
            recorder.emit(
                obs_events.ShardReplayed(
                    spec["variant"],
                    spec["shard"]["index"],
                    "speculative base wear was stale",
                )
            )

    def _forward_progress(
        self, progress: ProgressFn | None, message: tuple
    ) -> None:
        """Relay a worker progress event.  Sharded runs collapse the
        per-slice streams into one aggregate line per variant (completed
        cases across all slices over the whole plan), so the renderer's
        cursor-up redraw stays one line per variant instead of exploding
        past terminal height at high ``--shards``."""
        if progress is None:
            return
        _, tag, mut, position, total = message
        ctx = self._progress_ctx
        if ctx is None:
            progress(tag, mut, position, total)
            return
        variant = tag.partition("#")[0]
        span = ctx["spans"].get(tag)
        if span is None:  # pragma: no cover - untagged message
            progress(variant, mut, position, total)
            return
        counts = ctx["counts"].setdefault(variant, {})
        counts[tag] = position - span[0] + 1
        started = sum(counts.values())
        progress(variant, mut, started - 1, ctx["totals"][variant])

    def _run_workers(
        self,
        specs: list[dict],
        progress: ProgressFn | None,
        recorder: Recorder | None = None,
    ) -> dict[str, CampaignCheckpoint]:
        """Spawn at most ``self.jobs`` concurrent workers, pump their
        event queue, and collect one finished shard per variant."""
        ctx = multiprocessing.get_context("spawn")
        events = ctx.Queue()
        pending = list(specs)
        running: dict[str, object] = {}
        shards: dict[str, CampaignCheckpoint] = {}
        errors: dict[str, str] = {}
        try:
            while pending or running:
                while len(running) < self.jobs:
                    spec = self._admit(pending)
                    if spec is None:
                        break
                    worker = self._spawn(ctx, spec, events)
                    running[spec.get("tag") or spec["variant"]] = worker
                    if recorder is not None:
                        recorder.emit(
                            obs_events.WorkerSpawned(
                                spec["variant"], worker.pid or 0, 1
                            )
                        )
                if pending and not running:
                    # Defensive: every unschedulable slice waits on a
                    # predecessor, so something must always be running.
                    raise RuntimeError(
                        "sharded campaign stalled: no runnable slices"
                    )
                try:
                    message = events.get(timeout=0.2)
                except queue.Empty:
                    # Only scan for silent deaths when a worker's
                    # sentinel actually reports one -- an idle pump over
                    # healthy workers must not burn a liveness sweep
                    # (nor emit reap telemetry) every 200 ms tick.
                    dead = self._dead_workers(running)
                    if dead:
                        self._reap_silent_deaths(
                            running, errors, dead, recorder
                        )
                    continue
                kind, key = message[0], message[1]
                if kind == "progress":
                    self._forward_progress(progress, message)
                elif kind == "heartbeat":
                    pass  # liveness beacons; only the supervisor consumes them
                elif kind == "obs":
                    if recorder is not None:
                        recorder.record(message[2])
                elif kind == "done":
                    self._retire(running, key)
                    if recorder is not None:
                        recorder.emit(obs_events.WorkerFinished(key))
                    self._absorb_done(
                        key,
                        checkpoint_from_dict(message[2]),
                        shards,
                        pending,
                        recorder,
                    )
                else:  # "error"
                    errors[key] = message[2]
                    self._retire(running, key)
                    if recorder is not None:
                        recorder.emit(
                            obs_events.WorkerDied(key, "crashed", message[2])
                        )
        finally:
            self._stop_workers(running, events)
        if errors:
            detail = "\n".join(
                f"--- worker [{key}] ---\n{text}"
                for key, text in sorted(errors.items())
            )
            raise RuntimeError(
                f"parallel campaign worker(s) failed for "
                f"{sorted(errors)}:\n{detail}"
            )
        return shards

    @staticmethod
    def _spawn(ctx, spec: dict, events):
        """Start one variant worker process from its spec."""
        worker = ctx.Process(
            target=_variant_worker, args=(spec, events), daemon=True
        )
        worker.start()
        return worker

    @staticmethod
    def _retire(running: dict[str, object], key: str) -> None:
        worker = running.pop(key, None)
        if worker is not None:
            worker.join(timeout=10)

    @staticmethod
    def _dead_workers(running: dict[str, object]) -> list[str]:
        """Variant keys whose worker process has exited, checked via the
        process sentinels in one ``connection.wait`` poll -- the cheap
        liveness gate in front of the reap scan."""
        if not running:
            return []
        sentinels = {w.sentinel: k for k, w in running.items()}
        try:
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=0
            )
        except OSError:  # pragma: no cover - sentinel closed under us
            return [k for k, w in running.items() if not w.is_alive()]
        return [sentinels[s] for s in ready]

    @staticmethod
    def _reap_silent_deaths(
        running: dict[str, object],
        errors: dict[str, str],
        dead: list[str],
        recorder: Recorder | None = None,
    ) -> None:
        """A worker killed from outside (OOM, SIGKILL) never posts a
        message; notice its nonzero exit code so the run fails loudly
        instead of hanging.  Its shard stays on disk for the next run.
        ``dead`` is the sentinel-gated candidate list -- only workers
        whose process has actually exited are examined."""
        for key in dead:
            worker = running.get(key)
            if worker is None:
                continue
            worker.join(timeout=1.0)  # let the exit code settle
            if not worker.is_alive() and worker.exitcode != 0:
                errors[key] = (
                    f"worker exited with code {worker.exitcode} without "
                    f"reporting a result"
                )
                del running[key]
                if recorder is not None:
                    recorder.emit(
                        obs_events.WorkerDied(
                            key,
                            "killed",
                            "exited without reporting a result",
                            exitcode=worker.exitcode,
                        )
                    )

    @staticmethod
    def _stop_workers(
        running: dict[str, object], events, grace: float = 5.0
    ) -> None:
        """Terminate surviving workers without deadlocking on the queue.

        A worker mid-``Queue.put`` when the parent stops pumping can
        have its feeder thread blocked on a full pipe; the process then
        cannot flush-and-exit, and one that ignores SIGTERM (a hung MuT
        loop, the BALLISTA_FAULT_HANG injector) would previously leak
        past ``join(timeout=5)``.  Drain the queue while the workers
        shut down so blocked feeders can finish, then escalate to
        SIGKILL for anything still alive.
        """
        if not running:
            return
        for worker in running.values():
            worker.terminate()
        deadline = time.monotonic() + grace
        while any(w.is_alive() for w in running.values()):
            if time.monotonic() >= deadline:
                break
            try:
                events.get(timeout=0.05)
            except queue.Empty:
                pass
        for worker in running.values():
            worker.join(timeout=0.5)
            if worker.is_alive():
                worker.kill()
                worker.join(timeout=5)
