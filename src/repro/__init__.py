"""repro -- a reproduction of "Robustness Testing of the Microsoft Win32
API" (Shelton, Koopman & DeVale, DSN 2000).

The package contains a full Ballista-style robustness testing harness
(:mod:`repro.core`), simulated operating systems for the seven OS
variants the paper measured (:mod:`repro.sim`, :mod:`repro.win32`,
:mod:`repro.posix`, :mod:`repro.libc`), the comparison methodology and
report generators (:mod:`repro.analysis`), and the client/server
testing service including the Windows CE split client
(:mod:`repro.service`).

Quickstart::

    from repro import Campaign, CampaignConfig, WINDOWS_VARIANTS, LINUX
    from repro.analysis import render_table1

    campaign = Campaign(
        list(WINDOWS_VARIANTS) + [LINUX], config=CampaignConfig(cap=200)
    )
    results = campaign.run()
    print(render_table1(results))
"""

from repro.core import (
    Campaign,
    CampaignConfig,
    CaseCode,
    CaseGenerator,
    MuT,
    MuTRegistry,
    ParallelCampaign,
    ResultSet,
    Severity,
    SupervisedCampaign,
    SupervisorPolicy,
    TestCase,
    default_registry,
    default_types,
    run_single_case,
)
from repro.posix import LINUX
from repro.sim import Machine, Personality
from repro.win32 import (
    WIN2000,
    WIN95,
    WIN98,
    WIN98SE,
    WINCE,
    WINDOWS_VARIANTS,
    WINNT,
)

__version__ = "1.0.0"

#: Every OS variant the paper tested, in its reporting order.
ALL_VARIANTS = (LINUX,) + WINDOWS_VARIANTS

__all__ = [
    "ALL_VARIANTS",
    "Campaign",
    "CampaignConfig",
    "CaseCode",
    "CaseGenerator",
    "LINUX",
    "Machine",
    "MuT",
    "MuTRegistry",
    "ParallelCampaign",
    "Personality",
    "ResultSet",
    "Severity",
    "SupervisedCampaign",
    "SupervisorPolicy",
    "TestCase",
    "WIN2000",
    "WIN95",
    "WIN98",
    "WIN98SE",
    "WINCE",
    "WINDOWS_VARIANTS",
    "WINNT",
    "default_registry",
    "default_types",
    "run_single_case",
]
